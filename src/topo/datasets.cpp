#include "topo/datasets.h"

#include <cmath>
#include <stdexcept>

#include "util/assert.h"

namespace splice::topo {

namespace {

struct Pop {
  const char* name;
  double lat;
  double lon;
};

struct Link {
  int u;
  int v;
};

/// Great-circle distance in kilometres (haversine).
double haversine_km(double lat1, double lon1, double lat2, double lon2) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
  const double p1 = lat1 * kDegToRad;
  const double p2 = lat2 * kDegToRad;
  const double dp = (lat2 - lat1) * kDegToRad;
  const double dl = (lon2 - lon1) * kDegToRad;
  const double a = std::sin(dp / 2) * std::sin(dp / 2) +
                   std::cos(p1) * std::cos(p2) * std::sin(dl / 2) *
                       std::sin(dl / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

/// Builds a graph from PoP and link tables; weight = latency-like metric
/// derived from great-circle distance (1 + km/100), mirroring Rocketfuel's
/// latency-derived weights.
template <std::size_t N, std::size_t M>
Graph build(const Pop (&pops)[N], const Link (&links)[M]) {
  Graph g;
  for (const Pop& p : pops) g.add_node(p.name);
  for (const Link& l : links) {
    SPLICE_ASSERT(l.u >= 0 && l.u < static_cast<int>(N));
    SPLICE_ASSERT(l.v >= 0 && l.v < static_cast<int>(N));
    const double km = haversine_km(pops[l.u].lat, pops[l.u].lon,
                                   pops[l.v].lat, pops[l.v].lon);
    g.add_edge(l.u, l.v, 1.0 + km / 100.0);
  }
  return g;
}

}  // namespace

Graph geant() {
  // Reconstruction of the 2004-era GEANT European research backbone.
  enum : int {
    AT, BE, CH, CY, CZ, DE, ES, FR, GR, HR, HU, IE,
    IL, IT, LU, NL, NY, PL, PT, SE, SI, SK, UK,
  };
  static constexpr Pop pops[] = {
      {"AT-Vienna", 48.21, 16.37},    {"BE-Brussels", 50.85, 4.35},
      {"CH-Geneva", 46.20, 6.15},     {"CY-Nicosia", 35.17, 33.36},
      {"CZ-Prague", 50.08, 14.43},    {"DE-Frankfurt", 50.11, 8.68},
      {"ES-Madrid", 40.42, -3.70},    {"FR-Paris", 48.86, 2.35},
      {"GR-Athens", 37.98, 23.73},    {"HR-Zagreb", 45.81, 15.98},
      {"HU-Budapest", 47.50, 19.04},  {"IE-Dublin", 53.35, -6.26},
      {"IL-TelAviv", 32.08, 34.78},   {"IT-Milan", 45.46, 9.19},
      {"LU-Luxembourg", 49.61, 6.13}, {"NL-Amsterdam", 52.37, 4.90},
      {"US-NewYork", 40.71, -74.01},  {"PL-Poznan", 52.41, 16.93},
      {"PT-Lisbon", 38.72, -9.14},    {"SE-Stockholm", 59.33, 18.07},
      {"SI-Ljubljana", 46.06, 14.51}, {"SK-Bratislava", 48.15, 17.11},
      {"UK-London", 51.51, -0.13},
  };
  static constexpr Link links[] = {
      {AT, CH}, {AT, CZ}, {AT, DE}, {AT, HU}, {AT, SI}, {AT, SK}, {AT, IT},
      {BE, FR}, {BE, NL}, {CH, DE}, {CH, FR}, {CH, IT}, {CZ, DE}, {CZ, PL},
      {CZ, SK}, {DE, NL}, {DE, SE}, {DE, IT}, {DE, NY}, {DE, LU}, {ES, FR},
      {ES, IT}, {ES, PT}, {FR, UK}, {FR, LU}, {GR, IT}, {HR, SI}, {HR, HU},
      {HU, SK}, {IE, UK}, {IE, NY}, {IL, IT}, {IL, CY}, {CY, GR}, {NL, UK},
      {SE, PL}, {PT, UK},
  };
  Graph g = build(pops, links);
  SPLICE_ENSURES(g.node_count() == 23);
  SPLICE_ENSURES(g.edge_count() == 37);
  return g;
}

Graph sprint() {
  // Reconstruction of the Sprint (AS1239) PoP-level backbone as inferred by
  // Rocketfuel: 52 PoPs, 84 links. US long-haul mesh plus trans-oceanic
  // links to Europe, Asia and Australia.
  enum : int {
    SEA, PDX, SAC, SFO, SJC, STK, LAX, ANA, SAN, PHX, SLC, DEN, CYS,
    ABQ, MCI, ICT, TUL, DFW, FTW, HOU, MSY, ATL, ORL, MIA, BNA, STL,
    CHI, MKE, DTW, IND, CLE, PIT, PNS, NYC, BOS, SPR, WDC, RDU, ROA,
    RIC, HNL, TYO, HKG, SIN, SYD, LON, PAR, BRU, AMS, FRA, CPH, STO,
  };
  static constexpr Pop pops[] = {
      {"Seattle", 47.61, -122.33},     {"Portland", 45.52, -122.68},
      {"Sacramento", 38.58, -121.49},  {"SanFrancisco", 37.77, -122.42},
      {"SanJose", 37.34, -121.89},     {"Stockton", 37.96, -121.29},
      {"LosAngeles", 34.05, -118.24},  {"Anaheim", 33.84, -117.91},
      {"SanDiego", 32.72, -117.16},    {"Phoenix", 33.45, -112.07},
      {"SaltLakeCity", 40.76, -111.89},{"Denver", 39.74, -104.99},
      {"Cheyenne", 41.14, -104.82},    {"Albuquerque", 35.08, -106.65},
      {"KansasCity", 39.10, -94.58},   {"Wichita", 37.69, -97.34},
      {"Tulsa", 36.15, -95.99},        {"Dallas", 32.78, -96.80},
      {"FortWorth", 32.76, -97.33},    {"Houston", 29.76, -95.37},
      {"NewOrleans", 29.95, -90.07},   {"Atlanta", 33.75, -84.39},
      {"Orlando", 28.54, -81.38},      {"Miami", 25.76, -80.19},
      {"Nashville", 36.16, -86.78},    {"StLouis", 38.63, -90.20},
      {"Chicago", 41.88, -87.63},      {"Milwaukee", 43.04, -87.91},
      {"Detroit", 42.33, -83.05},      {"Indianapolis", 39.77, -86.16},
      {"Cleveland", 41.50, -81.69},    {"Pittsburgh", 40.44, -80.00},
      {"Pennsauken", 39.96, -75.06},   {"NewYork", 40.71, -74.01},
      {"Boston", 42.36, -71.06},       {"Springfield", 42.10, -72.59},
      {"Washington", 38.91, -77.04},   {"Raleigh", 35.78, -78.64},
      {"Roanoke", 37.27, -79.94},      {"Richmond", 37.54, -77.44},
      {"PearlCity", 21.40, -157.97},   {"Tokyo", 35.68, 139.69},
      {"HongKong", 22.32, 114.17},     {"Singapore", 1.35, 103.82},
      {"Sydney", -33.87, 151.21},      {"London", 51.51, -0.13},
      {"Paris", 48.86, 2.35},          {"Brussels", 50.85, 4.35},
      {"Amsterdam", 52.37, 4.90},      {"Frankfurt", 50.11, 8.68},
      {"Copenhagen", 55.68, 12.57},    {"Stockholm", 59.33, 18.07},
  };
  static constexpr Link links[] = {
      // West coast.
      {SEA, PDX}, {SEA, CHI}, {SEA, SLC}, {SEA, SJC}, {PDX, SAC},
      {SAC, SFO}, {SAC, STK}, {SFO, SJC}, {SJC, STK}, {SJC, LAX},
      {STK, LAX}, {LAX, ANA}, {ANA, SAN}, {LAX, PHX}, {PHX, SAN},
      {PHX, ABQ},
      // Mountain / central.
      {SLC, DEN}, {SLC, STK}, {DEN, CYS}, {CYS, CHI}, {DEN, MCI},
      {ABQ, DFW}, {MCI, ICT}, {ICT, TUL}, {TUL, DFW}, {MCI, STL},
      {MCI, CHI}, {MCI, DFW},
      // South.
      {DFW, FTW}, {FTW, HOU}, {DFW, HOU}, {HOU, MSY}, {MSY, ATL},
      {DFW, ATL}, {ATL, ORL}, {ORL, MIA}, {ATL, MIA}, {ATL, BNA},
      {BNA, STL},
      // Midwest.
      {STL, CHI}, {STL, IND}, {IND, CHI}, {CHI, MKE}, {CHI, DTW},
      {DTW, CLE}, {CLE, PIT},
      // East.
      {PIT, PNS}, {PNS, NYC}, {PNS, WDC}, {NYC, BOS}, {BOS, SPR},
      {SPR, NYC}, {NYC, CHI}, {WDC, ATL}, {WDC, RDU}, {RDU, ATL},
      {ROA, WDC}, {ROA, RDU}, {RIC, WDC}, {RIC, RDU}, {CHI, ATL},
      {NYC, WDC},
      // Transcontinental long-haul.
      {LAX, DFW}, {SJC, CHI},
      // Pacific.
      {HNL, SJC}, {HNL, LAX}, {TYO, SEA}, {TYO, SJC}, {TYO, HKG},
      {HKG, SIN}, {SIN, TYO}, {SYD, LAX}, {SYD, SJC},
      // Atlantic + Europe.
      {LON, NYC}, {LON, WDC}, {LON, PAR}, {PAR, BRU}, {BRU, AMS},
      {AMS, LON}, {AMS, FRA}, {FRA, PAR}, {FRA, CPH}, {CPH, STO},
      {STO, AMS},
  };
  Graph g = build(pops, links);
  SPLICE_ENSURES(g.node_count() == 52);
  SPLICE_ENSURES(g.edge_count() == 84);
  return g;
}

Graph abilene() {
  enum : int { SEA, SNV, LAX, DEN, MCI, HOU, IND, CHI, ATL, WDC, NYC };
  static constexpr Pop pops[] = {
      {"Seattle", 47.61, -122.33},   {"Sunnyvale", 37.37, -122.04},
      {"LosAngeles", 34.05, -118.24},{"Denver", 39.74, -104.99},
      {"KansasCity", 39.10, -94.58}, {"Houston", 29.76, -95.37},
      {"Indianapolis", 39.77, -86.16},{"Chicago", 41.88, -87.63},
      {"Atlanta", 33.75, -84.39},    {"Washington", 38.91, -77.04},
      {"NewYork", 40.71, -74.01},
  };
  static constexpr Link links[] = {
      {SEA, SNV}, {SEA, DEN}, {SNV, LAX}, {SNV, DEN}, {LAX, HOU},
      {DEN, MCI}, {MCI, HOU}, {MCI, IND}, {HOU, ATL}, {IND, CHI},
      {IND, ATL}, {CHI, NYC}, {ATL, WDC}, {NYC, WDC},
  };
  Graph g = build(pops, links);
  SPLICE_ENSURES(g.node_count() == 11);
  SPLICE_ENSURES(g.edge_count() == 14);
  return g;
}

Graph exodus() {
  // Reconstruction of the Exodus Communications (AS3967) PoP backbone as
  // Rocketfuel mapped it: data-center metros in clusters (Bay Area, LA,
  // Chicagoland, Boston, NYC, northern Virginia) over a sparse national
  // core, plus London and Tokyo.
  enum : int {
    SCL, PAO, SFO, ELS, IRV, SEA, AUS, DFW, CHI, OAK, ATL,
    MIA, TPA, BOS, WAL, NYC, JCY, STE, HER, TOR, LON, TYO,
  };
  static constexpr Pop pops[] = {
      {"SantaClara", 37.35, -121.95}, {"PaloAlto", 37.44, -122.14},
      {"SanFrancisco", 37.77, -122.42},{"ElSegundo", 33.92, -118.42},
      {"Irvine", 33.68, -117.83},     {"Seattle", 47.61, -122.33},
      {"Austin", 30.27, -97.74},      {"Dallas", 32.78, -96.80},
      {"Chicago", 41.88, -87.63},     {"OakBrook", 41.85, -87.95},
      {"Atlanta", 33.75, -84.39},     {"Miami", 25.76, -80.19},
      {"Tampa", 27.95, -82.46},       {"Boston", 42.36, -71.06},
      {"Waltham", 42.38, -71.24},     {"NewYork", 40.71, -74.01},
      {"JerseyCity", 40.73, -74.07},  {"Sterling", 39.01, -77.43},
      {"Herndon", 38.97, -77.39},     {"Toronto", 43.65, -79.38},
      {"London", 51.51, -0.13},       {"Tokyo", 35.68, 139.69},
  };
  static constexpr Link links[] = {
      // Bay Area cluster.
      {SCL, PAO}, {SCL, SFO}, {PAO, SFO},
      // LA cluster + west.
      {ELS, IRV}, {SCL, ELS}, {PAO, IRV}, {SCL, SEA}, {SFO, SEA},
      // Texas.
      {AUS, DFW}, {ELS, DFW}, {IRV, AUS},
      // Midwest + Canada.
      {DFW, CHI}, {CHI, OAK}, {OAK, TOR}, {TOR, NYC}, {CHI, NYC},
      {PAO, CHI},
      // Southeast.
      {DFW, ATL}, {ATL, MIA}, {MIA, TPA}, {ATL, TPA}, {ATL, STE},
      // Northeast clusters.
      {BOS, WAL}, {BOS, NYC}, {WAL, NYC}, {NYC, JCY}, {JCY, STE},
      {STE, HER}, {HER, NYC}, {ELS, ATL},
      // Transcontinental + international.
      {SFO, NYC}, {NYC, LON}, {JCY, LON}, {SCL, TYO}, {SEA, TYO},
      {CHI, STE}, {OAK, DFW},
  };
  Graph g = build(pops, links);
  SPLICE_ENSURES(g.node_count() == 22);
  SPLICE_ENSURES(g.edge_count() == 37);
  return g;
}

Graph abovenet() {
  // Reconstruction of the AboveNet/MFN (AS6461) PoP backbone: a denser
  // national mesh than Exodus, a European triangle and a Tokyo leg.
  enum : int {
    SJC, PAO, SFO, LAX, SEA, PHX, DEN, DFW, HOU, CHI, STL,
    ATL, MIA, WDC, VIE, PHL, NYC, BOS, LON, AMS, FRA, TYO,
  };
  static constexpr Pop pops[] = {
      {"SanJose", 37.34, -121.89},   {"PaloAlto", 37.44, -122.14},
      {"SanFrancisco", 37.77, -122.42},{"LosAngeles", 34.05, -118.24},
      {"Seattle", 47.61, -122.33},   {"Phoenix", 33.45, -112.07},
      {"Denver", 39.74, -104.99},    {"Dallas", 32.78, -96.80},
      {"Houston", 29.76, -95.37},    {"Chicago", 41.88, -87.63},
      {"StLouis", 38.63, -90.20},    {"Atlanta", 33.75, -84.39},
      {"Miami", 25.76, -80.19},      {"Washington", 38.91, -77.04},
      {"Vienna", 38.90, -77.26},     {"Philadelphia", 39.95, -75.17},
      {"NewYork", 40.71, -74.01},    {"Boston", 42.36, -71.06},
      {"London", 51.51, -0.13},      {"Amsterdam", 52.37, 4.90},
      {"Frankfurt", 50.11, 8.68},    {"Tokyo", 35.68, 139.69},
  };
  static constexpr Link links[] = {
      // West.
      {SJC, PAO}, {PAO, SFO}, {SJC, SFO}, {SJC, LAX}, {SFO, LAX},
      {SJC, SEA}, {SFO, SEA}, {LAX, PHX}, {PHX, DFW}, {SJC, DEN},
      {DEN, CHI}, {DEN, DFW},
      // South / central.
      {DFW, HOU}, {DFW, CHI}, {HOU, ATL}, {DFW, ATL}, {CHI, STL},
      {STL, DFW}, {STL, ATL},
      // East.
      {ATL, MIA}, {MIA, WDC}, {ATL, WDC}, {WDC, VIE}, {WDC, PHL},
      {PHL, NYC}, {NYC, BOS}, {CHI, NYC}, {CHI, WDC}, {VIE, NYC},
      {BOS, CHI},
      // Transcontinental.
      {SJC, CHI}, {LAX, DFW}, {SFO, NYC},
      // Europe + Asia.
      {NYC, LON}, {WDC, LON}, {LON, AMS}, {AMS, FRA}, {LON, FRA},
      {NYC, AMS}, {SJC, TYO}, {SEA, TYO}, {LAX, TYO},
  };
  Graph g = build(pops, links);
  SPLICE_ENSURES(g.node_count() == 22);
  SPLICE_ENSURES(g.edge_count() == 42);
  return g;
}

Graph figure1() {
  Graph g;
  const NodeId s = g.add_node("s");
  const NodeId t = g.add_node("t");
  const NodeId a1 = g.add_node("a1");
  const NodeId a2 = g.add_node("a2");
  const NodeId b1 = g.add_node("b1");
  const NodeId b2 = g.add_node("b2");
  g.add_edge(s, a1, 1.0);
  g.add_edge(a1, a2, 1.0);
  g.add_edge(a2, t, 1.0);
  g.add_edge(s, b1, 1.0);
  g.add_edge(b1, b2, 1.0);
  g.add_edge(b2, t, 1.0);
  return g;
}

std::vector<std::string> registry_names() {
  return {"geant", "sprint", "abilene", "exodus", "abovenet", "figure1"};
}

Graph by_name(const std::string& name) {
  if (name == "geant") return geant();
  if (name == "sprint") return sprint();
  if (name == "abilene") return abilene();
  if (name == "exodus") return exodus();
  if (name == "abovenet") return abovenet();
  if (name == "figure1") return figure1();
  throw std::out_of_range("unknown topology: " + name);
}

}  // namespace splice::topo
