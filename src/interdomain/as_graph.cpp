#include "interdomain/as_graph.h"

namespace splice {

AsId AsGraph::add_as() {
  adjacency_.emplace_back();
  return as_count() - 1;
}

AsLinkId AsGraph::add_customer_provider(AsId customer, AsId provider) {
  SPLICE_EXPECTS(valid(customer));
  SPLICE_EXPECTS(valid(provider));
  SPLICE_EXPECTS(customer != provider);
  const auto l = static_cast<AsLinkId>(links_.size());
  links_.push_back(AsLink{customer, provider, AsRelation::kCustomerProvider});
  adjacency_[static_cast<std::size_t>(customer)].push_back(
      AsIncidence{l, provider, NeighborKind::kProvider});
  adjacency_[static_cast<std::size_t>(provider)].push_back(
      AsIncidence{l, customer, NeighborKind::kCustomer});
  return l;
}

AsLinkId AsGraph::add_peering(AsId a, AsId b) {
  SPLICE_EXPECTS(valid(a));
  SPLICE_EXPECTS(valid(b));
  SPLICE_EXPECTS(a != b);
  const auto l = static_cast<AsLinkId>(links_.size());
  links_.push_back(AsLink{a, b, AsRelation::kPeerPeer});
  adjacency_[static_cast<std::size_t>(a)].push_back(
      AsIncidence{l, b, NeighborKind::kPeer});
  adjacency_[static_cast<std::size_t>(b)].push_back(
      AsIncidence{l, a, NeighborKind::kPeer});
  return l;
}

AsGraph make_as_hierarchy(const AsHierarchyConfig& cfg) {
  SPLICE_EXPECTS(cfg.tier1 >= 1);
  SPLICE_EXPECTS(cfg.tier2 >= 0);
  SPLICE_EXPECTS(cfg.stubs >= 0);
  SPLICE_EXPECTS(cfg.tier2 == 0 || cfg.tier2_uplinks >= 1);
  SPLICE_EXPECTS(cfg.stubs == 0 || cfg.stub_uplinks >= 1);
  AsGraph g;
  Rng rng(cfg.seed);

  std::vector<AsId> tier1;
  for (int i = 0; i < cfg.tier1; ++i) tier1.push_back(g.add_as());
  // Tier-1 full peer mesh (the transit-free core).
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      g.add_peering(tier1[i], tier1[j]);
    }
  }

  auto pick_distinct = [&](const std::vector<AsId>& pool, int want,
                           std::vector<AsId>& out) {
    out.clear();
    const int n = std::min<int>(want, static_cast<int>(pool.size()));
    while (static_cast<int>(out.size()) < n) {
      const AsId cand = pool[rng.below(pool.size())];
      bool dup = false;
      for (AsId c : out) dup |= c == cand;
      if (!dup) out.push_back(cand);
    }
  };

  std::vector<AsId> tier2;
  std::vector<AsId> picks;
  for (int i = 0; i < cfg.tier2; ++i) {
    const AsId v = g.add_as();
    tier2.push_back(v);
    pick_distinct(tier1, cfg.tier2_uplinks, picks);
    for (AsId p : picks) g.add_customer_provider(v, p);
  }
  // Tier-2 lateral peering.
  for (std::size_t i = 0; i < tier2.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2.size(); ++j) {
      if (rng.bernoulli(cfg.tier2_peering_probability)) {
        g.add_peering(tier2[i], tier2[j]);
      }
    }
  }

  const std::vector<AsId>& stub_providers = tier2.empty() ? tier1 : tier2;
  for (int i = 0; i < cfg.stubs; ++i) {
    const AsId v = g.add_as();
    pick_distinct(stub_providers, cfg.stub_uplinks, picks);
    for (AsId p : picks) g.add_customer_provider(v, p);
  }
  return g;
}

}  // namespace splice
