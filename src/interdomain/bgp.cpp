#include "interdomain/bgp.h"

#include <algorithm>

#include "util/assert.h"

namespace splice {

namespace {

int preference_rank(NeighborKind learned_from) noexcept {
  switch (learned_from) {
    case NeighborKind::kCustomer:
      return 0;  // most preferred: the customer pays us
    case NeighborKind::kPeer:
      return 1;
    case NeighborKind::kProvider:
      return 2;
  }
  return 3;
}

/// The relationship of `self` as seen from the neighbor across the same
/// link (customer <-> provider mirror; peer is symmetric).
NeighborKind mirrored(NeighborKind self_view_of_neighbor) noexcept {
  switch (self_view_of_neighbor) {
    case NeighborKind::kCustomer:
      return NeighborKind::kProvider;
    case NeighborKind::kPeer:
      return NeighborKind::kPeer;
    case NeighborKind::kProvider:
      return NeighborKind::kCustomer;
  }
  return NeighborKind::kPeer;
}

bool path_contains(const std::vector<AsId>& path, AsId v) noexcept {
  return std::find(path.begin(), path.end(), v) != path.end();
}

}  // namespace

bool prefer_route(const BgpRoute& lhs, const BgpRoute& rhs) noexcept {
  const int lr = preference_rank(lhs.learned_from);
  const int rr = preference_rank(rhs.learned_from);
  if (lr != rr) return lr < rr;
  if (lhs.path_length() != rhs.path_length())
    return lhs.path_length() < rhs.path_length();
  return lhs.next_hop < rhs.next_hop;
}

bool may_export(NeighborKind learned_from, NeighborKind to) noexcept {
  // Customer routes are exported to everyone (they generate revenue);
  // peer- and provider-learned routes only to customers (no free transit).
  if (learned_from == NeighborKind::kCustomer) return true;
  return to == NeighborKind::kCustomer;
}

bool is_valley_free(const AsGraph& g, std::span<const AsId> path) noexcept {
  if (path.size() <= 1) return true;
  // Phase machine: 0 = climbing (customer->provider), 1 = after the single
  // allowed peer step or at the summit, 2 = descending.
  int phase = 0;
  bool peer_used = false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const AsId from = path[i];
    const AsId to = path[i + 1];
    if (!g.valid(from) || !g.valid(to)) return false;
    // Find the relationship of `to` as seen from `from`.
    NeighborKind kind = NeighborKind::kPeer;
    bool found = false;
    for (const AsIncidence& inc : g.neighbors(from)) {
      if (inc.neighbor == to) {
        kind = inc.kind;
        found = true;
        break;
      }
    }
    if (!found) return false;  // not adjacent
    switch (kind) {
      case NeighborKind::kProvider:  // up step
        if (phase != 0) return false;
        break;
      case NeighborKind::kPeer:  // lateral step, at most once
        if (phase == 2 || peer_used) return false;
        peer_used = true;
        phase = 1;
        break;
      case NeighborKind::kCustomer:  // down step
        phase = 2;
        break;
    }
  }
  return true;
}

BgpSplicer::BgpSplicer(const AsGraph& g, const BgpConfig& cfg)
    : graph_(&g), cfg_(cfg) {
  SPLICE_EXPECTS(cfg.k >= 1);
  const auto n = static_cast<std::size_t>(g.as_count());
  fib_.assign(n * n, {});
  for (AsId dst = 0; dst < g.as_count(); ++dst) converge(dst);
}

void BgpSplicer::converge(AsId dst) {
  const AsGraph& g = *graph_;
  const AsId n = g.as_count();
  const int rounds =
      cfg_.max_rounds > 0 ? cfg_.max_rounds : 2 * static_cast<int>(n) + 4;

  // best[v]: the route v currently advertises (its single BGP best).
  std::vector<std::optional<BgpRoute>> best(static_cast<std::size_t>(n));
  // The destination originates its own prefix; it behaves like a customer
  // route for export purposes (advertised to everyone).
  BgpRoute origin;
  origin.next_hop = dst;
  origin.learned_from = NeighborKind::kCustomer;
  best[static_cast<std::size_t>(dst)] = origin;

  // Collects the policy-valid candidate routes of `v` given current bests.
  auto candidates_of = [&](AsId v, std::vector<BgpRoute>& out) {
    out.clear();
    for (const AsIncidence& inc : g.neighbors(v)) {
      const auto& adv = best[static_cast<std::size_t>(inc.neighbor)];
      if (!adv.has_value()) continue;
      // Would the neighbor export its best to v? The neighbor sees v as
      // mirrored(inc.kind).
      if (inc.neighbor != dst &&
          !may_export(adv->learned_from, mirrored(inc.kind)))
        continue;
      // Loop prevention: v must not already be on the path.
      if (path_contains(adv->as_path, v) || adv->next_hop == v) continue;
      BgpRoute r;
      r.next_hop = inc.neighbor;
      r.via_link = inc.link;
      r.learned_from = inc.kind;
      r.as_path.reserve(adv->as_path.size() + 1);
      r.as_path.push_back(inc.neighbor);
      r.as_path.insert(r.as_path.end(), adv->as_path.begin(),
                       adv->as_path.end());
      if (path_contains(r.as_path, v)) continue;
      out.push_back(std::move(r));
    }
  };

  std::vector<BgpRoute> cand;
  for (int round = 0; round < rounds; ++round) {
    bool changed = false;
    for (AsId v = 0; v < n; ++v) {
      if (v == dst) continue;
      candidates_of(v, cand);
      std::optional<BgpRoute> pick;
      for (BgpRoute& r : cand) {
        if (!pick.has_value() || prefer_route(r, *pick)) pick = std::move(r);
      }
      auto& cur = best[static_cast<std::size_t>(v)];
      const bool differs =
          pick.has_value() != cur.has_value() ||
          (pick.has_value() &&
           (pick->next_hop != cur->next_hop || pick->as_path != cur->as_path));
      if (differs) {
        cur = std::move(pick);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Install the k best candidates (one per advertising neighbor) per AS.
  for (AsId v = 0; v < n; ++v) {
    if (v == dst) continue;
    candidates_of(v, cand);
    std::sort(cand.begin(), cand.end(),
              [](const BgpRoute& a, const BgpRoute& b) {
                return prefer_route(a, b);
              });
    auto& slot = fib_[index(v, dst)];
    slot.assign(cand.begin(),
                cand.begin() + std::min<std::size_t>(
                                   cand.size(),
                                   static_cast<std::size_t>(cfg_.k)));
  }
}

std::span<const BgpRoute> BgpSplicer::routes(AsId node, AsId dst) const noexcept {
  return fib_[index(node, dst)];
}

const BgpRoute* BgpSplicer::best_route(AsId node, AsId dst) const noexcept {
  const auto& slot = fib_[index(node, dst)];
  return slot.empty() ? nullptr : &slot.front();
}

std::optional<std::vector<AsId>> BgpSplicer::forward(
    AsId src, AsId dst, SpliceHeader header, std::span<const char> link_alive,
    bool deflect, int ttl) const {
  SPLICE_EXPECTS(graph_->valid(src));
  SPLICE_EXPECTS(graph_->valid(dst));
  SPLICE_EXPECTS(link_alive.empty() ||
                 link_alive.size() ==
                     static_cast<std::size_t>(graph_->link_count()));
  auto alive = [&](AsLinkId l) {
    return link_alive.empty() || link_alive[static_cast<std::size_t>(l)] != 0;
  };

  std::vector<AsId> path{src};
  AsId node = src;
  std::uint32_t current = 0;
  while (node != dst && ttl-- > 0) {
    const auto& slot = fib_[index(node, dst)];
    if (slot.empty()) return std::nullopt;
    if (const auto bits = header.pop(); bits.has_value()) {
      current = static_cast<std::uint32_t>(*bits);
    }
    const auto want =
        static_cast<std::size_t>(current % static_cast<std::uint32_t>(slot.size()));
    const BgpRoute* chosen = nullptr;
    if (alive(slot[want].via_link)) {
      chosen = &slot[want];
    } else if (deflect) {
      for (const BgpRoute& r : slot) {
        if (alive(r.via_link)) {
          chosen = &r;
          break;
        }
      }
    }
    if (chosen == nullptr) return std::nullopt;
    node = chosen->next_hop;
    path.push_back(node);
  }
  if (node != dst) return std::nullopt;
  return path;
}

bool BgpSplicer::spliced_connected(AsId src, AsId dst,
                                   std::span<const char> link_alive,
                                   SliceId use_k) const {
  SPLICE_EXPECTS(graph_->valid(src));
  SPLICE_EXPECTS(graph_->valid(dst));
  if (src == dst) return true;
  const SliceId limit = use_k == 0 ? cfg_.k : use_k;
  auto alive = [&](AsLinkId l) {
    return link_alive.empty() || link_alive[static_cast<std::size_t>(l)] != 0;
  };
  std::vector<char> seen(static_cast<std::size_t>(graph_->as_count()), 0);
  std::vector<AsId> stack{src};
  seen[static_cast<std::size_t>(src)] = 1;
  while (!stack.empty()) {
    const AsId u = stack.back();
    stack.pop_back();
    const auto& slot = fib_[index(u, dst)];
    const auto take = std::min<std::size_t>(
        slot.size(), static_cast<std::size_t>(limit));
    for (std::size_t i = 0; i < take; ++i) {
      const BgpRoute& r = slot[i];
      if (!alive(r.via_link)) continue;
      if (r.next_hop == dst) return true;
      auto& mark = seen[static_cast<std::size_t>(r.next_hop)];
      if (!mark) {
        mark = 1;
        stack.push_back(r.next_hop);
      }
    }
  }
  return false;
}

double BgpSplicer::disconnected_fraction(std::span<const char> link_alive,
                                         SliceId use_k) const {
  const AsId n = graph_->as_count();
  if (n < 2) return 0.0;
  const SliceId limit = use_k == 0 ? cfg_.k : use_k;
  auto alive = [&](AsLinkId l) {
    return link_alive.empty() || link_alive[static_cast<std::size_t>(l)] != 0;
  };
  long long disconnected = 0;
  std::vector<std::vector<AsId>> rev(static_cast<std::size_t>(n));
  std::vector<char> seen;
  std::vector<AsId> stack;
  for (AsId dst = 0; dst < n; ++dst) {
    for (auto& r : rev) r.clear();
    for (AsId v = 0; v < n; ++v) {
      if (v == dst) continue;
      const auto& slot = fib_[index(v, dst)];
      const auto take = std::min<std::size_t>(
          slot.size(), static_cast<std::size_t>(limit));
      for (std::size_t i = 0; i < take; ++i) {
        if (alive(slot[i].via_link)) {
          rev[static_cast<std::size_t>(slot[i].next_hop)].push_back(v);
        }
      }
    }
    seen.assign(static_cast<std::size_t>(n), 0);
    seen[static_cast<std::size_t>(dst)] = 1;
    stack.assign(1, dst);
    while (!stack.empty()) {
      const AsId u = stack.back();
      stack.pop_back();
      for (AsId p : rev[static_cast<std::size_t>(u)]) {
        auto& mark = seen[static_cast<std::size_t>(p)];
        if (!mark) {
          mark = 1;
          stack.push_back(p);
        }
      }
    }
    for (AsId src = 0; src < n; ++src) {
      if (src != dst && !seen[static_cast<std::size_t>(src)]) ++disconnected;
    }
  }
  const auto total = static_cast<double>(n) * (static_cast<double>(n) - 1.0);
  return static_cast<double>(disconnected) / total;
}

}  // namespace splice
