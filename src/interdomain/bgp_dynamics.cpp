#include "interdomain/bgp_dynamics.h"

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "util/assert.h"

namespace splice {

namespace {

NeighborKind mirrored(NeighborKind self_view_of_neighbor) noexcept {
  switch (self_view_of_neighbor) {
    case NeighborKind::kCustomer:
      return NeighborKind::kProvider;
    case NeighborKind::kPeer:
      return NeighborKind::kPeer;
    case NeighborKind::kProvider:
      return NeighborKind::kCustomer;
  }
  return NeighborKind::kPeer;
}

bool path_contains(const std::vector<AsId>& path, AsId v) noexcept {
  return std::find(path.begin(), path.end(), v) != path.end();
}

/// Synchronous Gao-Rexford decision process over `g` with a link mask.
/// `best` is the warm-start state (per destination, per AS); the function
/// iterates to a fixpoint and accumulates rounds/changes into `stats`.
void run_to_fixpoint(const AsGraph& g, std::span<const char> link_alive,
                     std::vector<std::vector<std::optional<BgpRoute>>>& best,
                     ConvergenceStats& stats) {
  const AsId n = g.as_count();
  auto alive = [&](AsLinkId l) {
    return link_alive.empty() || link_alive[static_cast<std::size_t>(l)] != 0;
  };

  const int max_rounds = 4 * static_cast<int>(n) + 8;
  for (int round = 0; round < max_rounds; ++round) {
    long long changes_this_round = 0;
    // Synchronous: decisions in round r see round r-1's advertisements.
    auto previous = best;
    for (AsId dst = 0; dst < n; ++dst) {
      auto& best_dst = best[static_cast<std::size_t>(dst)];
      const auto& prev_dst = previous[static_cast<std::size_t>(dst)];
      for (AsId v = 0; v < n; ++v) {
        if (v == dst) continue;
        std::optional<BgpRoute> pick;
        for (const AsIncidence& inc : g.neighbors(v)) {
          if (!alive(inc.link)) continue;
          const auto& adv = prev_dst[static_cast<std::size_t>(inc.neighbor)];
          if (!adv.has_value()) continue;
          if (inc.neighbor != dst &&
              !may_export(adv->learned_from, mirrored(inc.kind)))
            continue;
          if (path_contains(adv->as_path, v) || adv->next_hop == v) continue;
          BgpRoute r;
          r.next_hop = inc.neighbor;
          r.via_link = inc.link;
          r.learned_from = inc.kind;
          r.as_path.reserve(adv->as_path.size() + 1);
          r.as_path.push_back(inc.neighbor);
          r.as_path.insert(r.as_path.end(), adv->as_path.begin(),
                           adv->as_path.end());
          if (path_contains(r.as_path, v)) continue;
          if (!pick.has_value() || prefer_route(r, *pick)) pick = std::move(r);
        }
        auto& cur = best_dst[static_cast<std::size_t>(v)];
        const bool differs =
            pick.has_value() != cur.has_value() ||
            (pick.has_value() && (pick->next_hop != cur->next_hop ||
                                  pick->as_path != cur->as_path));
        if (differs) {
          cur = std::move(pick);
          ++changes_this_round;
        }
      }
    }
    if (changes_this_round == 0) break;
    stats.route_changes += changes_this_round;
    ++stats.rounds;
  }

  for (AsId dst = 0; dst < n; ++dst) {
    for (AsId v = 0; v < n; ++v) {
      if (v == dst) continue;
      if (!best[static_cast<std::size_t>(dst)][static_cast<std::size_t>(v)]
               .has_value())
        ++stats.unreachable_pairs;
    }
  }
}

std::vector<std::vector<std::optional<BgpRoute>>> origin_state(
    const AsGraph& g) {
  const auto n = static_cast<std::size_t>(g.as_count());
  std::vector<std::vector<std::optional<BgpRoute>>> best(
      n, std::vector<std::optional<BgpRoute>>(n));
  for (AsId dst = 0; dst < g.as_count(); ++dst) {
    BgpRoute origin;
    origin.next_hop = dst;
    origin.learned_from = NeighborKind::kCustomer;
    best[static_cast<std::size_t>(dst)][static_cast<std::size_t>(dst)] =
        origin;
  }
  return best;
}

}  // namespace

ConvergenceStats measure_cold_convergence(const AsGraph& g) {
  ConvergenceStats stats;
  auto best = origin_state(g);
  run_to_fixpoint(g, {}, best, stats);
  return stats;
}

ConvergenceStats measure_failure_reconvergence(const AsGraph& g,
                                               AsLinkId link) {
  SPLICE_EXPECTS(link >= 0 && link < g.link_count());
  // Converge intact first (not counted).
  auto best = origin_state(g);
  ConvergenceStats warmup;
  run_to_fixpoint(g, {}, best, warmup);

  // Fail the link; routes through it are withdrawn immediately.
  std::vector<char> alive(static_cast<std::size_t>(g.link_count()), 1);
  alive[static_cast<std::size_t>(link)] = 0;
  ConvergenceStats stats;
  for (AsId dst = 0; dst < g.as_count(); ++dst) {
    for (AsId v = 0; v < g.as_count(); ++v) {
      auto& cur =
          best[static_cast<std::size_t>(dst)][static_cast<std::size_t>(v)];
      if (cur.has_value() && v != dst && cur->via_link == link) {
        cur.reset();
        ++stats.route_changes;  // the withdrawal itself
      }
    }
  }
  run_to_fixpoint(g, alive, best, stats);
  return stats;
}

}  // namespace splice
