// AS-level topology substrate for the §5 interdomain-splicing extension.
//
// An AsGraph is a multigraph of autonomous systems whose links carry a
// business relationship: customer-provider (the customer pays) or
// peer-peer (settlement-free). Routing policy (Gao-Rexford) derives from
// these relationships, so the generator produces the standard Internet
// hierarchy: a clique of tier-1 providers, multi-homed mid-tier transit
// ASes, peering links among the mid tier, and stub customer ASes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "util/assert.h"
#include "util/rng.h"

namespace splice {

using AsId = std::int32_t;
using AsLinkId = std::int32_t;

inline constexpr AsId kInvalidAs = -1;
inline constexpr AsLinkId kInvalidAsLink = -1;

enum class AsRelation {
  kCustomerProvider,  ///< `a` is the customer, `b` the provider
  kPeerPeer,          ///< settlement-free peers
};

struct AsLink {
  AsId a = kInvalidAs;
  AsId b = kInvalidAs;
  AsRelation relation = AsRelation::kPeerPeer;

  AsId other(AsId from) const noexcept {
    SPLICE_EXPECTS(from == a || from == b);
    return from == a ? b : a;
  }
};

/// How a neighbor relates to *this* AS across one link.
enum class NeighborKind {
  kCustomer,  ///< the neighbor pays us
  kPeer,
  kProvider,  ///< we pay the neighbor
};

struct AsIncidence {
  AsLinkId link = kInvalidAsLink;
  AsId neighbor = kInvalidAs;
  NeighborKind kind = NeighborKind::kPeer;
};

class AsGraph {
 public:
  AsGraph() = default;

  AsId add_as();
  /// Adds a relationship link; `customer` pays `provider`.
  AsLinkId add_customer_provider(AsId customer, AsId provider);
  AsLinkId add_peering(AsId a, AsId b);

  AsId as_count() const noexcept {
    return static_cast<AsId>(adjacency_.size());
  }
  AsLinkId link_count() const noexcept {
    return static_cast<AsLinkId>(links_.size());
  }

  const AsLink& link(AsLinkId l) const noexcept {
    SPLICE_EXPECTS(l >= 0 && l < link_count());
    return links_[static_cast<std::size_t>(l)];
  }

  std::span<const AsIncidence> neighbors(AsId v) const noexcept {
    SPLICE_EXPECTS(valid(v));
    return adjacency_[static_cast<std::size_t>(v)];
  }

  bool valid(AsId v) const noexcept { return v >= 0 && v < as_count(); }

 private:
  std::vector<AsLink> links_;
  std::vector<std::vector<AsIncidence>> adjacency_;
};

/// Generator parameters for a hierarchical Internet-like AS topology.
struct AsHierarchyConfig {
  int tier1 = 4;          ///< clique of transit-free providers
  int tier2 = 12;         ///< regional transit ASes
  int stubs = 32;         ///< edge/customer ASes
  int tier2_uplinks = 2;  ///< providers per tier-2 AS (multihoming)
  int stub_uplinks = 2;   ///< providers per stub AS
  double tier2_peering_probability = 0.3;
  std::uint64_t seed = 1;
};

/// Builds the hierarchy: tier-1 full peer mesh; each tier-2 buys transit
/// from `tier2_uplinks` random tier-1s and peers with some tier-2 siblings;
/// each stub buys transit from `stub_uplinks` random tier-2s.
AsGraph make_as_hierarchy(const AsHierarchyConfig& cfg);

}  // namespace splice
