// Spliced BGP (§5 "extensions to interdomain routing").
//
// A path-vector protocol with Gao-Rexford policy runs to convergence: each
// AS advertises one best route per destination to the neighbors its export
// policy allows. Spliced BGP then installs not just the single best route
// but the *k best* policy-valid candidates (one per advertising neighbor)
// into k forwarding-table slots — "the BGP decision process could be
// modified to select k best routes to a destination and install them in
// the forwarding tables. These alternate routes can be accessed with the
// forwarding bits ... without requiring any additional communication among
// BGP routers."
//
// The data plane mirrors intradomain splicing: at each AS hop the
// forwarding bits select which of the installed routes' next hops to use;
// a failed AS link can be routed around by re-randomizing the bits (end
// systems) or deflecting locally (routers).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dataplane/splice_header.h"
#include "interdomain/as_graph.h"

namespace splice {

/// One candidate route at an AS toward a destination.
struct BgpRoute {
  AsId next_hop = kInvalidAs;
  AsLinkId via_link = kInvalidAsLink;
  /// How the route was learned; drives preference and export policy.
  NeighborKind learned_from = NeighborKind::kProvider;
  /// AS path from this AS to the destination (starts at next_hop's AS,
  /// ends at the destination).
  std::vector<AsId> as_path;

  int path_length() const noexcept {
    return static_cast<int>(as_path.size());
  }
};

/// Gao-Rexford preference: customer-learned > peer-learned >
/// provider-learned; then shorter AS path; then lower next-hop id.
/// Returns true when `lhs` is strictly preferred over `rhs`.
bool prefer_route(const BgpRoute& lhs, const BgpRoute& rhs) noexcept;

/// May a route learned from `learned_from` be exported to a neighbor of
/// kind `to`? (Gao-Rexford: customer routes go to everyone; peer/provider
/// routes only to customers.)
bool may_export(NeighborKind learned_from, NeighborKind to) noexcept;

/// Checks the valley-free property of an AS-level path (node sequence):
/// some number of customer->provider "up" steps, at most one peer step,
/// then only provider->customer "down" steps. Gao-Rexford-compliant BGP
/// best paths are always valley-free; *spliced composite* paths may not
/// be — they only concatenate individually-installed (policy-valid)
/// routes, which is exactly the §5 trade-off this predicate makes
/// measurable. Unknown adjacencies make the path invalid (returns false).
bool is_valley_free(const AsGraph& g, std::span<const AsId> path) noexcept;

struct BgpConfig {
  /// Routes installed per (AS, destination) FIB entry — the paper's k.
  SliceId k = 3;
  /// Iteration cap for the decision-process fixpoint (Gao-Rexford
  /// economics guarantee convergence well before as_count() rounds).
  int max_rounds = 0;  ///< 0 = 2 * as_count() + 4
};

/// Runs policy routing to convergence and installs k-route FIBs.
class BgpSplicer {
 public:
  BgpSplicer(const AsGraph& g, const BgpConfig& cfg);

  const AsGraph& graph() const noexcept { return *graph_; }
  SliceId k() const noexcept { return cfg_.k; }

  /// Installed routes of `node` toward `dst`, best first (may be empty if
  /// policy leaves the destination unreachable; size <= k).
  std::span<const BgpRoute> routes(AsId node, AsId dst) const noexcept;

  /// The single best route (BGP's classic choice), if any.
  const BgpRoute* best_route(AsId node, AsId dst) const noexcept;

  /// Data-plane forwarding: walks the k-route FIBs from src toward dst,
  /// using the splicing header to pick a route slot at every AS hop
  /// (slot = bits mod installed-route count). `link_alive` masks failed AS
  /// links (empty = all alive). `deflect` enables network-based recovery:
  /// an AS whose selected route crosses a dead link tries its other
  /// installed routes. Returns the AS-level path (src..dst) or nullopt.
  std::optional<std::vector<AsId>> forward(
      AsId src, AsId dst, SpliceHeader header,
      std::span<const char> link_alive = {}, bool deflect = false,
      int ttl = 64) const;

  /// True iff some assignment of forwarding bits delivers src -> dst under
  /// the mask: directed reachability over installed-route next hops.
  bool spliced_connected(AsId src, AsId dst,
                         std::span<const char> link_alive = {},
                         SliceId use_k = 0) const;

  /// Fraction of ordered AS pairs with no surviving spliced route, using
  /// the first `use_k` route slots (0 = all k). The interdomain analogue
  /// of the Figure 3 metric.
  double disconnected_fraction(std::span<const char> link_alive = {},
                               SliceId use_k = 0) const;

 private:
  std::size_t index(AsId node, AsId dst) const noexcept {
    SPLICE_EXPECTS(graph_->valid(node));
    SPLICE_EXPECTS(graph_->valid(dst));
    return static_cast<std::size_t>(node) *
               static_cast<std::size_t>(graph_->as_count()) +
           static_cast<std::size_t>(dst);
  }

  void converge(AsId dst);

  const AsGraph* graph_;
  BgpConfig cfg_;
  /// fib_[node * n + dst] = up to k best routes, best first.
  std::vector<std::vector<BgpRoute>> fib_;
};

}  // namespace splice
