// BGP convergence dynamics: the §6 argument at the interdomain level.
//
// When an AS link fails, classic BGP withdraws and re-advertises routes
// until the decision process stabilizes ("path exploration"); every
// intermediate step is an UPDATE message and a window of potential
// blackholing. Spliced BGP rides out the same failure on the k routes
// already installed — zero UPDATEs until the operator chooses to
// reconverge. This module runs the synchronous decision process round by
// round and counts both the rounds and the per-AS best-route changes
// (a lower bound on UPDATE traffic) triggered by a link failure.
#pragma once

#include "interdomain/as_graph.h"
#include "interdomain/bgp.h"

namespace splice {

struct ConvergenceStats {
  /// Synchronous rounds until no best route changes.
  int rounds = 0;
  /// Total best-route changes across all (AS, destination) pairs — each
  /// implies at least one UPDATE to every export-eligible neighbor.
  long long route_changes = 0;
  /// ASes that lost reachability to some destination permanently.
  long long unreachable_pairs = 0;
};

/// Runs the Gao-Rexford decision process from cold start on the full graph
/// and returns its convergence cost (baseline).
ConvergenceStats measure_cold_convergence(const AsGraph& g);

/// Starting from the converged state of the intact graph, fails `link` and
/// measures the re-convergence cost: rounds and route changes until the
/// decision process stabilizes on the degraded graph.
ConvergenceStats measure_failure_reconvergence(const AsGraph& g,
                                               AsLinkId link);

}  // namespace splice
