// Pins the observability determinism contract and the replay fidelity
// contract:
//   * the sampled packet-walk event set of run_recovery_experiment is
//     bit-identical at 1, 2 and 8 worker threads (timestamps and ring ids
//     excluded — they are explicitly outside the contract);
//   * experiment results are unchanged by turning the recorder/ledger on;
//   * a recorded loop anomaly replays to the exact same episode — same
//     loop, same final header bits — via sim/replay.h.
#include "sim/replay.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "obs/anomaly.h"
#include "obs/flight_recorder.h"
#include "sim/experiments.h"
#include "topo/datasets.h"

namespace splice {
namespace {

class ObsDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override {
    clear();
    obs::FlightRecorder::global().set_ring_capacity(1u << 16);
    obs::FlightRecorder::global().set_walk_sample_every(64);
  }
  static void clear() {
    obs::FlightRecorder::set_enabled(false);
    obs::FlightRecorder::global().drain();
    obs::FlightRecorder::global().reset();
    obs::AnomalyLedger::set_enabled(false);
    obs::AnomalyLedger::global().reset();
  }
};

RecoveryExperimentConfig small_config() {
  RecoveryExperimentConfig cfg;
  cfg.k_values = {2, 3};
  cfg.p_values = {0.08};
  cfg.trials = 8;
  cfg.seed = 21;
  return cfg;
}

#if SPLICE_OBS

/// A config empirically known to produce forwarding-loop anomalies on
/// abilene (coin-flip retries wander at k >= 3 with this seed).
RecoveryExperimentConfig loop_config() {
  RecoveryExperimentConfig cfg;
  cfg.k_values = {3, 5};
  cfg.p_values = {0.05};
  cfg.trials = 12;
  cfg.seed = 1;
  return cfg;
}

/// The determinism-relevant projection of a walk event: everything except
/// time_ns (wall clock) and tid (which ring recorded it).
using WalkKey = std::tuple<std::uint64_t, std::uint32_t, std::uint16_t,
                           std::uint16_t, std::uint32_t, std::uint32_t,
                           std::uint32_t, std::uint32_t>;

std::vector<WalkKey> sampled_walk_events(const Graph& g,
                                         RecoveryExperimentConfig cfg,
                                         int threads) {
  cfg.threads = threads;
  auto& rec = obs::FlightRecorder::global();
  rec.set_ring_capacity(1u << 17);
  rec.set_walk_sample_every(1);  // capture every walk: the strictest set
  obs::FlightRecorder::set_enabled(true);
  run_recovery_experiment(g, cfg);
  obs::FlightRecorder::set_enabled(false);
  obs::RecorderSnapshot snap = rec.drain();
  EXPECT_EQ(snap.dropped, 0u) << "ring too small: drops break the contract";
  obs::sort_deterministic(snap.events);
  std::vector<WalkKey> out;
  for (const obs::RecorderEvent& ev : snap.events) {
    if (ev.type < static_cast<std::uint16_t>(obs::EventType::kWalkBegin) ||
        ev.type > static_cast<std::uint16_t>(obs::EventType::kWalkEnd)) {
      continue;
    }
    out.emplace_back(ev.key, ev.seq, ev.type, ev.flags, ev.a, ev.b, ev.c,
                     ev.d);
  }
  return out;
}

TEST_F(ObsDeterminismTest, SampledWalkEventsBitIdenticalAcrossThreadCounts) {
  const Graph g = topo::by_name("abilene");
  const RecoveryExperimentConfig cfg = small_config();
  const std::vector<WalkKey> one = sampled_walk_events(g, cfg, 1);
  ASSERT_FALSE(one.empty());
  const std::vector<WalkKey> two = sampled_walk_events(g, cfg, 2);
  const std::vector<WalkKey> eight = sampled_walk_events(g, cfg, 8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST_F(ObsDeterminismTest, RecorderAndLedgerDoNotPerturbResults) {
  const Graph g = topo::by_name("abilene");
  const RecoveryExperimentConfig cfg = small_config();
  const std::vector<RecoveryPoint> plain = run_recovery_experiment(g, cfg);

  obs::FlightRecorder::global().set_walk_sample_every(2);
  obs::FlightRecorder::set_enabled(true);
  obs::AnomalyLedger::set_enabled(true);
  obs::AnomalyLedger::global().begin_run({{"experiment", "test"}});
  const std::vector<RecoveryPoint> traced = run_recovery_experiment(g, cfg);
  obs::FlightRecorder::set_enabled(false);
  obs::AnomalyLedger::set_enabled(false);

  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].k, traced[i].k);
    EXPECT_EQ(plain[i].frac_unrecovered, traced[i].frac_unrecovered);
    EXPECT_EQ(plain[i].two_hop_loop_rate, traced[i].two_hop_loop_rate);
    EXPECT_EQ(plain[i].revisit_rate, traced[i].revisit_rate);
    EXPECT_EQ(plain[i].mean_stretch, traced[i].mean_stretch);
    EXPECT_EQ(plain[i].recovered_paths, traced[i].recovered_paths);
  }
}

TEST_F(ObsDeterminismTest, LedgerSnapshotBitIdenticalAcrossThreadCounts) {
  const Graph g = topo::by_name("abilene");
  RecoveryExperimentConfig cfg = loop_config();

  const auto run_at = [&](int threads) {
    obs::AnomalyLedger::global().reset();
    obs::AnomalyLedger::set_enabled(true);
    cfg.threads = threads;
    run_recovery_experiment(g, cfg);
    obs::AnomalyLedger::set_enabled(false);
    return obs::AnomalyLedger::global().snapshot();
  };
  const obs::AnomalySnapshot one = run_at(1);
  const obs::AnomalySnapshot four = run_at(4);
  ASSERT_FALSE(one.anomalies.empty());
  ASSERT_EQ(one.anomalies.size(), four.anomalies.size());
  for (std::size_t i = 0; i < one.anomalies.size(); ++i) {
    const obs::Anomaly& a = one.anomalies[i];
    const obs::Anomaly& b = four.anomalies[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.p, b.p);
    EXPECT_EQ(a.trial, b.trial);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.bits_lo, b.bits_lo);
    EXPECT_EQ(a.bits_hi, b.bits_hi);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.stretch, b.stretch);
  }
}

TEST_F(ObsDeterminismTest, RecordedLoopAnomalyReplaysToTheSameEpisode) {
  const Graph g = topo::by_name("abilene");
  RecoveryExperimentConfig cfg = loop_config();
  cfg.threads = 2;

  obs::AnomalyLedger::set_enabled(true);
  run_recovery_experiment(g, cfg);
  obs::AnomalyLedger::set_enabled(false);
  const obs::AnomalySnapshot snap = obs::AnomalyLedger::global().snapshot();

  int replayed = 0;
  for (const obs::Anomaly& a : snap.anomalies) {
    if (a.kind != obs::AnomalyKind::kTwoHopLoop &&
        a.kind != obs::AnomalyKind::kRevisitLoop) {
      continue;
    }
    ReplayRequest req;
    req.p = a.p;
    req.trial = static_cast<int>(a.trial);
    req.k = static_cast<SliceId>(a.k);
    req.src = static_cast<NodeId>(a.src);
    req.dst = static_cast<NodeId>(a.dst);
    const ReplayResult res = replay_recovery_episode(g, cfg, req);
    ASSERT_TRUE(res.found);
    // Exact episode: the replayed walk ends with the same header bits the
    // anomaly recorded, uses the same number of retrials, and shows the
    // same loop.
    EXPECT_EQ(res.recovery.header.stream().lo(), a.bits_lo);
    EXPECT_EQ(res.recovery.header.stream().hi(), a.bits_hi);
    EXPECT_EQ(static_cast<std::uint32_t>(res.recovery.trials_used),
              a.attempts);
    if (a.kind == obs::AnomalyKind::kTwoHopLoop) {
      EXPECT_TRUE(res.two_hop_loop);
    } else {
      EXPECT_GT(res.revisits, 0);
    }
    if (++replayed >= 5) break;
  }
  EXPECT_GT(replayed, 0) << "config produced no loop anomalies to replay";
}

TEST_F(ObsDeterminismTest, ReplayRejectsOffGridRequests) {
  const Graph g = topo::by_name("abilene");
  const RecoveryExperimentConfig cfg = small_config();
  ReplayRequest req;
  req.p = 0.5;  // not on the grid
  req.trial = 0;
  req.k = 2;
  req.src = 0;
  req.dst = 1;
  EXPECT_FALSE(replay_recovery_episode(g, cfg, req).found);
  req.p = 0.08;
  req.trial = cfg.trials;  // out of range
  EXPECT_FALSE(replay_recovery_episode(g, cfg, req).found);
  req.trial = 0;
  req.k = 4;  // not a configured k
  EXPECT_FALSE(replay_recovery_episode(g, cfg, req).found);
}

#endif  // SPLICE_OBS

TEST_F(ObsDeterminismTest, ReplayMatchesDirectExperimentEpisode) {
  // Independent of the obs layer: replaying every (k, src, dst) of one
  // trial must agree with what the experiment measured in aggregate. Here:
  // a delivered episode's stretch can never be below 1.
  const Graph g = topo::by_name("abilene");
  const RecoveryExperimentConfig cfg = small_config();
  ReplayRequest req;
  req.p = 0.08;
  req.trial = 3;
  req.k = 3;
  int found = 0;
  for (NodeId src = 0; src < g.node_count() && found < 20; ++src) {
    for (NodeId dst = 0; dst < g.node_count() && found < 20; ++dst) {
      if (src == dst) continue;
      req.src = src;
      req.dst = dst;
      const ReplayResult res = replay_recovery_episode(g, cfg, req);
      if (!res.found) continue;
      ++found;
      if (res.recovery.delivered && res.stretch > 0.0) {
        EXPECT_GE(res.stretch, 1.0);
      }
    }
  }
  EXPECT_GT(found, 0);
}

}  // namespace
}  // namespace splice
