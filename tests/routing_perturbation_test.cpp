// Perturbation-strategy tests: the §3.1.1 bound L <= L' <= L*(1+mult),
// degree-based multiplier shape, determinism, and the Appendix-B signed
// variant.
#include "routing/perturbation.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(PerturbationKindParsing, RoundTrip) {
  EXPECT_EQ(parse_perturbation_kind("none"), PerturbationKind::kNone);
  EXPECT_EQ(parse_perturbation_kind("uniform"), PerturbationKind::kUniform);
  EXPECT_EQ(parse_perturbation_kind("degree"), PerturbationKind::kDegreeBased);
  EXPECT_EQ(parse_perturbation_kind("degree-based"),
            PerturbationKind::kDegreeBased);
  for (auto kind : {PerturbationKind::kNone, PerturbationKind::kUniform,
                    PerturbationKind::kDegreeBased}) {
    EXPECT_EQ(parse_perturbation_kind(to_string(kind)), kind);
  }
}

TEST(PerturbationKindParsing, RejectsUnknown) {
  EXPECT_THROW(parse_perturbation_kind("fancy"), std::invalid_argument);
}

TEST(Multipliers, NoneIsZero) {
  const Graph g = topo::geant();
  const auto mult = perturbation_multipliers(
      g, PerturbationConfig{PerturbationKind::kNone, 0.0, 3.0});
  for (double m : mult) EXPECT_DOUBLE_EQ(m, 0.0);
}

TEST(Multipliers, UniformIsConstantB) {
  const Graph g = topo::geant();
  const auto mult = perturbation_multipliers(
      g, PerturbationConfig{PerturbationKind::kUniform, 0.0, 2.5});
  for (double m : mult) EXPECT_DOUBLE_EQ(m, 2.5);
}

TEST(Multipliers, DegreeBasedSpansAtoB) {
  const Graph g = topo::sprint();
  const PerturbationConfig cfg{PerturbationKind::kDegreeBased, 0.5, 3.0};
  const auto mult = perturbation_multipliers(g, cfg);
  double lo = 1e9;
  double hi = -1e9;
  for (double m : mult) {
    EXPECT_GE(m, cfg.a - 1e-12);
    EXPECT_LE(m, cfg.b + 1e-12);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  // The extreme degree-sum links should hit the endpoints exactly.
  EXPECT_NEAR(lo, cfg.a, 1e-12);
  EXPECT_NEAR(hi, cfg.b, 1e-12);
}

TEST(Multipliers, DegreeBasedMonotoneInDegreeSum) {
  const Graph g = topo::sprint();
  const auto mult = perturbation_multipliers(
      g, PerturbationConfig{PerturbationKind::kDegreeBased, 0.0, 3.0});
  for (EdgeId e1 = 0; e1 < g.edge_count(); ++e1) {
    for (EdgeId e2 = 0; e2 < g.edge_count(); ++e2) {
      const int s1 = g.degree(g.edge(e1).u) + g.degree(g.edge(e1).v);
      const int s2 = g.degree(g.edge(e2).u) + g.degree(g.edge(e2).v);
      if (s1 < s2) {
        EXPECT_LE(mult[static_cast<std::size_t>(e1)],
                  mult[static_cast<std::size_t>(e2)] + 1e-12);
      }
    }
  }
}

TEST(Multipliers, RegularGraphUsesMidpoint) {
  const Graph g = ring(8);  // all degree sums equal
  const auto mult = perturbation_multipliers(
      g, PerturbationConfig{PerturbationKind::kDegreeBased, 1.0, 3.0});
  for (double m : mult) EXPECT_DOUBLE_EQ(m, 2.0);
}

// Property sweep over kinds and parameter ranges: the §3.1.1 bound.
struct BoundParam {
  PerturbationKind kind;
  double a;
  double b;
  std::uint64_t seed;
};

class PerturbationBound : public ::testing::TestWithParam<BoundParam> {};

TEST_P(PerturbationBound, RespectsPaperBound) {
  const auto param = GetParam();
  const Graph g = topo::sprint();
  const auto mult = perturbation_multipliers(
      g, PerturbationConfig{param.kind, param.a, param.b});
  Rng rng(param.seed);
  const auto w =
      perturb_weights(g, PerturbationConfig{param.kind, param.a, param.b}, rng);
  ASSERT_EQ(w.size(), static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Weight l = g.edge(e).weight;
    const auto idx = static_cast<std::size_t>(e);
    EXPECT_GE(w[idx], l);  // perturbation only adds
    EXPECT_LE(w[idx], l * (1.0 + mult[idx]) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndRanges, PerturbationBound,
    ::testing::Values(
        BoundParam{PerturbationKind::kNone, 0, 3, 1},
        BoundParam{PerturbationKind::kUniform, 0, 1, 2},
        BoundParam{PerturbationKind::kUniform, 0, 3, 3},
        BoundParam{PerturbationKind::kDegreeBased, 0, 3, 4},
        BoundParam{PerturbationKind::kDegreeBased, 0, 1, 5},
        BoundParam{PerturbationKind::kDegreeBased, 1, 5, 6},
        BoundParam{PerturbationKind::kDegreeBased, 0, 3, 7}));

TEST(PerturbWeights, DeterministicPerSeed) {
  const Graph g = topo::geant();
  const PerturbationConfig cfg{PerturbationKind::kDegreeBased, 0.0, 3.0};
  Rng r1(9);
  Rng r2(9);
  EXPECT_EQ(perturb_weights(g, cfg, r1), perturb_weights(g, cfg, r2));
}

TEST(PerturbWeights, DifferentSeedsDiffer) {
  const Graph g = topo::geant();
  const PerturbationConfig cfg{PerturbationKind::kDegreeBased, 0.0, 3.0};
  Rng r1(9);
  Rng r2(10);
  EXPECT_NE(perturb_weights(g, cfg, r1), perturb_weights(g, cfg, r2));
}

TEST(PerturbWeights, NoneKindReturnsOriginal) {
  const Graph g = topo::geant();
  Rng rng(1);
  const auto w = perturb_weights(
      g, PerturbationConfig{PerturbationKind::kNone, 0.0, 0.0}, rng);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(w[static_cast<std::size_t>(e)], g.edge(e).weight);
  }
}

TEST(SignedPerturbation, StaysWithinBand) {
  const Graph g = topo::sprint();
  Rng rng(3);
  const double c = 0.4;
  const auto w = perturb_weights_signed(g, c, rng);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Weight l = g.edge(e).weight;
    const auto idx = static_cast<std::size_t>(e);
    EXPECT_GE(w[idx], l * (1 - c) - 1e-9);
    EXPECT_LE(w[idx], l * (1 + c) + 1e-9);
    EXPECT_GT(w[idx], 0.0);
  }
}

TEST(SignedPerturbation, MeanIsUnbiased) {
  const Graph g = topo::geant();
  Rng rng(4);
  double sum_ratio = 0.0;
  const int draws = 400;
  for (int i = 0; i < draws; ++i) {
    const auto w = perturb_weights_signed(g, 0.5, rng);
    double tot = 0.0;
    for (Weight x : w) tot += x;
    sum_ratio += tot / g.total_weight();
  }
  EXPECT_NEAR(sum_ratio / draws, 1.0, 0.01);
}

}  // namespace
}  // namespace splice
