// Metrics registry tests: sharded-counter determinism across thread
// counts, histogram merge vs a serial oracle, snapshot stability,
// enable/disable gating.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace splice::obs {
namespace {

class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::set_enabled(true);
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    MetricsRegistry::global().reset();
    MetricsRegistry::set_enabled(false);
  }
};

/// Splits `items` work items across `threads` real threads (round-robin) and
/// runs fn(item) — the sharded-cell contention pattern the registry is
/// built for.
template <typename Fn>
void run_threaded(int items, int threads, Fn fn) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = t; i < items; i += threads) fn(i);
    });
  }
  for (auto& th : pool) th.join();
}

TEST_F(ObsMetricsTest, CounterTotalsIdenticalAcrossThreadCounts) {
  constexpr int kItems = 20000;
  long long expect = 0;
  for (int i = 0; i < kItems; ++i) expect += 1 + i % 7;

  for (int threads : {1, 2, 8}) {
    Counter& c = MetricsRegistry::global().counter("test.ctr");
    c.reset();
    run_threaded(kItems, threads,
                 [&](int i) { c.add(1 + i % 7); });
    EXPECT_EQ(c.value(), expect) << "threads=" << threads;
  }
}

TEST_F(ObsMetricsTest, HistogramMergeMatchesSerialOracle) {
  // Integer-valued samples: the sharded double sums must be exact, so the
  // merged histogram equals the serial Histogram bit for bit.
  constexpr int kItems = 20000;
  Rng rng(11);
  std::vector<double> samples;
  samples.reserve(kItems);
  for (int i = 0; i < kItems; ++i) {
    samples.push_back(static_cast<double>(rng.below(300)));  // clamps too
  }
  Histogram oracle(0.0, 256.0, 64);
  for (double x : samples) oracle.add(x);

  for (int threads : {1, 2, 8}) {
    HistogramMetric& h =
        MetricsRegistry::global().histogram("test.hist", 0.0, 256.0, 64);
    h.reset();
    run_threaded(kItems, threads,
                 [&](int i) { h.observe(samples[static_cast<std::size_t>(i)]); });
    const Histogram merged = h.merged();
    ASSERT_EQ(merged.bins(), oracle.bins());
    EXPECT_EQ(merged.total(), oracle.total()) << "threads=" << threads;
    EXPECT_EQ(merged.sum(), oracle.sum()) << "threads=" << threads;
    for (int b = 0; b < oracle.bins(); ++b) {
      ASSERT_EQ(merged.count(b), oracle.count(b))
          << "threads=" << threads << " bin=" << b;
    }
  }
}

TEST_F(ObsMetricsTest, ObserveBinnedMatchesPerSampleObserve) {
  // The batch-flush path (used by the forwarding kernel) must produce
  // byte-identical snapshots to per-sample observe() for integer samples.
  constexpr int kItems = 5000;
  Rng rng(23);
  std::vector<double> samples;
  for (int i = 0; i < kItems; ++i) {
    samples.push_back(static_cast<double>(rng.below(300)));
  }

  HistogramMetric& per_sample =
      MetricsRegistry::global().histogram("binned.a", 0.0, 256.0, 64);
  for (double x : samples) per_sample.observe(x);

  HistogramMetric& batched =
      MetricsRegistry::global().histogram("binned.b", 0.0, 256.0, 64);
  // Flush in several chunks, as successive kernel batches would.
  for (int chunk = 0; chunk < 5; ++chunk) {
    long long bins[64] = {};
    double sum = 0.0;
    for (int i = chunk; i < kItems; i += 5) {
      ++bins[Histogram::bin_index(0.0, 256.0, 64, samples[
          static_cast<std::size_t>(i)])];
      sum += samples[static_cast<std::size_t>(i)];
    }
    batched.observe_binned(bins, 64, sum);
  }

  const Histogram a = per_sample.merged();
  const Histogram b = batched.merged();
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.sum(), b.sum());  // exact: integer-valued samples
  for (int i = 0; i < a.bins(); ++i) {
    ASSERT_EQ(a.count(i), b.count(i)) << "bin " << i;
  }
}

TEST_F(ObsMetricsTest, SnapshotBitIdenticalAcrossThreadCounts) {
  // The acceptance contract: for a fixed workload, the *rendered* snapshot
  // (every counter, every bin, every sum byte) is identical at 1/2/8
  // threads.
  constexpr int kItems = 8192;
  std::vector<std::string> rendered;
  for (int threads : {1, 2, 8}) {
    MetricsRegistry::global().reset();
    Counter& c = MetricsRegistry::global().counter("snap.packets");
    HistogramMetric& h =
        MetricsRegistry::global().histogram("snap.hops", 0.0, 64.0, 32);
    MetricsRegistry::global().gauge("snap.arcs").set(1234.0);
    run_threaded(kItems, threads, [&](int i) {
      c.add(i % 3);
      h.observe(static_cast<double>(i % 61));
    });
    rendered.push_back(metrics_json_body(MetricsRegistry::global().snapshot()));
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(rendered[0], rendered[2]);
}

TEST_F(ObsMetricsTest, SnapshotIsNameSorted) {
  MetricsRegistry::global().counter("b.second").add(2);
  MetricsRegistry::global().counter("a.first").add(1);
  MetricsRegistry::global().counter("c.third").add(3);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  std::vector<std::string> names;
  for (const CounterSample& s : snap.counters) names.push_back(s.name);
  ASSERT_GE(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(ObsMetricsTest, MacrosNoOpWhenDisabled) {
  MetricsRegistry::set_enabled(false);
  SPLICE_OBS_COUNT("disabled.ctr", 5);
  SPLICE_OBS_GAUGE_SET("disabled.gauge", 7.0);
  SPLICE_OBS_OBSERVE("disabled.hist", 0.0, 10.0, 10, 3.0);
  MetricsRegistry::set_enabled(true);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  for (const CounterSample& s : snap.counters) {
    EXPECT_TRUE(s.name.rfind("disabled.", 0) != 0) << s.name;
  }
  for (const GaugeSample& s : snap.gauges) {
    EXPECT_TRUE(s.name.rfind("disabled.", 0) != 0) << s.name;
  }
  for (const HistogramSample& s : snap.histograms) {
    EXPECT_TRUE(s.name.rfind("disabled.", 0) != 0) << s.name;
  }
}

TEST_F(ObsMetricsTest, MacrosRecordWhenEnabled) {
  SPLICE_OBS_COUNT("macro.ctr", 2);
  SPLICE_OBS_COUNT("macro.ctr", 3);
  SPLICE_OBS_GAUGE_SET("macro.gauge", 2.5);
  SPLICE_OBS_OBSERVE("macro.hist", 0.0, 10.0, 10, 7.0);
  EXPECT_EQ(MetricsRegistry::global().counter("macro.ctr").value(), 5);
  EXPECT_DOUBLE_EQ(MetricsRegistry::global().gauge("macro.gauge").value(),
                   2.5);
  const Histogram h =
      MetricsRegistry::global().histogram("macro.hist", 0.0, 10.0, 10)
          .merged();
  EXPECT_EQ(h.total(), 1);
  EXPECT_EQ(h.count(7), 1);
}

TEST_F(ObsMetricsTest, ResetZeroesButKeepsHandles) {
  Counter& c = MetricsRegistry::global().counter("reset.ctr");
  c.add(42);
  MetricsRegistry::global().reset();
  EXPECT_EQ(c.value(), 0);  // same handle, zeroed
  c.add(7);
  EXPECT_EQ(c.value(), 7);
}

TEST_F(ObsMetricsTest, GaugeLastWriterWins) {
  Gauge& g = MetricsRegistry::global().gauge("gauge.v");
  g.set(1.0);
  g.set(-3.75);
  EXPECT_DOUBLE_EQ(g.value(), -3.75);
}

TEST_F(ObsMetricsTest, HistogramBinningMatchesHistogramRule) {
  // The metric and the plain Histogram must share one binning rule,
  // including clamping below lo and above hi.
  HistogramMetric& h =
      MetricsRegistry::global().histogram("rule.hist", 0.0, 10.0, 5);
  Histogram oracle(0.0, 10.0, 5);
  for (double x : {-1.0, 0.0, 1.9, 2.0, 9.999, 10.0, 50.0}) {
    h.observe(x);
    oracle.add(x);
  }
  const Histogram merged = h.merged();
  for (int b = 0; b < oracle.bins(); ++b) {
    EXPECT_EQ(merged.count(b), oracle.count(b)) << "bin " << b;
  }
  EXPECT_EQ(merged.sum(), oracle.sum());
}

}  // namespace
}  // namespace splice::obs
