// Coverage-aware slicing tests (§5 alternate slicing mechanisms).
#include "routing/coverage.h"

#include <gtest/gtest.h>

#include "sim/failure.h"
#include "splicing/reliability.h"
#include "topo/datasets.h"

namespace splice {
namespace {

CoverageSliceConfig cov_cfg(SliceId k, std::uint64_t seed = 1) {
  CoverageSliceConfig cfg;
  cfg.slices = k;
  cfg.seed = seed;
  return cfg;
}

TEST(CoverageSlicing, SliceZeroIsOriginal) {
  const Graph g = topo::geant();
  const auto weights = choose_coverage_aware_weights(g, cov_cfg(3));
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_TRUE(weights[0].empty());  // original weights sentinel
  for (std::size_t s = 1; s < weights.size(); ++s) {
    ASSERT_EQ(weights[s].size(), static_cast<std::size_t>(g.edge_count()));
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_GE(weights[s][static_cast<std::size_t>(e)], g.edge(e).weight);
    }
  }
}

TEST(CoverageSlicing, ControlPlaneBuilds) {
  const Graph g = topo::geant();
  const auto mir = build_coverage_aware_control_plane(g, cov_cfg(4));
  EXPECT_EQ(mir.slice_count(), 4);
  // Slice 0 must route exactly like plain shortest paths.
  const RoutingInstance base(g, g.weights());
  for (NodeId v = 0; v < g.node_count(); v += 3) {
    for (NodeId d = 0; d < g.node_count(); d += 5) {
      EXPECT_DOUBLE_EQ(mir.slice(0).distance(v, d), base.distance(v, d));
    }
  }
}

TEST(CoverageSlicing, CoverageGrowsMonotonically) {
  const Graph g = topo::sprint();
  const auto mir = build_coverage_aware_control_plane(g, cov_cfg(5));
  long long prev = 0;
  for (SliceId k = 1; k <= 5; ++k) {
    const long long covered = count_covered_arcs(g, mir, k);
    EXPECT_GT(covered, prev) << "k=" << k;
    prev = covered;
  }
}

TEST(CoverageSlicing, BeatsRandomSlicingOnCoverage) {
  // The greedy search maximizes arc coverage, so for equal k it must cover
  // at least as many (dst, arc) pairs as the plain random control plane
  // built from the same perturbation family.
  const Graph g = topo::sprint();
  const SliceId k = 4;
  const auto greedy = build_coverage_aware_control_plane(g, cov_cfg(k, 3));
  ControlPlaneConfig rnd;
  rnd.slices = k;
  rnd.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  rnd.seed = 3;
  const MultiInstanceRouting random_mir(g, rnd);
  EXPECT_GE(count_covered_arcs(g, greedy, k),
            count_covered_arcs(g, random_mir, k));
}

TEST(CoverageSlicing, ImprovesReliabilityOverRandomOnAverage) {
  // §5's conjecture ("might perform even better"): aggregated over several
  // construction seeds and shared failure sets, the coverage-aware plane
  // disconnects no more pairs than same-k random slicing. (Any single seed
  // can go either way; the aggregate advantage is what §5 predicts.)
  const Graph g = topo::sprint();
  const SliceId k = 3;
  double greedy_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed : {3ULL, 7ULL, 11ULL}) {
    const auto greedy =
        build_coverage_aware_control_plane(g, cov_cfg(k, seed));
    ControlPlaneConfig rnd;
    rnd.slices = k;
    rnd.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
    rnd.seed = seed;
    const MultiInstanceRouting random_mir(g, rnd);
    const SplicedReliabilityAnalyzer greedy_an(g, greedy);
    const SplicedReliabilityAnalyzer random_an(g, random_mir);
    Rng rng(11);
    for (int trial = 0; trial < 80; ++trial) {
      const auto alive = sample_alive_mask(g.edge_count(), 0.05, rng);
      greedy_total += greedy_an.disconnected_fraction(k, alive);
      random_total += random_an.disconnected_fraction(k, alive);
    }
  }
  EXPECT_LE(greedy_total, random_total * 1.02);
}

TEST(CoverageSlicing, DeterministicPerSeed) {
  const Graph g = topo::geant();
  const auto a = choose_coverage_aware_weights(g, cov_cfg(3, 5));
  const auto b = choose_coverage_aware_weights(g, cov_cfg(3, 5));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) EXPECT_EQ(a[s], b[s]);
}

TEST(CoverageSlicing, SingleSliceIsJustBaseline) {
  const Graph g = topo::geant();
  const auto weights = choose_coverage_aware_weights(g, cov_cfg(1));
  ASSERT_EQ(weights.size(), 1u);
  EXPECT_TRUE(weights[0].empty());
}

TEST(ExplicitWeightsConstructor, AcceptsMixedVectors) {
  const Graph g = topo::abilene();
  std::vector<std::vector<Weight>> weights(2);
  weights[1] = g.weights();
  weights[1][0] *= 5.0;
  const MultiInstanceRouting mir(g, std::move(weights));
  EXPECT_EQ(mir.slice_count(), 2);
  // Slice 0 = original; slice 1 sees the inflated first link.
  EXPECT_DOUBLE_EQ(mir.slice(0).weights()[0], g.edge(0).weight);
  EXPECT_DOUBLE_EQ(mir.slice(1).weights()[0], 5.0 * g.edge(0).weight);
}

}  // namespace
}  // namespace splice
