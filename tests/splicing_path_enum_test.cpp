// Path-enumeration tests: exhaustiveness on small graphs, bounds, header
// reconstruction (the Algorithm 1 inverse), failure masks.
#include "splicing/path_enum.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/datasets.h"

namespace splice {
namespace {

SplicerConfig cfg_k(SliceId k, std::uint64_t seed = 9) {
  SplicerConfig cfg;
  cfg.slices = k;
  cfg.seed = seed;
  cfg.perturbation = {PerturbationKind::kUniform, 0.0, 3.0};
  return cfg;
}

TEST(PathEnum, SingleSliceYieldsExactlyOnePath) {
  const Splicer splicer(topo::sprint(), cfg_k(3));
  PathEnumOptions opts;
  opts.use_k = 1;
  const auto paths = enumerate_spliced_paths(splicer, 0, 20, opts);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], splicer.control_plane().slice(0).path(0, 20));
}

TEST(PathEnum, TrivialSelfPath) {
  const Splicer splicer(topo::geant(), cfg_k(2));
  const auto paths = enumerate_spliced_paths(splicer, 4, 4);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], std::vector<NodeId>{4});
}

TEST(PathEnum, PathsAreSimpleAndValid) {
  const Splicer splicer(topo::sprint(), cfg_k(5));
  PathEnumOptions opts;
  opts.max_paths = 500;
  const auto paths = enumerate_spliced_paths(splicer, 3, 40, opts);
  ASSERT_FALSE(paths.empty());
  for (const auto& path : paths) {
    EXPECT_EQ(path.front(), 3);
    EXPECT_EQ(path.back(), 40);
    std::set<NodeId> seen(path.begin(), path.end());
    EXPECT_EQ(seen.size(), path.size()) << "path revisits a node";
    // Each hop must be a real union arc: some slice forwards that way.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      bool realizable = false;
      for (SliceId s = 0; s < splicer.slice_count(); ++s) {
        realizable |= splicer.control_plane().slice(s).next_hop(
                          path[i], 40) == path[i + 1];
      }
      EXPECT_TRUE(realizable);
    }
  }
}

TEST(PathEnum, PathsAreDistinct) {
  const Splicer splicer(topo::sprint(), cfg_k(5));
  PathEnumOptions opts;
  opts.max_paths = 200;
  const auto paths = enumerate_spliced_paths(splicer, 0, 30, opts);
  std::set<std::vector<NodeId>> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
}

TEST(PathEnum, MaxPathsBoundRespected) {
  const Splicer splicer(topo::sprint(), cfg_k(5));
  PathEnumOptions opts;
  opts.max_paths = 7;
  const auto paths = enumerate_spliced_paths(splicer, 0, 30, opts);
  EXPECT_LE(paths.size(), 7u);
}

TEST(PathEnum, MaxHopsBoundRespected) {
  const Splicer splicer(topo::sprint(), cfg_k(5));
  PathEnumOptions opts;
  opts.max_paths = 200;
  opts.max_hops = 6;
  for (const auto& path :
       enumerate_spliced_paths(splicer, 0, 30, opts)) {
    EXPECT_LE(path.size(), 7u);  // max_hops hops = max_hops + 1 nodes
  }
}

TEST(PathEnum, MoreSlicesMorePaths) {
  const Splicer splicer(topo::sprint(), cfg_k(5));
  PathEnumOptions one;
  one.use_k = 1;
  one.max_paths = 1000;
  PathEnumOptions five;
  five.use_k = 5;
  five.max_paths = 1000;
  const auto p1 = enumerate_spliced_paths(splicer, 5, 45, one);
  const auto p5 = enumerate_spliced_paths(splicer, 5, 45, five);
  EXPECT_GE(p5.size(), p1.size());
  EXPECT_GT(p5.size(), 1u);
}

TEST(PathEnum, FailureMaskPrunesPaths) {
  const Splicer splicer(topo::sprint(), cfg_k(4));
  PathEnumOptions opts;
  opts.max_paths = 1000;
  const auto all = enumerate_spliced_paths(splicer, 2, 33, opts);
  // Fail the first link of the first path.
  ASSERT_FALSE(all.empty());
  const EdgeId cut =
      splicer.graph().find_edge(all[0][0], all[0][1]);
  ASSERT_NE(cut, kInvalidEdge);
  opts.edge_alive.assign(
      static_cast<std::size_t>(splicer.graph().edge_count()), 1);
  opts.edge_alive[static_cast<std::size_t>(cut)] = 0;
  const auto pruned = enumerate_spliced_paths(splicer, 2, 33, opts);
  EXPECT_LT(pruned.size(), all.size());
  for (const auto& path : pruned) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_FALSE(path[i] == all[0][0] && path[i + 1] == all[0][1]);
    }
  }
}

TEST(HeaderForPath, RealizesEnumeratedPaths) {
  // The inverse of Algorithm 1: for each enumerated path, the synthesized
  // header must steer the data plane along exactly that node sequence.
  const Splicer splicer(topo::sprint(), cfg_k(5));
  PathEnumOptions opts;
  opts.max_paths = 50;
  const auto paths = enumerate_spliced_paths(splicer, 3, 40, opts);
  ASSERT_FALSE(paths.empty());
  int verified = 0;
  for (const auto& path : paths) {
    const auto header = header_for_path(splicer, path);
    if (!header.has_value()) continue;  // longer than header capacity
    const Delivery d = splicer.send(3, 40, *header);
    ASSERT_TRUE(d.delivered());
    ASSERT_EQ(d.hops.size() + 1, path.size());
    for (std::size_t i = 0; i < d.hops.size(); ++i) {
      EXPECT_EQ(d.hops[i].next, path[i + 1]);
    }
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

TEST(HeaderForPath, RejectsUnrealizablePath) {
  const Splicer splicer(topo::sprint(), cfg_k(2));
  // A "path" jumping between non-adjacent nodes can't be realized.
  const std::vector<NodeId> bogus{0, 50, 20};
  EXPECT_FALSE(header_for_path(splicer, bogus).has_value());
}

TEST(HeaderForPath, RejectsOverlongPath) {
  SplicerConfig cfg = cfg_k(2);
  cfg.header_hops = 2;
  const Splicer splicer(topo::sprint(), cfg);
  const auto full = splicer.control_plane().slice(0).path(0, 45);
  if (full.size() > 3) {
    EXPECT_FALSE(header_for_path(splicer, full).has_value());
  }
}

}  // namespace
}  // namespace splice
