// Cross-module integration tests: full control-plane -> data-plane ->
// recovery -> analysis pipelines on the paper's topologies, checking the
// qualitative results of Table 1 end to end (at reduced trial counts).
#include <gtest/gtest.h>

#include <map>

#include "sim/experiments.h"
#include "sim/failure.h"
#include "splicing/metrics.h"
#include "splicing/recovery.h"
#include "splicing/reliability.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(Integration, Table1ReliabilityApproachesOptimal) {
  // "The reliability achieved with random perturbations for <= 10 slices
  // approaches the optimal that can be achieved by any routing algorithm."
  ReliabilityConfig cfg;
  cfg.k_values = {1, 10};
  cfg.p_values = {0.05};
  cfg.trials = 150;
  const auto curves = run_reliability_experiment(topo::sprint(), cfg);
  std::map<SliceId, double> by_k;
  for (const auto& pt : curves.points) by_k[pt.k] = pt.mean_disconnected;
  const double best = curves.best_possible.front().mean_disconnected;

  // k=1 leaves a substantial reliability shortfall...
  EXPECT_GT(by_k[1], 2.0 * best);
  // ...k=10 nearly closes it.
  EXPECT_LT(by_k[10] - best, 0.35 * (by_k[1] - best));
}

TEST(Integration, Table1RecoveryInAboutTwoTrials) {
  // "An end host can typically recover in slightly more than two trials."
  RecoveryExperimentConfig cfg;
  cfg.k_values = {5};
  cfg.p_values = {0.04};
  cfg.trials = 25;
  cfg.pair_sample = 120;
  const auto points = run_recovery_experiment(topo::sprint(), cfg);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].mean_trials, 1.0);
  EXPECT_LT(points[0].mean_trials, 3.5);
}

TEST(Integration, Table1LoopsAreRare) {
  // "Using two slices, loops occur in only about 1% of all cases."
  RecoveryExperimentConfig cfg;
  cfg.k_values = {2};
  cfg.p_values = {0.05};
  cfg.trials = 25;
  cfg.pair_sample = 150;
  const auto points = run_recovery_experiment(topo::sprint(), cfg);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_LT(points[0].two_hop_loop_rate, 0.15);
}

TEST(Integration, RecoveredStretchIsSmall) {
  // §4.3: recovered paths ~1.3x delay, ~1.5x hops.
  RecoveryExperimentConfig cfg;
  cfg.k_values = {5};
  cfg.p_values = {0.04};
  cfg.trials = 25;
  cfg.pair_sample = 120;
  const auto points = run_recovery_experiment(topo::sprint(), cfg);
  ASSERT_EQ(points.size(), 1u);
  if (points[0].mean_stretch > 0.0) {
    EXPECT_LT(points[0].mean_stretch, 2.2);
    EXPECT_LT(points[0].mean_hop_inflation, 3.0);
  }
}

TEST(Integration, EndSystemVsNetworkRecovery) {
  // Both schemes must beat no-recovery; network-based recovery can dead-end
  // so it may trail the 5-trial end-system scheme (§4.3's observation that
  // its stretch and hop inflation are "slightly higher" and not all pairs
  // are recoverable).
  RecoveryExperimentConfig base;
  base.k_values = {3};
  base.p_values = {0.06};
  base.trials = 20;
  base.pair_sample = 150;
  base.seed = 5;

  auto end_system = base;
  end_system.recovery.scheme = RecoveryScheme::kEndSystemCoinFlip;
  auto network = base;
  network.recovery.scheme = RecoveryScheme::kNetworkDeflection;

  const auto es = run_recovery_experiment(topo::sprint(), end_system);
  const auto nw = run_recovery_experiment(topo::sprint(), network);
  ASSERT_EQ(es.size(), 1u);
  ASSERT_EQ(nw.size(), 1u);
  EXPECT_LT(es[0].frac_unrecovered, es[0].frac_initial_broken);
  EXPECT_LT(nw[0].frac_unrecovered, nw[0].frac_initial_broken);
}

TEST(Integration, SplicerRecoveryOnLiveNetworkObject) {
  // Exercise the full public API path: build a Splicer, fail links on its
  // own network, recover, verify against its own reliability analyzer.
  SplicerConfig cfg;
  cfg.slices = 5;
  cfg.seed = 77;
  Splicer splicer(topo::geant(), cfg);
  const SplicedReliabilityAnalyzer analyzer(splicer.graph(),
                                            splicer.control_plane());
  Rng rng(8);
  const auto alive = sample_alive_mask(splicer.graph().edge_count(), 0.1, rng);
  splicer.network().set_link_mask(alive);

  int recovered = 0;
  int feasible = 0;
  for (NodeId src = 0; src < splicer.graph().node_count(); ++src) {
    for (NodeId dst = 0; dst < splicer.graph().node_count(); ++dst) {
      if (src == dst) continue;
      RecoveryConfig rcfg;
      const RecoveryResult r =
          attempt_recovery(splicer.network(), src, dst, rcfg, rng);
      const bool possible = analyzer.connected(
          src, dst, 5, alive, UnionSemantics::kDirectedForwarding);
      if (r.delivered) {
        EXPECT_TRUE(possible) << src << "->" << dst;
      }
      feasible += possible ? 1 : 0;
      recovered += r.delivered ? 1 : 0;
    }
  }
  // Most feasible pairs should actually be recovered within 5 trials.
  EXPECT_GT(recovered, feasible * 7 / 10);
}

TEST(Integration, GeantAndSprintCurvesHaveSameShape) {
  // The paper only shows Sprint "due to space constraints"; both topologies
  // must exhibit the same qualitative ordering.
  ReliabilityConfig cfg;
  cfg.k_values = {1, 5};
  cfg.p_values = {0.06};
  cfg.trials = 100;
  for (const char* topo_name : {"geant", "sprint"}) {
    const auto curves =
        run_reliability_experiment(topo::by_name(topo_name), cfg);
    std::map<SliceId, double> by_k;
    for (const auto& pt : curves.points) by_k[pt.k] = pt.mean_disconnected;
    EXPECT_LT(by_k[5], by_k[1]) << topo_name;
  }
}

TEST(Integration, DiversityExponentialForLinearState) {
  // §1's headline: exponential path diversity for linear state increase.
  const auto points = run_diversity_experiment(
      topo::sprint(), {1, 2, 3, 4, 5},
      {PerturbationKind::kDegreeBased, 0.0, 3.0}, 3);
  ASSERT_EQ(points.size(), 5u);
  // State grows linearly...
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_EQ(points[i].fib_entries,
              (i + 1) * points[0].fib_entries);
  }
  // ...while the walk count grows by orders of magnitude.
  EXPECT_GT(points[4].log10_paths, points[1].log10_paths + 1.0);
}

}  // namespace
}  // namespace splice
