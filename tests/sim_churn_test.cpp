// Churn-trace generator tests: the link-event stream must be a pure
// function of (graph, config), time-sorted, and per-link consistent — no
// overlapping windows, every failure paired with a restore, every
// maintenance window closed with a factor-1.0 event — so that a full
// replay returns the network to its initial state and the quiescent
// differential tests can compare against the pristine control plane.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dataplane/fib_publisher.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/churn.h"
#include "topo/datasets.h"

namespace splice {
namespace {

ControlPlaneConfig make_cfg(SliceId k) {
  return ControlPlaneConfig{
      k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false};
}

bool traces_equal(const std::vector<LinkEvent>& a,
                  const std::vector<LinkEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].at_ms != b[i].at_ms || a[i].edge != b[i].edge ||
        a[i].kind != b[i].kind || a[i].factor != b[i].factor) {
      return false;
    }
  }
  return true;
}

TEST(ChurnTrace, PureFunctionOfGraphAndConfig) {
  const Graph g = topo::geant();
  ChurnConfig cfg;
  cfg.incidents = 80;
  cfg.seed = 42;
  const auto a = generate_churn_trace(g, cfg);
  const auto b = generate_churn_trace(g, cfg);
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(traces_equal(a, b));

  cfg.seed = 43;
  const auto c = generate_churn_trace(g, cfg);
  EXPECT_FALSE(traces_equal(a, c));
}

TEST(ChurnTrace, TimeSortedAndPerLinkConsistent) {
  const Graph g = topo::geant();
  ChurnConfig cfg;
  cfg.incidents = 120;
  cfg.seed = 7;
  const auto trace = generate_churn_trace(g, cfg);
  ASSERT_FALSE(trace.empty());

  enum class LinkState { kUp, kDown, kScaled };
  std::vector<LinkState> state(static_cast<std::size_t>(g.edge_count()),
                               LinkState::kUp);
  double prev_t = -1.0;
  for (const LinkEvent& ev : trace) {
    EXPECT_GE(ev.at_ms, prev_t);
    prev_t = ev.at_ms;
    ASSERT_GE(ev.edge, 0);
    ASSERT_LT(ev.edge, g.edge_count());
    auto& s = state[static_cast<std::size_t>(ev.edge)];
    switch (ev.kind) {
      case LinkEventKind::kDown:
        EXPECT_EQ(s, LinkState::kUp) << "overlapping window on " << ev.edge;
        s = LinkState::kDown;
        break;
      case LinkEventKind::kUp:
        EXPECT_EQ(s, LinkState::kDown) << "unpaired restore on " << ev.edge;
        EXPECT_EQ(ev.factor, 1.0);
        s = LinkState::kUp;
        break;
      case LinkEventKind::kScale:
        if (ev.factor == 1.0) {
          EXPECT_EQ(s, LinkState::kScaled) << "unpaired close on " << ev.edge;
          s = LinkState::kUp;
        } else {
          EXPECT_EQ(s, LinkState::kUp) << "overlapping window on " << ev.edge;
          EXPECT_EQ(ev.factor, cfg.maint_factor);
          s = LinkState::kScaled;
        }
        break;
    }
  }
  // Every window the trace opened is closed by its end.
  for (std::size_t e = 0; e < state.size(); ++e) {
    EXPECT_EQ(state[e], LinkState::kUp) << "edge " << e << " left open";
  }
  EXPECT_EQ(count_events(trace, LinkEventKind::kDown),
            count_events(trace, LinkEventKind::kUp));
  EXPECT_EQ(count_events(trace, LinkEventKind::kScale) % 2, 0);
}

TEST(ChurnTrace, KindWeightsSelectEventMix) {
  const Graph g = topo::geant();
  ChurnConfig cfg;
  cfg.incidents = 60;
  cfg.seed = 9;

  // Flaps only: no maintenance windows.
  cfg.flap_weight = 1.0;
  cfg.srlg_weight = 0.0;
  cfg.maint_weight = 0.0;
  auto trace = generate_churn_trace(g, cfg);
  EXPECT_GT(count_events(trace, LinkEventKind::kDown), 0);
  EXPECT_EQ(count_events(trace, LinkEventKind::kScale), 0);

  // Maintenance only: no failures.
  cfg.flap_weight = 0.0;
  cfg.maint_weight = 1.0;
  trace = generate_churn_trace(g, cfg);
  EXPECT_EQ(count_events(trace, LinkEventKind::kDown), 0);
  EXPECT_GT(count_events(trace, LinkEventKind::kScale), 0);

  // SRLG bursts only: correlated failures — more downs than incidents,
  // since each burst fails a whole shared-risk group.
  cfg.srlg_weight = 1.0;
  cfg.maint_weight = 0.0;
  trace = generate_churn_trace(g, cfg);
  EXPECT_GT(count_events(trace, LinkEventKind::kDown), cfg.incidents);
  EXPECT_EQ(count_events(trace, LinkEventKind::kDown),
            count_events(trace, LinkEventKind::kUp));
}

TEST(ChurnTrace, EmptyInputsYieldEmptyTraces) {
  const Graph g = topo::abilene();
  ChurnConfig cfg;
  cfg.incidents = 0;
  EXPECT_TRUE(generate_churn_trace(g, cfg).empty());
}

TEST(ChurnTrace, FullReplayRoundTripsThePublisher) {
  Graph g = erdos_renyi(18, 0.22, 13);
  make_connected(g, 14);
  FibPublisher pub(g, make_cfg(2));
  const FibSet before = pub.published_fibs();  // copy of the pristine table

  ChurnConfig cfg;
  cfg.incidents = 32;
  cfg.seed = 99;
  const auto trace = generate_churn_trace(g, cfg);
  ASSERT_FALSE(trace.empty());
  for (const LinkEvent& ev : trace) apply_churn_event(pub, ev);
  pub.quiesce();

  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_TRUE(pub.published_net().link_alive(e)) << "edge " << e;
  }
  const auto got = pub.published_fibs().data();
  const auto want = before.data();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].next_hop, want[i].next_hop) << "entry " << i;
    ASSERT_EQ(got[i].edge, want[i].edge) << "entry " << i;
  }
}

}  // namespace
}  // namespace splice
