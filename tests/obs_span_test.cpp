// Span tests: deterministic timing via ManualClock, nesting/aggregation by
// name path, snapshot preorder, exporters, disabled inertness.
#include "obs/span.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/run_report.h"

namespace splice::obs {
namespace {

class ObsSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::set_enabled(true);
    MetricsRegistry::global().reset();
    SpanCollector::global().reset();
    SpanCollector::global().set_clock(&clock_);
  }
  void TearDown() override {
    SpanCollector::global().set_clock(nullptr);
    SpanCollector::global().reset();
    MetricsRegistry::global().reset();
    MetricsRegistry::set_enabled(false);
  }
  ManualClock clock_;
};

TEST_F(ObsSpanTest, SingleSpanRecordsElapsed) {
  {
    ObsSpan span("build");
    clock_.advance_ns(1500);
  }
  const SpanSnapshot snap = SpanCollector::global().snapshot();
  ASSERT_EQ(snap.stats.size(), 1u);
  EXPECT_EQ(snap.stats[0].path, "build");
  EXPECT_EQ(snap.stats[0].name, "build");
  EXPECT_EQ(snap.stats[0].depth, 0);
  EXPECT_EQ(snap.stats[0].count, 1);
  EXPECT_EQ(snap.stats[0].total_ns, 1500u);
}

TEST_F(ObsSpanTest, NestedSpansFormTree) {
  {
    ObsSpan outer("experiment");
    clock_.advance_ns(100);
    {
      ObsSpan inner("slice_build");
      clock_.advance_ns(40);
    }
    {
      ObsSpan inner("analyzer");
      clock_.advance_ns(10);
    }
    clock_.advance_ns(5);
  }
  const SpanSnapshot snap = SpanCollector::global().snapshot();
  ASSERT_EQ(snap.stats.size(), 3u);
  // Preorder, siblings name-sorted: root first, then analyzer < slice_build.
  EXPECT_EQ(snap.stats[0].path, "experiment");
  EXPECT_EQ(snap.stats[0].depth, 0);
  EXPECT_EQ(snap.stats[0].total_ns, 155u);  // outer includes both inners
  EXPECT_EQ(snap.stats[1].path, "experiment/analyzer");
  EXPECT_EQ(snap.stats[1].depth, 1);
  EXPECT_EQ(snap.stats[1].total_ns, 10u);
  EXPECT_EQ(snap.stats[2].path, "experiment/slice_build");
  EXPECT_EQ(snap.stats[2].depth, 1);
  EXPECT_EQ(snap.stats[2].total_ns, 40u);
}

TEST_F(ObsSpanTest, RepeatedSpansAggregateByPath) {
  for (int i = 0; i < 3; ++i) {
    ObsSpan outer("batch");
    {
      ObsSpan inner("trial");
      clock_.advance_ns(7);
    }
  }
  const SpanSnapshot snap = SpanCollector::global().snapshot();
  ASSERT_EQ(snap.stats.size(), 2u);
  EXPECT_EQ(snap.stats[0].path, "batch");
  EXPECT_EQ(snap.stats[0].count, 3);
  EXPECT_EQ(snap.stats[1].path, "batch/trial");
  EXPECT_EQ(snap.stats[1].count, 3);
  EXPECT_EQ(snap.stats[1].total_ns, 21u);
}

TEST_F(ObsSpanTest, PreorderSurvivesDotNames) {
  // '.' sorts before '/', so raw lexicographic path order would put
  // "control.x" between a parent "control" and its children — the snapshot
  // must still come out parent-before-children.
  {
    ObsSpan a("control");
    { ObsSpan child("zzz"); clock_.advance_ns(1); }
  }
  { ObsSpan b("control.x"); clock_.advance_ns(1); }
  const SpanSnapshot snap = SpanCollector::global().snapshot();
  ASSERT_EQ(snap.stats.size(), 3u);
  EXPECT_EQ(snap.stats[0].path, "control");
  EXPECT_EQ(snap.stats[1].path, "control/zzz");
  EXPECT_EQ(snap.stats[2].path, "control.x");
}

TEST_F(ObsSpanTest, MacroOpensScopeSpan) {
  {
    SPLICE_OBS_SPAN("macro_phase");
    clock_.advance_ns(9);
  }
  const SpanSnapshot snap = SpanCollector::global().snapshot();
  ASSERT_EQ(snap.stats.size(), 1u);
  EXPECT_EQ(snap.stats[0].path, "macro_phase");
  EXPECT_EQ(snap.stats[0].total_ns, 9u);
}

TEST_F(ObsSpanTest, DisabledSpansAreInert) {
  MetricsRegistry::set_enabled(false);
  {
    ObsSpan span("ghost");
    clock_.advance_ns(100);
  }
  MetricsRegistry::set_enabled(true);
  EXPECT_TRUE(SpanCollector::global().snapshot().stats.empty());
}

TEST_F(ObsSpanTest, SpansTableIndentsByDepth) {
  {
    ObsSpan outer("a");
    { ObsSpan inner("b"); clock_.advance_ns(1000); }
  }
  const Table t = spans_table(SpanCollector::global().snapshot());
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(0)[0], "a");
  EXPECT_EQ(t.row(1)[0], "  b");
}

TEST_F(ObsSpanTest, ExportersRenderSpans) {
  {
    ObsSpan span("phase");
    clock_.advance_ns(2000);
  }
  MetricsRegistry::global().counter("pkts").add(3);
  const MetricsSnapshot metrics = MetricsRegistry::global().snapshot();
  const SpanSnapshot spans = SpanCollector::global().snapshot();

  const std::string json = spans_json_body(spans);
  EXPECT_NE(json.find("\"path\": \"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\": 2000"), std::string::npos);

  const std::string prom = to_prometheus(metrics, spans);
  EXPECT_NE(prom.find("splice_pkts_total 3"), std::string::npos);
  EXPECT_NE(prom.find("splice_span_seconds_count{path=\"phase\"} 1"),
            std::string::npos);
}

TEST_F(ObsSpanTest, RunReportCapturesBoth) {
  {
    ObsSpan span("capture_phase");
    clock_.advance_ns(10);
  }
  SPLICE_OBS_COUNT("capture.ctr", 4);
  RunReport report = RunReport::capture("unit_test");
  report.add_param("topo", "abilene");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"report\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"topo\": \"abilene\""), std::string::npos);
  EXPECT_NE(json.find("\"capture.ctr\": 4"), std::string::npos);
  EXPECT_NE(json.find("capture_phase"), std::string::npos);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("capture.ctr"), std::string::npos);
  EXPECT_NE(text.find("capture_phase"), std::string::npos);
}

}  // namespace
}  // namespace splice::obs
