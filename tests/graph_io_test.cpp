// Topology parser/serializer tests: formats, errors, round-trips.
#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "topo/datasets.h"
#include "util/table.h"

namespace splice {
namespace {

TEST(TopologyIo, ParsesCompactEdgeList) {
  const Graph g = parse_topology("0 1 2.5\n1 2\n");
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 2.5);
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 1.0);  // default weight
}

TEST(TopologyIo, ParsesNamedNodes) {
  const Graph g = parse_topology(
      "node atlanta\n"
      "node boston\n"
      "edge atlanta boston 3\n");
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.find_node("atlanta"), 0);
  EXPECT_EQ(g.find_node("boston"), 1);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 3.0);
}

TEST(TopologyIo, ImplicitNodeCreationByName) {
  const Graph g = parse_topology("edge a b 1\nedge b c 2\n");
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.find_node("c"), 2);
}

TEST(TopologyIo, CommentsAndBlankLines) {
  const Graph g = parse_topology(
      "# full line comment\n"
      "\n"
      "0 1 2 # trailing comment\n");
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 2.0);
}

TEST(TopologyIo, NumericIdsExtendGraph) {
  const Graph g = parse_topology("0 5 1\n");
  EXPECT_EQ(g.node_count(), 6);
}

TEST(TopologyIo, ThrowsOnSelfLoop) {
  EXPECT_THROW(parse_topology("0 0 1\n"), TopologyParseError);
}

TEST(TopologyIo, ThrowsOnBadWeight) {
  EXPECT_THROW(parse_topology("0 1 -2\n"), TopologyParseError);
  EXPECT_THROW(parse_topology("0 1 0\n"), TopologyParseError);
}

TEST(TopologyIo, ThrowsOnDuplicateNode) {
  EXPECT_THROW(parse_topology("node a\nnode a\n"), TopologyParseError);
}

TEST(TopologyIo, ThrowsOnIncompleteEdge) {
  EXPECT_THROW(parse_topology("edge a\n"), TopologyParseError);
  EXPECT_THROW(parse_topology("justonetoken\n"), TopologyParseError);
}

TEST(TopologyIo, ThrowsOnMissingNodeName) {
  EXPECT_THROW(parse_topology("node\n"), TopologyParseError);
}

TEST(TopologyIo, ThrowsOnMissingFile) {
  EXPECT_THROW(load_topology("/nonexistent/topo.txt"), TopologyParseError);
}

TEST(TopologyIo, RoundTripNamedGraph) {
  const Graph original = topo::geant();
  const Graph reparsed = parse_topology(write_topology(original));
  ASSERT_EQ(reparsed.node_count(), original.node_count());
  ASSERT_EQ(reparsed.edge_count(), original.edge_count());
  for (EdgeId e = 0; e < original.edge_count(); ++e) {
    EXPECT_EQ(reparsed.edge(e).u, original.edge(e).u);
    EXPECT_EQ(reparsed.edge(e).v, original.edge(e).v);
    EXPECT_NEAR(reparsed.edge(e).weight, original.edge(e).weight, 1e-6);
  }
  for (NodeId v = 0; v < original.node_count(); ++v) {
    EXPECT_EQ(reparsed.name(v), original.name(v));
  }
}

TEST(TopologyIo, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/splice_io_test.topo";
  ASSERT_TRUE(write_file(path, write_topology(topo::abilene())));
  const Graph g = load_topology(path);
  EXPECT_EQ(g.node_count(), 11);
  EXPECT_EQ(g.edge_count(), 14);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace splice
