// Tests for the shared-memory telemetry segment (obs/shm_segment.h): the
// cross-process seqlock under the live telemetry plane.
//
// The torn-read test is the load-bearing one: a writer thread publishes
// self-describing patterned payloads at max rate while reader threads
// hammer read(); every accepted read is checked against a brute-force
// oracle (the pattern is a pure function of the sequence number carried in
// the payload's first word, so any mix of two generations is detectable).
// This test also runs under TSan via scripts/check.sh — the payload word
// loop is formally data-race-free, so a clean pass is by construction,
// not suppression.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/shm_segment.h"

namespace splice::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// The oracle's payload for sequence number `i`: first 8 bytes carry i,
/// the rest is a byte pattern derived from i, and the length varies with i
/// so tail-word handling is exercised. Any torn mix of two generations
/// breaks at least one of: the length (header vs i), the body bytes.
std::string pattern_payload(std::uint64_t i) {
  const std::size_t n = 64 + (i % 13) * 9;  // varies, not 8-aligned
  std::string out(n, '\0');
  std::memcpy(out.data(), &i, sizeof(i));
  for (std::size_t b = sizeof(i); b < n; ++b) {
    out[b] = static_cast<char>('a' + (i + b) % 23);
  }
  return out;
}

/// Brute-force check of one accepted read against the oracle.
bool payload_consistent(const std::string& got) {
  if (got.size() < sizeof(std::uint64_t)) return false;
  std::uint64_t i = 0;
  std::memcpy(&i, got.data(), sizeof(i));
  return got == pattern_payload(i);
}

TEST(ShmSegment, CreateRejectsBadCapacity) {
  ShmSegmentWriter w;
  std::string error;
  EXPECT_FALSE(w.create(temp_path("shm_cap0.tel"), 0, &error));
  EXPECT_FALSE(w.create(temp_path("shm_cap7.tel"), 7, &error));
  EXPECT_TRUE(w.create(temp_path("shm_cap8.tel"), 8, &error)) << error;
  std::remove(temp_path("shm_cap8.tel").c_str());
}

TEST(ShmSegment, AttachRejectsMissingAndShortFiles) {
  ShmSegmentReader r;
  std::string error;
  EXPECT_FALSE(r.attach(temp_path("shm_does_not_exist.tel"), &error));

  const std::string path = temp_path("shm_short.tel");
  {
    std::ofstream out(path);
    out << "tiny";
  }
  EXPECT_FALSE(r.attach(path, &error));
  EXPECT_NE(error.find("smaller than header"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ShmSegment, AttachRejectsBadMagicAndVersionMismatch) {
  const std::string path = temp_path("shm_version.tel");
  {
    ShmSegmentWriter w;
    ASSERT_TRUE(w.create(path, 4096));
    ASSERT_TRUE(w.publish("x", 1, 1));
  }

  // Corrupt the ABI version in place (offset: after the 8-byte magic).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const std::uint32_t bogus = kShmAbiVersion + 13;
    f.seekp(sizeof(std::uint64_t));
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  ShmSegmentReader r;
  std::string error;
  EXPECT_FALSE(r.attach(path, &error));
  EXPECT_NE(error.find("ABI"), std::string::npos) << error;

  // Corrupt the magic: the "this is not a segment" cue splice_top's
  // snapshot-file fallback keys on.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    const std::uint64_t bogus = 0x1122334455667788ULL;
    f.seekp(0);
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_FALSE(r.attach(path, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ShmSegment, EmptyThenPublishRoundTrip) {
  const std::string path = temp_path("shm_roundtrip.tel");
  ShmSegmentWriter w;
  ASSERT_TRUE(w.create(path, 4096));
  ShmSegmentReader r;
  std::string error;
  ASSERT_TRUE(r.attach(path, &error)) << error;

  std::string got;
  EXPECT_EQ(r.read(got), ShmReadResult::kEmpty);

  const std::string doc = pattern_payload(42);
  ASSERT_TRUE(w.publish(doc.data(), doc.size(), 1234));
  ShmSegmentInfo info;
  ASSERT_EQ(r.read(got, &info), ShmReadResult::kOk);
  EXPECT_EQ(got, doc);
  EXPECT_EQ(info.generation, 2u);
  EXPECT_EQ(info.payload_bytes, doc.size());
  EXPECT_EQ(info.heartbeat_ns, 1234u);
  EXPECT_EQ(info.flushes, 1u);
  EXPECT_EQ(info.dropped, 0u);
  std::remove(path.c_str());
}

TEST(ShmSegment, OversizePublishDroppedPreviousGenerationSurvives) {
  const std::string path = temp_path("shm_oversize.tel");
  ShmSegmentWriter w;
  ASSERT_TRUE(w.create(path, 128));
  const std::string small = pattern_payload(1);
  ASSERT_LE(small.size(), 128u);
  ASSERT_TRUE(w.publish(small.data(), small.size(), 10));

  const std::string big(4096, 'Z');
  EXPECT_FALSE(w.publish(big.data(), big.size(), 20));
  EXPECT_EQ(w.dropped(), 1u);

  ShmSegmentReader r;
  ASSERT_TRUE(r.attach(path));
  std::string got;
  ShmSegmentInfo info;
  ASSERT_EQ(r.read(got, &info), ShmReadResult::kOk);
  EXPECT_EQ(got, small);           // previous generation intact
  EXPECT_EQ(info.dropped, 1u);     // ...and the drop is visible
  EXPECT_EQ(info.heartbeat_ns, 20u);  // heartbeat still refreshed
  std::remove(path.c_str());
}

TEST(ShmSegment, StaleHeartbeatAndWriterLivenessReporting) {
  const std::string path = temp_path("shm_heartbeat.tel");
  ShmSegmentWriter w;
  ASSERT_TRUE(w.create(path, 4096));
  w.set_period_ns(250'000'000);
  const std::string doc = pattern_payload(7);
  ASSERT_TRUE(w.publish(doc.data(), doc.size(), 1'000'000));
  w.heartbeat(9'000'000);  // idle beat moves the heartbeat, not the gen

  ShmSegmentReader r;
  ASSERT_TRUE(r.attach(path));
  std::string got;
  ShmSegmentInfo info;
  ASSERT_EQ(r.read(got, &info), ShmReadResult::kOk);
  EXPECT_EQ(info.heartbeat_ns, 9'000'000u);
  EXPECT_EQ(info.period_ns, 250'000'000u);
  EXPECT_EQ(info.generation, 2u);

  // The recorded writer pid is this process: alive. A forged dead pid (or
  // the writer_pid=0 of a never-created header) reports gone.
  EXPECT_TRUE(shm_writer_alive(info));
  ShmSegmentInfo forged = info;
  forged.writer_pid = 0;
  EXPECT_FALSE(shm_writer_alive(forged));
  std::remove(path.c_str());
}

/// Mid-write detection vs the brute-force oracle, with the writer on a
/// separate thread (TSan observes the full protocol). No accepted read may
/// ever mix two generations.
TEST(ShmSegment, ConcurrentReadersNeverAcceptTornPayloads) {
  const std::string path = temp_path("shm_torn.tel");
  ShmSegmentWriter w;
  ASSERT_TRUE(w.create(path, 4096));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> published{0};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string doc = pattern_payload(i);
      ASSERT_TRUE(w.publish(doc.data(), doc.size(), i));
      published.store(++i, std::memory_order_relaxed);
    }
  });

  constexpr int kReaders = 2;
  std::atomic<long long> accepted{0};
  std::atomic<long long> torn{0};
  std::atomic<long long> inconsistent{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      ShmSegmentReader r;
      std::string error;
      ASSERT_TRUE(r.attach(path, &error)) << error;
      std::string got;
      // Bounded by accepted reads, not wall time: single-core schedulers
      // can starve readers for long stretches.
      while (accepted.load(std::memory_order_relaxed) < 2000 &&
             published.load(std::memory_order_relaxed) < 200000) {
        const ShmReadResult res = r.read(got);
        if (res == ShmReadResult::kOk) {
          if (!payload_consistent(got)) {
            inconsistent.fetch_add(1, std::memory_order_relaxed);
          }
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else if (res == ShmReadResult::kTorn) {
          // Legal under pathological scheduling (writer ran 64 publishes
          // inside one read attempt); must never surface bad bytes.
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(inconsistent.load(), 0);
  EXPECT_GT(accepted.load(), 0);
  std::remove(path.c_str());
}

/// 1/2/8 writer threads, each with its own segment, publishing the same
/// document: every segment must carry bit-identical bytes — the serialized
/// snapshot is a pure function of its input, and the seqlock never
/// perturbs payload content.
TEST(ShmSegment, MultiWriterSnapshotsAreBitIdentical) {
  const std::string doc = pattern_payload(99);
  for (const int writers : {1, 2, 8}) {
    std::vector<std::string> paths;
    std::vector<std::thread> threads;
    paths.reserve(static_cast<std::size_t>(writers));
    for (int i = 0; i < writers; ++i) {
      paths.push_back(temp_path("shm_multi_" + std::to_string(writers) +
                                "_" + std::to_string(i) + ".tel"));
    }
    threads.reserve(static_cast<std::size_t>(writers));
    for (int i = 0; i < writers; ++i) {
      threads.emplace_back([&, i] {
        ShmSegmentWriter w;
        ASSERT_TRUE(w.create(paths[static_cast<std::size_t>(i)], 4096));
        for (int rep = 0; rep < 50; ++rep) {
          ASSERT_TRUE(w.publish(doc.data(), doc.size(),
                                static_cast<std::uint64_t>(rep)));
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const std::string& p : paths) {
      ShmSegmentReader r;
      ASSERT_TRUE(r.attach(p));
      std::string got;
      ShmSegmentInfo info;
      ASSERT_EQ(r.read(got, &info), ShmReadResult::kOk);
      EXPECT_EQ(got, doc) << p;
      EXPECT_EQ(info.generation, 100u) << p;  // 50 publishes, 2 per
      std::remove(p.c_str());
    }
  }
}

TEST(ShmSegment, ReadResultNames) {
  EXPECT_STREQ(shm_read_result_name(ShmReadResult::kOk), "ok");
  EXPECT_STREQ(shm_read_result_name(ShmReadResult::kEmpty), "empty");
  EXPECT_STREQ(shm_read_result_name(ShmReadResult::kTorn), "torn");
  EXPECT_STREQ(shm_read_result_name(ShmReadResult::kNotAttached),
               "not-attached");
}

}  // namespace
}  // namespace splice::obs
