// Exact-enumeration tests, including closed-form cross-checks and the
// anchoring of the Monte Carlo estimators.
#include "sim/exact.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "sim/experiments.h"
#include "sim/failure.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(Exact, SingleEdgeClosedForm) {
  // Two nodes, one edge: disconnected fraction = p, reliability = 1 - p.
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  for (double p : {0.0, 0.1, 0.37, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(exact_disconnected_fraction(g, p), p, 1e-12) << p;
    EXPECT_NEAR(exact_reliability(g, p), 1.0 - p, 1e-12) << p;
  }
}

TEST(Exact, TwoParallelEdgesClosedForm) {
  // Both edges must fail: p^2.
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  for (double p : {0.1, 0.3, 0.5}) {
    EXPECT_NEAR(exact_reliability(g, p), 1.0 - p * p, 1e-12);
    EXPECT_NEAR(exact_disconnected_fraction(g, p), p * p, 1e-12);
  }
}

TEST(Exact, PathGraphClosedForm) {
  // 3-node path: stays connected iff both edges survive: (1-p)^2.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const double p = 0.2;
  EXPECT_NEAR(exact_reliability(g, p), (1 - p) * (1 - p), 1e-12);
  // Disconnected ordered pairs: E = (2/6)*[P(only e0 dead)+P(only e1 dead)]*2
  // ... compute directly: pairs = 6.
  // both alive: 0 disconnected. e0 dead only: node0 isolated -> 4 pairs.
  // e1 dead only: 4 pairs. both dead: 6 pairs.
  const double expect =
      (p * (1 - p) * 4 + (1 - p) * p * 4 + p * p * 6) / 6.0;
  EXPECT_NEAR(exact_disconnected_fraction(g, p), expect, 1e-12);
}

TEST(Exact, TriangleReliability) {
  // Triangle stays connected unless >= 2 edges fail; with exactly 2 failed
  // it is still connected? No: two failures leave a single edge + isolated
  // node -> disconnected. Connected iff 0 or 1 failures.
  const Graph g = ring(3);
  const double p = 0.25;
  const double expect =
      std::pow(1 - p, 3) + 3 * p * std::pow(1 - p, 2);
  EXPECT_NEAR(exact_reliability(g, p), expect, 1e-12);
}

TEST(Exact, Figure1CutArgument) {
  // The paper's Figure 1: s-t disconnection requires a full cut. With the
  // 6-edge two-path graph, s and t stay connected iff at least one path is
  // fully alive.
  const Graph g = topo::figure1();
  const double p = 0.3;
  const double path_alive = std::pow(1 - p, 3);
  const double st_connected =
      1.0 - (1.0 - path_alive) * (1.0 - path_alive);
  // Check the pairwise metric indirectly: P(graph connected) <= st_conn.
  EXPECT_LE(exact_reliability(g, p), st_connected + 1e-12);
  EXPECT_GT(exact_disconnected_fraction(g, p), 0.0);
}

TEST(Exact, RejectsOversizedGraphs) {
  const Graph g = topo::sprint();  // 84 edges
  EXPECT_DEATH((void)exact_disconnected_fraction(g, 0.1), "Precondition");
}

TEST(Exact, MonteCarloConvergesToExact) {
  // Anchor the Figure 3 estimator: on a small graph the sampled curve must
  // converge to the exhaustive-enumeration value.
  Graph g = ring(6);
  g.add_edge(0, 3, 1.0);  // a chord for some diversity
  const double p = 0.15;
  const double exact = exact_disconnected_fraction(g, p);

  ReliabilityConfig cfg;
  cfg.k_values = {1};
  cfg.p_values = {p};
  cfg.trials = 6000;
  cfg.perturbation = {PerturbationKind::kNone, 0.0, 0.0};
  const auto curves = run_reliability_experiment(g, cfg);
  // best_possible is exactly the underlying-graph metric.
  EXPECT_NEAR(curves.best_possible.front().mean_disconnected, exact, 0.01);
}

TEST(Exact, SplicedExactMatchesMonteCarlo) {
  Graph g = topo::figure1();
  const SliceId k = 3;
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{
             k, {PerturbationKind::kUniform, 0.0, 3.0}, 5, false});
  const double p = 0.2;
  const double exact =
      exact_spliced_disconnected_fraction(g, mir, k, p);

  // Monte Carlo with the same control plane.
  const SplicedReliabilityAnalyzer analyzer(g, mir);
  Rng rng(9);
  double mc = 0.0;
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    const auto alive = sample_alive_mask(g.edge_count(), p, rng);
    mc += analyzer.disconnected_fraction(k, alive);
  }
  mc /= trials;
  EXPECT_NEAR(mc, exact, 0.01);
}

TEST(Exact, SplicedBoundedByGraphExact) {
  const Graph g = topo::figure1();
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{
             4, {PerturbationKind::kUniform, 0.0, 3.0}, 7, false});
  for (double p : {0.1, 0.3}) {
    const double graph_exact = exact_disconnected_fraction(g, p);
    const double spliced_undir =
        exact_spliced_disconnected_fraction(g, mir, 4, p);
    const double spliced_dir = exact_spliced_disconnected_fraction(
        g, mir, 4, p, UnionSemantics::kDirectedForwarding);
    EXPECT_GE(spliced_undir, graph_exact - 1e-12);
    EXPECT_GE(spliced_dir, spliced_undir - 1e-12);
  }
}

TEST(Exact, ReliabilityMonotoneInP) {
  const Graph g = grid(2, 3);
  double prev = 1.0;
  for (double p : {0.0, 0.1, 0.2, 0.4, 0.7, 1.0}) {
    const double r = exact_reliability(g, p);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(exact_reliability(g, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_reliability(g, 1.0), 0.0);
}

}  // namespace
}  // namespace splice
