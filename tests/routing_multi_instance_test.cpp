// Multi-instance control plane and FIB materialization tests.
#include "routing/multi_instance.h"

#include <gtest/gtest.h>

#include "topo/datasets.h"

namespace splice {
namespace {

ControlPlaneConfig sprint_cfg(SliceId k, std::uint64_t seed = 1) {
  ControlPlaneConfig cfg;
  cfg.slices = k;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  cfg.seed = seed;
  return cfg;
}

TEST(MultiInstance, BuildsRequestedSliceCount) {
  const Graph g = topo::geant();
  const MultiInstanceRouting mir(g, sprint_cfg(4));
  EXPECT_EQ(mir.slice_count(), 4);
}

TEST(MultiInstance, SliceZeroIsUnperturbedByDefault) {
  const Graph g = topo::geant();
  const MultiInstanceRouting mir(g, sprint_cfg(3));
  const auto w = mir.slice(0).weights();
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(w[static_cast<std::size_t>(e)], g.edge(e).weight);
  }
}

TEST(MultiInstance, PerturbFirstSliceFlag) {
  const Graph g = topo::geant();
  ControlPlaneConfig cfg = sprint_cfg(2);
  cfg.perturb_first_slice = true;
  const MultiInstanceRouting mir(g, cfg);
  bool any_changed = false;
  const auto w = mir.slice(0).weights();
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    any_changed |= w[static_cast<std::size_t>(e)] != g.edge(e).weight;
  }
  EXPECT_TRUE(any_changed);
}

TEST(MultiInstance, SlicesHaveDistinctWeights) {
  const Graph g = topo::sprint();
  const MultiInstanceRouting mir(g, sprint_cfg(5));
  for (SliceId a = 1; a < 5; ++a) {
    for (SliceId b = a + 1; b < 5; ++b) {
      const auto wa = mir.slice(a).weights();
      const auto wb = mir.slice(b).weights();
      bool differ = false;
      for (std::size_t e = 0; e < wa.size(); ++e) differ |= wa[e] != wb[e];
      EXPECT_TRUE(differ) << "slices " << a << " and " << b;
    }
  }
}

TEST(MultiInstance, DeterministicAcrossRebuilds) {
  const Graph g = topo::geant();
  const MultiInstanceRouting a(g, sprint_cfg(3, 77));
  const MultiInstanceRouting b(g, sprint_cfg(3, 77));
  for (SliceId s = 0; s < 3; ++s) {
    const auto wa = a.slice(s).weights();
    const auto wb = b.slice(s).weights();
    for (std::size_t e = 0; e < wa.size(); ++e) EXPECT_EQ(wa[e], wb[e]);
  }
}

TEST(MultiInstance, SeedChangesPerturbedSlices) {
  const Graph g = topo::geant();
  const MultiInstanceRouting a(g, sprint_cfg(2, 1));
  const MultiInstanceRouting b(g, sprint_cfg(2, 2));
  const auto wa = a.slice(1).weights();
  const auto wb = b.slice(1).weights();
  bool differ = false;
  for (std::size_t e = 0; e < wa.size(); ++e) differ |= wa[e] != wb[e];
  EXPECT_TRUE(differ);
}

TEST(MultiInstance, PrefixStability) {
  // Slice i must be identical whether the control plane was built with k=3
  // or k=5 — "first k slices" experiments depend on this.
  const Graph g = topo::geant();
  const MultiInstanceRouting small(g, sprint_cfg(3, 42));
  const MultiInstanceRouting large(g, sprint_cfg(5, 42));
  for (SliceId s = 0; s < 3; ++s) {
    const auto ws = small.slice(s).weights();
    const auto wl = large.slice(s).weights();
    for (std::size_t e = 0; e < ws.size(); ++e) EXPECT_EQ(ws[e], wl[e]);
  }
}

TEST(Fib, LookupMatchesInstances) {
  const Graph g = topo::geant();
  const MultiInstanceRouting mir(g, sprint_cfg(3));
  const FibSet fibs = mir.build_fibs();
  EXPECT_EQ(fibs.slice_count(), 3);
  EXPECT_EQ(fibs.node_count(), g.node_count());
  for (SliceId s = 0; s < 3; ++s) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (NodeId d = 0; d < g.node_count(); ++d) {
        const FibEntry& e = fibs.lookup(s, v, d);
        if (v == d) {
          EXPECT_FALSE(e.valid());
        } else {
          EXPECT_EQ(e.next_hop, mir.slice(s).next_hop(v, d));
          EXPECT_EQ(e.edge, mir.slice(s).next_hop_edge(v, d));
        }
      }
    }
  }
}

TEST(Fib, InstalledEntriesGrowLinearlyInK) {
  // The paper's scalability claim: routing state is linear in k.
  const Graph g = topo::geant();
  const auto n = static_cast<std::size_t>(g.node_count());
  std::size_t prev = 0;
  for (SliceId k : {1, 2, 3, 4}) {
    const MultiInstanceRouting mir(g, sprint_cfg(k));
    const std::size_t entries = mir.build_fibs().installed_entries();
    EXPECT_EQ(entries, static_cast<std::size_t>(k) * n * (n - 1));
    EXPECT_GT(entries, prev);
    prev = entries;
  }
}

TEST(Fib, SetAndLookup) {
  FibSet fibs(2, 3);
  fibs.set(1, 0, 2, FibEntry{1, 0});
  const FibEntry& e = fibs.lookup(1, 0, 2);
  EXPECT_EQ(e.next_hop, 1);
  EXPECT_EQ(e.edge, 0);
  EXPECT_TRUE(e.valid());
  EXPECT_FALSE(fibs.lookup(0, 0, 2).valid());
}

}  // namespace
}  // namespace splice
