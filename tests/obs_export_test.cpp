// Prometheus exposition-format conformance for the metrics exporter. The
// histogram contract: `le` edges strictly increasing and all strictly
// below the histogram's `hi` bound (samples past `hi` clamp into the last
// bin, so a le="hi" bucket would falsely claim them); cumulative counts
// monotone non-decreasing; the +Inf bucket equals _count exactly; every
// sample line belongs to a # TYPE'd family.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/histogram.h"

namespace splice::obs {
namespace {

MetricsSnapshot snapshot_with_histogram(const Histogram& h) {
  MetricsSnapshot snap;
  snap.counters.push_back({"dataplane.batch.packets", 12345});
  snap.gauges.push_back({"bench.wall_ms", 17.5});
  snap.histograms.push_back({"dataplane.batch.hops_hist", h});
  return snap;
}

struct Bucket {
  double le = 0.0;
  bool inf = false;
  long long count = 0;
};

/// Pulls one histogram family's bucket lines, _sum and _count out of the
/// exposition text.
struct HistFamily {
  std::vector<Bucket> buckets;
  long long count = -1;
  bool saw_sum = false;
};

HistFamily parse_family(const std::string& text, const std::string& name) {
  HistFamily fam;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + "_bucket{le=\"", 0) == 0) {
      const std::size_t open = line.find('"');
      const std::size_t close = line.find('"', open + 1);
      const std::string le = line.substr(open + 1, close - open - 1);
      Bucket b;
      if (le == "+Inf") {
        b.inf = true;
      } else {
        b.le = std::strtod(le.c_str(), nullptr);
      }
      b.count = std::strtoll(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
      fam.buckets.push_back(b);
    } else if (line.rfind(name + "_count ", 0) == 0) {
      fam.count =
          std::strtoll(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
    } else if (line.rfind(name + "_sum ", 0) == 0) {
      fam.saw_sum = true;
    }
  }
  return fam;
}

TEST(ObsExportTest, HistogramBucketsAreCumulativeAndTruthful) {
  // 4 bins over [0, 100): bin edges 25/50/75/100. The 250 and 1e6 samples
  // clamp into the last bin; the -5 clamps into bin 0 (still truthfully
  // <= 25).
  Histogram h(0.0, 100.0, 4);
  for (const double x : {-5.0, 10.0, 30.0, 60.0, 80.0, 250.0, 1e6}) h.add(x);

  const std::string text =
      to_prometheus(snapshot_with_histogram(h), SpanSnapshot{});
  const HistFamily fam =
      parse_family(text, "splice_dataplane_batch_hops_hist");

  // Finite edges strictly increasing, all strictly below hi, then +Inf
  // last.
  ASSERT_GE(fam.buckets.size(), 2u);
  ASSERT_TRUE(fam.buckets.back().inf);
  double prev_le = -1e300;
  long long prev_count = 0;
  for (std::size_t i = 0; i + 1 < fam.buckets.size(); ++i) {
    const Bucket& b = fam.buckets[i];
    ASSERT_FALSE(b.inf) << "+Inf bucket not last";
    EXPECT_GT(b.le, prev_le) << "le edges not strictly increasing";
    EXPECT_LT(b.le, h.hi())
        << "a finite le >= hi would falsely claim clamped overflow samples";
    EXPECT_GE(b.count, prev_count) << "cumulative counts decreased";
    prev_le = b.le;
    prev_count = b.count;
  }
  // +Inf == _count == total observations, clamped ones included.
  EXPECT_EQ(fam.buckets.back().count, 7);
  EXPECT_EQ(fam.count, 7);
  EXPECT_TRUE(fam.saw_sum);
  // The overflow samples must NOT be claimed by the last finite bucket:
  // only -5, 10, 30 and 60 are truly at or below 75 (80, 250 and 1e6 all
  // live in the clamped top bin, covered by +Inf alone).
  EXPECT_EQ(fam.buckets[fam.buckets.size() - 2].count, 4)
      << "le=\"75\" must hold only the 4 samples truly at or below 75";
}

TEST(ObsExportTest, SingleBinHistogramDegeneratesToInfOnly) {
  // bins == 1: no finite bucket can be emitted truthfully (everything
  // clamps into the one bin); the family is just +Inf + _sum + _count.
  Histogram h(0.0, 10.0, 1);
  h.add(5.0);
  h.add(500.0);
  const std::string text =
      to_prometheus(snapshot_with_histogram(h), SpanSnapshot{});
  const HistFamily fam =
      parse_family(text, "splice_dataplane_batch_hops_hist");
  ASSERT_EQ(fam.buckets.size(), 1u);
  EXPECT_TRUE(fam.buckets[0].inf);
  EXPECT_EQ(fam.buckets[0].count, 2);
  EXPECT_EQ(fam.count, 2);
}

TEST(ObsExportTest, EverySampleLineBelongsToATypedFamily) {
  Histogram h(0.0, 100.0, 4);
  h.add(50.0);
  const std::string text =
      to_prometheus(snapshot_with_histogram(h), SpanSnapshot{});

  // Collect declared families, then verify each sample line's metric name
  // (family name or family + {_bucket,_sum,_count,_total}) was declared.
  std::vector<std::string> families;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      families.push_back(line.substr(7, sp - 7));
    }
  }
  in.clear();
  in.str(text);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << "malformed line: " << line;
    const std::string metric = line.substr(0, name_end);
    bool declared = false;
    for (const std::string& fam : families) {
      if (metric == fam || metric == fam + "_bucket" ||
          metric == fam + "_sum" || metric == fam + "_count") {
        declared = true;
        break;
      }
    }
    EXPECT_TRUE(declared) << "undeclared sample line: " << line;
  }
}

}  // namespace
}  // namespace splice::obs
