// Flooding-simulation tests: convergence, message counting, the linear-in-k
// message-complexity claim, multi-topology encoding, failure refloods.
#include "routing/flooding.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(Flooding, ColdStartConvergesOnLine) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const FloodStats s =
      simulate_full_flood(g, 1, FloodEncoding::kSeparateInstances);
  EXPECT_TRUE(s.converged);
  // Known count for a 3-node line with reliable flooding:
  // each LSA crosses each link at least once; duplicates bounce back once
  // from the middle node. Just sanity-bound it.
  EXPECT_GE(s.messages, 6);
  EXPECT_LE(s.messages, 14);
  EXPECT_GT(s.convergence_ms, 0.0);
}

TEST(Flooding, ColdStartConvergesOnRealTopologies) {
  for (const auto& name : topo::registry_names()) {
    const FloodStats s = simulate_full_flood(topo::by_name(name), 1,
                                             FloodEncoding::kSeparateInstances);
    EXPECT_TRUE(s.converged) << name;
    EXPECT_GT(s.messages, 0) << name;
  }
}

TEST(Flooding, MessagesScaleLinearlyInK) {
  const Graph g = topo::geant();
  const FloodStats k1 =
      simulate_full_flood(g, 1, FloodEncoding::kSeparateInstances);
  const FloodStats k3 =
      simulate_full_flood(g, 3, FloodEncoding::kSeparateInstances);
  const FloodStats k5 =
      simulate_full_flood(g, 5, FloodEncoding::kSeparateInstances);
  EXPECT_TRUE(k5.converged);
  // Exactly linear: instances are independent copies of the same flood.
  EXPECT_EQ(k3.messages, 3 * k1.messages);
  EXPECT_EQ(k5.messages, 5 * k1.messages);
}

TEST(Flooding, MultiTopologyEncodingIsConstantInK) {
  const Graph g = topo::sprint();
  const FloodStats k1 = simulate_full_flood(g, 1, FloodEncoding::kMultiTopology);
  const FloodStats k10 =
      simulate_full_flood(g, 10, FloodEncoding::kMultiTopology);
  EXPECT_TRUE(k10.converged);
  EXPECT_EQ(k1.messages, k10.messages);
}

TEST(Flooding, FailureRefloodIsLocalizedAndSmall) {
  const Graph g = topo::sprint();
  const FloodStats cold =
      simulate_full_flood(g, 1, FloodEncoding::kSeparateInstances);
  const FloodStats refl =
      simulate_failure_reflood(g, 1, FloodEncoding::kSeparateInstances, 0);
  EXPECT_TRUE(refl.converged);
  // Only two origins re-flood: far fewer messages than a cold start.
  EXPECT_LT(refl.messages, cold.messages / 5);
  EXPECT_GT(refl.messages, 0);
}

TEST(Flooding, FailureRefloodScalesWithInstances) {
  const Graph g = topo::geant();
  const FloodStats one =
      simulate_failure_reflood(g, 1, FloodEncoding::kSeparateInstances, 3);
  const FloodStats four =
      simulate_failure_reflood(g, 4, FloodEncoding::kSeparateInstances, 3);
  EXPECT_EQ(four.messages, 4 * one.messages);
  const FloodStats mt =
      simulate_failure_reflood(g, 4, FloodEncoding::kMultiTopology, 3);
  EXPECT_EQ(mt.messages, one.messages);
}

TEST(Flooding, ConvergenceTimeReflectsDiameter) {
  // On a weighted line, the farthest node hears the end node's LSA after
  // the sum of link delays.
  Graph g(4);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 7.0);
  g.add_edge(2, 3, 11.0);
  const FloodStats s =
      simulate_full_flood(g, 1, FloodEncoding::kSeparateInstances);
  EXPECT_GE(s.convergence_ms, 23.0 - 1e-9);
}

TEST(Flooding, DisconnectedRefloodStillReportsConverged) {
  // Failing a ring edge keeps the ring connected; failing a tree edge cuts
  // it — the reflood from both endpoints must still deliver to every node
  // reachable from each endpoint and report converged.
  const Graph tree = random_tree(8, 3);
  const FloodStats s = simulate_failure_reflood(
      tree, 1, FloodEncoding::kSeparateInstances, 0);
  EXPECT_TRUE(s.converged);
}

}  // namespace
}  // namespace splice
