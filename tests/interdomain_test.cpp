// Interdomain (spliced BGP) tests: Gao-Rexford policy mechanics, k-route
// FIBs, valley-free best paths, data-plane forwarding with bits, and the
// k-vs-reliability analogue of Figure 3 at the AS level.
#include <gtest/gtest.h>

#include <algorithm>

#include "interdomain/as_graph.h"
#include "interdomain/bgp.h"
#include "sim/failure.h"
#include "util/rng.h"

namespace splice {
namespace {

TEST(AsGraph, RelationshipBookkeeping) {
  AsGraph g;
  const AsId c = g.add_as();
  const AsId p = g.add_as();
  const AsId q = g.add_as();
  g.add_customer_provider(c, p);
  g.add_peering(p, q);
  ASSERT_EQ(g.as_count(), 3);
  ASSERT_EQ(g.link_count(), 2);
  // c sees p as provider; p sees c as customer.
  EXPECT_EQ(g.neighbors(c)[0].kind, NeighborKind::kProvider);
  EXPECT_EQ(g.neighbors(p)[0].kind, NeighborKind::kCustomer);
  EXPECT_EQ(g.neighbors(p)[1].kind, NeighborKind::kPeer);
  EXPECT_EQ(g.neighbors(q)[0].kind, NeighborKind::kPeer);
}

TEST(AsGraph, HierarchyGeneratorShape) {
  AsHierarchyConfig cfg;
  cfg.tier1 = 3;
  cfg.tier2 = 6;
  cfg.stubs = 10;
  const AsGraph g = make_as_hierarchy(cfg);
  EXPECT_EQ(g.as_count(), 19);
  // Tier-1 mesh contributes 3 peer links; each tier-2 has 2 uplinks; each
  // stub 2 uplinks; plus random tier-2 peering.
  EXPECT_GE(g.link_count(), 3 + 6 * 2 + 10 * 2);
  // Stubs (last 10 ids) have only provider links.
  for (AsId v = 9; v < 19; ++v) {
    for (const AsIncidence& inc : g.neighbors(v)) {
      EXPECT_EQ(inc.kind, NeighborKind::kProvider);
    }
  }
}

TEST(AsGraph, HierarchyDeterministic) {
  AsHierarchyConfig cfg;
  const AsGraph a = make_as_hierarchy(cfg);
  const AsGraph b = make_as_hierarchy(cfg);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (AsLinkId l = 0; l < a.link_count(); ++l) {
    EXPECT_EQ(a.link(l).a, b.link(l).a);
    EXPECT_EQ(a.link(l).b, b.link(l).b);
  }
}

TEST(Policy, PreferenceOrder) {
  BgpRoute customer;
  customer.learned_from = NeighborKind::kCustomer;
  customer.as_path = {1, 2, 3};
  BgpRoute peer;
  peer.learned_from = NeighborKind::kPeer;
  peer.as_path = {1};
  BgpRoute provider;
  provider.learned_from = NeighborKind::kProvider;
  provider.as_path = {1};
  // Customer beats peer and provider despite longer path.
  EXPECT_TRUE(prefer_route(customer, peer));
  EXPECT_TRUE(prefer_route(customer, provider));
  EXPECT_TRUE(prefer_route(peer, provider));
  // Same class: shorter path wins.
  BgpRoute peer_long = peer;
  peer_long.as_path = {1, 2};
  EXPECT_TRUE(prefer_route(peer, peer_long));
  // Full tiebreak: lower next hop.
  BgpRoute a = peer;
  a.next_hop = 1;
  BgpRoute b = peer;
  b.next_hop = 2;
  EXPECT_TRUE(prefer_route(a, b));
  EXPECT_FALSE(prefer_route(b, a));
}

TEST(Policy, ExportRules) {
  using NK = NeighborKind;
  // Customer-learned: export to everyone.
  EXPECT_TRUE(may_export(NK::kCustomer, NK::kCustomer));
  EXPECT_TRUE(may_export(NK::kCustomer, NK::kPeer));
  EXPECT_TRUE(may_export(NK::kCustomer, NK::kProvider));
  // Peer-/provider-learned: only to customers (no free transit).
  EXPECT_TRUE(may_export(NK::kPeer, NK::kCustomer));
  EXPECT_FALSE(may_export(NK::kPeer, NK::kPeer));
  EXPECT_FALSE(may_export(NK::kPeer, NK::kProvider));
  EXPECT_TRUE(may_export(NK::kProvider, NK::kCustomer));
  EXPECT_FALSE(may_export(NK::kProvider, NK::kPeer));
  EXPECT_FALSE(may_export(NK::kProvider, NK::kProvider));
}

/// Classic 4-AS fixture:
///   T1a -peer- T1b  (tier 1 mesh)
///   M (mid) customer of both T1a, T1b
///   S (stub) customer of M
struct SmallInternet {
  SmallInternet() {
    t1a = g.add_as();
    t1b = g.add_as();
    mid = g.add_as();
    stub = g.add_as();
    g.add_peering(t1a, t1b);
    l_mid_a = g.add_customer_provider(mid, t1a);
    l_mid_b = g.add_customer_provider(mid, t1b);
    l_stub = g.add_customer_provider(stub, mid);
  }
  AsGraph g;
  AsId t1a, t1b, mid, stub;
  AsLinkId l_mid_a, l_mid_b, l_stub;
};

TEST(Bgp, ConvergesToValleyFreePaths) {
  SmallInternet net;
  const BgpSplicer bgp(net.g, BgpConfig{2, 0});
  // Stub reaches t1a via its provider chain.
  const BgpRoute* r = bgp.best_route(net.stub, net.t1a);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->next_hop, net.mid);
  ASSERT_EQ(r->as_path.size(), 2u);
  EXPECT_EQ(r->as_path[0], net.mid);
  EXPECT_EQ(r->as_path[1], net.t1a);
  // t1a reaches stub via its customer mid (customer route).
  const BgpRoute* down = bgp.best_route(net.t1a, net.stub);
  ASSERT_NE(down, nullptr);
  EXPECT_EQ(down->next_hop, net.mid);
  EXPECT_EQ(down->learned_from, NeighborKind::kCustomer);
}

TEST(Bgp, NoTransitThroughPeersForPeers) {
  // t1a must NOT reach t1b's customers through a peer of a peer: with
  // Gao-Rexford, a route learned from a peer is not exported to peers. In
  // the small fixture everything is still reachable via valid paths, so
  // test the export more directly: t1a's route to t1b must be the direct
  // peering, never via mid (a customer route from mid would be exported,
  // but mid's route to t1b is provider-learned so mid may not export it to
  // its provider t1a).
  SmallInternet net;
  const BgpSplicer bgp(net.g, BgpConfig{3, 0});
  const auto routes = bgp.routes(net.t1a, net.t1b);
  ASSERT_FALSE(routes.empty());
  for (const BgpRoute& r : routes) {
    EXPECT_EQ(r.next_hop, net.t1b) << "valley route leaked";
  }
}

TEST(Bgp, MultihomedAsInstallsMultipleRoutes) {
  SmallInternet net;
  const BgpSplicer bgp(net.g, BgpConfig{3, 0});
  // mid is multihomed: two routes to each tier-1 (direct + via the other).
  const auto routes = bgp.routes(net.mid, net.t1a);
  EXPECT_GE(routes.size(), 2u);
  EXPECT_EQ(routes.front().next_hop, net.t1a);  // direct provider route
}

TEST(Bgp, KLimitsInstalledRoutes) {
  SmallInternet net;
  const BgpSplicer one(net.g, BgpConfig{1, 0});
  for (AsId v = 0; v < net.g.as_count(); ++v) {
    for (AsId d = 0; d < net.g.as_count(); ++d) {
      if (v != d) {
        EXPECT_LE(one.routes(v, d).size(), 1u);
      }
    }
  }
}

TEST(Bgp, ForwardFollowsBestByDefault) {
  SmallInternet net;
  const BgpSplicer bgp(net.g, BgpConfig{2, 0});
  const auto path = bgp.forward(net.stub, net.t1a, SpliceHeader{});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<AsId>{net.stub, net.mid, net.t1a}));
}

TEST(Bgp, ForwardBitsSelectAlternateRoute) {
  SmallInternet net;
  const BgpSplicer bgp(net.g, BgpConfig{2, 0});
  // mid -> t1a: slot 0 = direct; slot 1 = via t1b (peer of t1a? t1b's
  // route to t1a is peer-learned and may only be exported to customers —
  // mid IS t1b's customer, so it's valid).
  const auto routes = bgp.routes(net.mid, net.t1a);
  ASSERT_EQ(routes.size(), 2u);
  SpliceHeader header =
      SpliceHeader::from_slices(2, std::vector<SliceId>{1, 0, 0});
  const auto path = bgp.forward(net.mid, net.t1a, header);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->at(1), routes[1].next_hop);
}

TEST(Bgp, FailedLinkDeadEndsWithoutDeflection) {
  SmallInternet net;
  const BgpSplicer bgp(net.g, BgpConfig{2, 0});
  std::vector<char> alive(static_cast<std::size_t>(net.g.link_count()), 1);
  alive[static_cast<std::size_t>(net.l_mid_a)] = 0;
  const auto path =
      bgp.forward(net.mid, net.t1a, SpliceHeader{}, alive, false);
  EXPECT_FALSE(path.has_value());
}

TEST(Bgp, DeflectionUsesAlternateRoute) {
  SmallInternet net;
  const BgpSplicer bgp(net.g, BgpConfig{2, 0});
  std::vector<char> alive(static_cast<std::size_t>(net.g.link_count()), 1);
  alive[static_cast<std::size_t>(net.l_mid_a)] = 0;
  const auto path =
      bgp.forward(net.mid, net.t1a, SpliceHeader{}, alive, true);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<AsId>{net.mid, net.t1b, net.t1a}));
}

TEST(Bgp, SplicedConnectedMatchesForwardability) {
  SmallInternet net;
  const BgpSplicer bgp(net.g, BgpConfig{2, 0});
  std::vector<char> alive(static_cast<std::size_t>(net.g.link_count()), 1);
  alive[static_cast<std::size_t>(net.l_mid_a)] = 0;
  EXPECT_TRUE(bgp.spliced_connected(net.mid, net.t1a, alive));
  // Cut the stub's only uplink: nothing can reach it.
  alive[static_cast<std::size_t>(net.l_stub)] = 0;
  EXPECT_FALSE(bgp.spliced_connected(net.stub, net.t1a, alive));
  EXPECT_FALSE(bgp.spliced_connected(net.t1b, net.stub, alive));
}

TEST(Bgp, IntactHierarchyFullyConnected) {
  const AsGraph g = make_as_hierarchy(AsHierarchyConfig{});
  const BgpSplicer bgp(g, BgpConfig{3, 0});
  EXPECT_DOUBLE_EQ(bgp.disconnected_fraction(), 0.0);
}

// The interdomain analogue of Figure 3: more installed routes -> fewer
// disconnected AS pairs under link failures, bounded below by k = all.
class AsReliability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsReliability, MoreRoutesMoreReliability) {
  AsHierarchyConfig hcfg;
  hcfg.seed = GetParam();
  const AsGraph g = make_as_hierarchy(hcfg);
  const BgpSplicer bgp(g, BgpConfig{3, 0});
  Rng rng(GetParam() ^ 0xa5a5);
  double frac1 = 0.0;
  double frac2 = 0.0;
  double frac3 = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto alive = sample_alive_mask(
        static_cast<EdgeId>(g.link_count()), 0.05, rng);
    frac1 += bgp.disconnected_fraction(alive, 1);
    frac2 += bgp.disconnected_fraction(alive, 2);
    frac3 += bgp.disconnected_fraction(alive, 3);
  }
  EXPECT_LE(frac3, frac2 + 1e-9);
  EXPECT_LE(frac2, frac1 + 1e-9);
  EXPECT_LT(frac3, frac1);  // strictly better overall at this p
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsReliability, ::testing::Values(1, 2, 3, 4));

TEST(ValleyFree, ClassifiesCanonicalShapes) {
  SmallInternet net;
  // up, up is fine: stub -> mid -> t1a.
  EXPECT_TRUE(is_valley_free(
      net.g, std::vector<AsId>{net.stub, net.mid, net.t1a}));
  // up, peer, down: stub -> mid -> ... mid has no peers; use t1a-t1b peer.
  EXPECT_TRUE(is_valley_free(
      net.g, std::vector<AsId>{net.stub, net.mid, net.t1a, net.t1b}));
  // down then up is a valley: t1a -> mid -> t1b.
  EXPECT_FALSE(is_valley_free(
      net.g, std::vector<AsId>{net.t1a, net.mid, net.t1b}));
  // peer then peer: t1a -> t1b -> t1a... same peer twice via distinct hops
  // requires a second peer link; emulate with t1b -> t1a -> t1b (peer x2).
  EXPECT_FALSE(is_valley_free(
      net.g, std::vector<AsId>{net.t1b, net.t1a, net.t1b}));
  // Non-adjacent jump is invalid.
  EXPECT_FALSE(
      is_valley_free(net.g, std::vector<AsId>{net.stub, net.t1a}));
  // Trivial paths are valley-free.
  EXPECT_TRUE(is_valley_free(net.g, std::vector<AsId>{net.stub}));
  EXPECT_TRUE(is_valley_free(net.g, std::vector<AsId>{}));
}

TEST(ValleyFree, AllBgpBestPathsAreValleyFree) {
  // Protocol-correctness invariant: Gao-Rexford decision + export rules
  // must yield valley-free best paths for EVERY pair on a hierarchy.
  const AsGraph g = make_as_hierarchy(AsHierarchyConfig{});
  const BgpSplicer bgp(g, BgpConfig{3, 0});
  for (AsId src = 0; src < g.as_count(); ++src) {
    for (AsId dst = 0; dst < g.as_count(); ++dst) {
      if (src == dst) continue;
      const BgpRoute* r = bgp.best_route(src, dst);
      ASSERT_NE(r, nullptr) << src << "->" << dst;
      std::vector<AsId> full{src};
      full.insert(full.end(), r->as_path.begin(), r->as_path.end());
      EXPECT_TRUE(is_valley_free(g, full)) << src << "->" << dst;
    }
  }
}

TEST(ValleyFree, EveryInstalledRouteIsValleyFree) {
  // Not just the best route: every k-FIB entry is an advertised (hence
  // policy-valid) route and must individually be valley-free.
  const AsGraph g = make_as_hierarchy(AsHierarchyConfig{});
  const BgpSplicer bgp(g, BgpConfig{3, 0});
  for (AsId src = 0; src < g.as_count(); src += 2) {
    for (AsId dst = 0; dst < g.as_count(); dst += 3) {
      if (src == dst) continue;
      for (const BgpRoute& r : bgp.routes(src, dst)) {
        std::vector<AsId> full{src};
        full.insert(full.end(), r.as_path.begin(), r.as_path.end());
        EXPECT_TRUE(is_valley_free(g, full));
      }
    }
  }
}

TEST(Bgp, ForwardTtlGuardsLoops) {
  // Spliced interdomain paths could in principle loop across route slots;
  // TTL must bound the walk.
  const AsGraph g = make_as_hierarchy(AsHierarchyConfig{});
  const BgpSplicer bgp(g, BgpConfig{3, 0});
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<AsId>(
        rng.below(static_cast<std::uint64_t>(g.as_count())));
    const auto dst = static_cast<AsId>(
        rng.below(static_cast<std::uint64_t>(g.as_count())));
    if (src == dst) continue;
    const auto header = SpliceHeader::random(3, 20, rng);
    const auto path = bgp.forward(src, dst, header, {}, false, 64);
    if (path.has_value()) {
      EXPECT_LE(path->size(), 65u);
      EXPECT_EQ(path->back(), dst);
    }
  }
}

}  // namespace
}  // namespace splice
