// Equivalence suite for the data-plane fast path: the allocation-free
// forwarding core (forward_fast / forward_stats), the CSR reliability
// analyzer, the workspace loop metrics and the parallel TrialEngine-backed
// experiments must be bit-identical to the straightforward implementations
// they replaced. The legacy algorithms are kept here verbatim as oracles.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "dataplane/forward_kernel.h"
#include "dataplane/network.h"
#include "dataplane/shard_pipeline.h"
#include "graph/generators.h"
#include "sim/batch_feed.h"
#include "routing/multi_instance.h"
#include "sim/experiments.h"
#include "splicing/recovery.h"
#include "splicing/reliability.h"
#include "topo/datasets.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace splice {
namespace {

// ---------------------------------------------------------------------------
// Legacy oracles (pre-fast-path implementations, copied verbatim).
// ---------------------------------------------------------------------------

SliceId legacy_default_slice(const FibSet& fibs, NodeId src, NodeId dst) {
  const auto k = static_cast<std::uint64_t>(fibs.slice_count());
  return static_cast<SliceId>(hash_mix(static_cast<std::uint64_t>(src),
                                       static_cast<std::uint64_t>(dst)) %
                              k);
}

/// The pre-fast-path DataPlaneNetwork::forward: FibSet::lookup per hop,
/// Delivery vector grown per hop, header consumed via SpliceHeader::pop.
Delivery legacy_forward(const FibSet& fibs, std::span<const char> link_alive,
                        const Packet& packet, const ForwardingPolicy& policy) {
  const auto alive = [&](EdgeId e) {
    return link_alive[static_cast<std::size_t>(e)] != 0;
  };
  Delivery out;
  if (packet.src == packet.dst) {
    out.outcome = ForwardOutcome::kDelivered;
    return out;
  }

  const SliceId k = fibs.slice_count();
  SpliceHeader header = packet.header;  // consumed copy
  CounterHeader counter = packet.counter;
  SliceId current = legacy_default_slice(fibs, packet.src, packet.dst);
  NodeId node = packet.src;
  int ttl = packet.ttl;

  while (ttl-- > 0) {
    SliceId slice = current;
    if (const auto popped = header.pop(); popped.has_value()) {
      slice = static_cast<SliceId>(*popped % k);
    } else if (policy.exhaust == ExhaustPolicy::kHashDefault) {
      slice = legacy_default_slice(fibs, packet.src, packet.dst);
    }
    if (counter.active()) slice = counter.deflect(slice, k);

    FibEntry entry = fibs.lookup(slice, node, packet.dst);
    bool deflected = false;
    const bool usable = entry.valid() && alive(entry.edge);
    if (!usable) {
      if (policy.local_recovery == LocalRecovery::kDeflect) {
        for (SliceId s = 0; s < k && !deflected; ++s) {
          if (s == slice) continue;
          const FibEntry alt = fibs.lookup(s, node, packet.dst);
          if (alt.valid() && alive(alt.edge)) {
            entry = alt;
            slice = s;
            deflected = true;
          }
        }
      }
      if (!deflected) {
        out.outcome = ForwardOutcome::kDeadEnd;
        return out;
      }
    }

    out.hops.push_back(
        HopRecord{node, entry.next_hop, entry.edge, slice, deflected});
    node = entry.next_hop;
    current = slice;
    if (node == packet.dst) {
      out.outcome = ForwardOutcome::kDelivered;
      return out;
    }
  }
  out.outcome = ForwardOutcome::kTtlExpired;
  return out;
}

/// The pre-CSR SplicedReliabilityAnalyzer: per-destination nested adjacency
/// vectors with the O(deg^2) incoming-scan dedup, plus its BFS.
struct LegacyAnalyzer {
  struct Adj {
    NodeId other;
    EdgeId edge;
    SliceId slice;
    bool incoming;
  };

  NodeId n;
  SliceId k_max;
  std::vector<std::vector<std::vector<Adj>>> adj;

  LegacyAnalyzer(const Graph& g, const MultiInstanceRouting& mir)
      : n(g.node_count()), k_max(mir.slice_count()) {
    adj.assign(static_cast<std::size_t>(n),
               std::vector<std::vector<Adj>>(static_cast<std::size_t>(n)));
    for (NodeId dst = 0; dst < n; ++dst) {
      auto& adj_dst = adj[static_cast<std::size_t>(dst)];
      for (SliceId s = 0; s < k_max; ++s) {
        const RoutingInstance& inst = mir.slice(s);
        for (NodeId v = 0; v < n; ++v) {
          if (v == dst) continue;
          const NodeId nh = inst.next_hop(v, dst);
          if (nh == kInvalidNode) continue;
          const EdgeId e = inst.next_hop_edge(v, dst);
          auto& at_head = adj_dst[static_cast<std::size_t>(nh)];
          bool duplicate = false;
          for (const Adj& a : at_head) {
            if (a.incoming && a.other == v && a.edge == e) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) continue;
          at_head.push_back(Adj{v, e, s, true});
          adj_dst[static_cast<std::size_t>(v)].push_back(
              Adj{nh, e, s, false});
        }
      }
    }
  }

  std::vector<char> reach(NodeId dst, SliceId k,
                          std::span<const char> edge_alive,
                          UnionSemantics semantics) const {
    const bool undirected = semantics == UnionSemantics::kUndirectedLinks;
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    seen[static_cast<std::size_t>(dst)] = 1;
    std::vector<NodeId> stack{dst};
    const auto& adj_dst = adj[static_cast<std::size_t>(dst)];
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const Adj& a : adj_dst[static_cast<std::size_t>(u)]) {
        if (a.slice >= k) continue;
        if (!undirected && !a.incoming) continue;
        if (!edge_alive.empty() &&
            !edge_alive[static_cast<std::size_t>(a.edge)])
          continue;
        auto& mark = seen[static_cast<std::size_t>(a.other)];
        if (!mark) {
          mark = 1;
          stack.push_back(a.other);
        }
      }
    }
    return seen;
  }

  long long disconnected_pairs(SliceId k, std::span<const char> edge_alive,
                               UnionSemantics semantics) const {
    long long disconnected = 0;
    for (NodeId dst = 0; dst < n; ++dst) {
      const auto seen = reach(dst, k, edge_alive, semantics);
      for (NodeId src = 0; src < n; ++src) {
        if (src != dst && !seen[static_cast<std::size_t>(src)])
          ++disconnected;
      }
    }
    return disconnected;
  }
};

/// The pre-workspace count_node_revisits: quadratic scan over a seen-list.
int legacy_count_node_revisits(const Delivery& d) {
  int revisits = 0;
  std::vector<NodeId> seen;
  seen.reserve(d.hops.size() + 1);
  auto visit = [&](NodeId v) {
    for (NodeId s : seen) {
      if (s == v) {
        ++revisits;
        return;
      }
    }
    seen.push_back(v);
  };
  if (!d.hops.empty()) visit(d.hops.front().node);
  for (const HopRecord& hop : d.hops) visit(hop.next);
  return revisits;
}

// ---------------------------------------------------------------------------
// Shared environment.
// ---------------------------------------------------------------------------

struct Env {
  Graph g;
  MultiInstanceRouting mir;
  FibSet fibs;
  DataPlaneNetwork net;

  Env(Graph graph, SliceId k)
      : g(std::move(graph)),
        mir(g, ControlPlaneConfig{
                   k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false}),
        fibs(mir.build_fibs()),
        net(g, fibs) {}
};

std::vector<Graph> evaluation_topologies() {
  std::vector<Graph> out;
  out.push_back(topo::geant());
  out.push_back(topo::sprint());
  Graph er = erdos_renyi(36, 0.12, 42);
  make_connected(er, 43);
  out.push_back(std::move(er));
  return out;
}

std::vector<char> random_mask(const Graph& g, double p_fail, Rng& rng) {
  std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 1);
  for (auto& m : mask) m = rng.uniform() < p_fail ? 0 : 1;
  return mask;
}

void expect_hops_equal(std::span<const HopRecord> got,
                       const std::vector<HopRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << "hop " << i;
    EXPECT_EQ(got[i].next, want[i].next) << "hop " << i;
    EXPECT_EQ(got[i].edge, want[i].edge) << "hop " << i;
    EXPECT_EQ(got[i].slice, want[i].slice) << "hop " << i;
    EXPECT_EQ(got[i].deflected, want[i].deflected) << "hop " << i;
  }
}

// ---------------------------------------------------------------------------
// Forwarding equivalence.
// ---------------------------------------------------------------------------

TEST(ForwardFastPath, MatchesLegacyForwardEverywhere) {
  const ForwardingPolicy policies[] = {
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kNone},
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kDeflect},
      {ExhaustPolicy::kHashDefault, LocalRecovery::kNone},
      {ExhaustPolicy::kHashDefault, LocalRecovery::kDeflect},
  };
  for (Graph& g : evaluation_topologies()) {
    for (const SliceId k : {SliceId{1}, SliceId{2}, SliceId{5}, SliceId{8}}) {
      Env env(g, k);
      Rng rng(1000 + static_cast<std::uint64_t>(k));
      const auto n = static_cast<std::uint64_t>(env.g.node_count());
      ForwardWorkspace ws;
      for (const double p_fail : {0.0, 0.1, 0.35}) {
        env.net.set_link_mask(random_mask(env.g, p_fail, rng));
        for (int i = 0; i < 60; ++i) {
          Packet p;
          p.src = static_cast<NodeId>(rng.below(n));
          p.dst = static_cast<NodeId>(rng.below(n));
          switch (i % 4) {
            case 0:
              p.header = SpliceHeader::random(k, 20, rng);
              break;
            case 1:
              break;  // empty header: default slice every hop
            case 2:
              p.header = SpliceHeader::random(k, 3, rng);  // exhausts early
              break;
            case 3:
              p.header = SpliceHeader::random(k, 20, rng);
              p.counter =
                  CounterHeader(static_cast<std::uint32_t>(rng.below(6)));
              break;
          }
          if (i % 7 == 0) p.ttl = 4;  // exercise TTL expiry
          for (const ForwardingPolicy& policy : policies) {
            const Delivery want =
                legacy_forward(env.fibs, env.net.link_mask(), p, policy);

            const Delivery via_forward = env.net.forward(p, policy);
            EXPECT_EQ(via_forward.outcome, want.outcome);
            expect_hops_equal(via_forward.hops, want.hops);

            const ForwardSummary fast = env.net.forward_fast(p, policy, ws);
            EXPECT_EQ(fast.outcome, want.outcome);
            EXPECT_EQ(fast.hops, want.hop_count());
            EXPECT_EQ(fast.cost, trace_cost(env.g, want));
            expect_hops_equal(ws.hops, want.hops);

            const ForwardSummary stats = env.net.forward_stats(p, policy);
            EXPECT_EQ(stats.outcome, fast.outcome);
            EXPECT_EQ(stats.hops, fast.hops);
            EXPECT_EQ(stats.cost, fast.cost);
            EXPECT_EQ(stats.deflected, fast.deflected);
          }
        }
      }
    }
  }
}

TEST(ForwardFastPath, BatchMatchesScalarStats) {
  const ForwardingPolicy policies[] = {
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kNone},
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kDeflect},
      {ExhaustPolicy::kHashDefault, LocalRecovery::kDeflect},
  };
  for (Graph& g : evaluation_topologies()) {
    for (const SliceId k : {SliceId{1}, SliceId{4}, SliceId{8}}) {
      Env env(g, k);
      Rng rng(9000 + static_cast<std::uint64_t>(k));
      const auto n = static_cast<std::uint64_t>(env.g.node_count());
      for (const double p_fail : {0.0, 0.25}) {
        env.net.set_link_mask(random_mask(env.g, p_fail, rng));
        // Batch sizes straddling the lane width, including 0 and src==dst
        // packets mixed into the workload.
        for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                        std::size_t{7}, std::size_t{8},
                                        std::size_t{9}, std::size_t{61}}) {
          std::vector<Packet> batch(count);
          for (std::size_t i = 0; i < count; ++i) {
            Packet& p = batch[i];
            p.src = static_cast<NodeId>(rng.below(n));
            p.dst = i % 5 == 4 ? p.src  // src==dst short-circuit
                               : static_cast<NodeId>(rng.below(n));
            if (i % 3 != 1) p.header = SpliceHeader::random(k, 20, rng);
            if (i % 4 == 3) {
              p.counter =
                  CounterHeader(static_cast<std::uint32_t>(rng.below(6)));
            }
            if (i % 7 == 0) p.ttl = 4;
          }
          std::vector<ForwardSummary> got(count);
          for (const ForwardingPolicy& policy : policies) {
            env.net.forward_stats_batch(batch, policy, got);
            for (std::size_t i = 0; i < count; ++i) {
              const ForwardSummary want = env.net.forward_stats(batch[i],
                                                                policy);
              EXPECT_EQ(got[i].outcome, want.outcome) << "packet " << i;
              EXPECT_EQ(got[i].hops, want.hops) << "packet " << i;
              EXPECT_EQ(got[i].cost, want.cost) << "packet " << i;
              EXPECT_EQ(got[i].deflected, want.deflected) << "packet " << i;
            }
          }
        }
      }
    }
  }
}

TEST(ForwardFastPath, LoopMetricsMatchLegacy) {
  Env env(topo::sprint(), 5);
  Rng rng(7);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  ForwardWorkspace ws;
  ForwardWorkspace metric_ws;
  const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                LocalRecovery::kDeflect};
  env.net.set_link_mask(random_mask(env.g, 0.2, rng));
  int nonempty = 0;
  for (int i = 0; i < 300; ++i) {
    Packet p;
    p.src = static_cast<NodeId>(rng.below(n));
    p.dst = static_cast<NodeId>(rng.below(n));
    p.header = SpliceHeader::random(5, 20, rng);
    const Delivery d = env.net.forward(p, policy);
    env.net.forward_fast(p, policy, ws);
    nonempty += d.hops.empty() ? 0 : 1;
    EXPECT_EQ(count_node_revisits(ws.hops, env.g.node_count(), metric_ws),
              legacy_count_node_revisits(d));
    EXPECT_EQ(count_node_revisits(d), legacy_count_node_revisits(d));
    EXPECT_EQ(has_two_hop_loop(std::span<const HopRecord>(ws.hops)),
              has_two_hop_loop(d));
  }
  EXPECT_GT(nonempty, 0);
}

TEST(ForwardFastPath, VisitStampEpochSurvivesWraparound) {
  Env env(topo::geant(), 3);
  Rng rng(9);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  ForwardWorkspace ws;
  ForwardWorkspace metric_ws;
  // Force an epoch wrap: the counter is 32-bit, so plant it near the top.
  metric_ws.visit_epoch = 0xffffffffu - 3;
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.src = static_cast<NodeId>(rng.below(n));
    p.dst = static_cast<NodeId>(rng.below(n));
    p.header = SpliceHeader::random(3, 20, rng);
    const Delivery d = env.net.forward(p);
    env.net.forward_fast(p, {}, ws);
    EXPECT_EQ(count_node_revisits(ws.hops, env.g.node_count(), metric_ws),
              legacy_count_node_revisits(d));
  }
}

// ---------------------------------------------------------------------------
// Batch-kernel dispatch: Lemire fast-mod exactness, scalar/AVX2 bit
// identity, and worker-count invariance of the sharded pipeline.
// ---------------------------------------------------------------------------

TEST(ForwardKernel, FastmodMatchesModuloExhaustively) {
  // Every divisor the slice reduction can see (k <= 256 covers all paper
  // configurations with room to spare) against edge-case and random raws.
  std::vector<std::uint32_t> raws = {0,          1,          2,
                                     254,        255,        256,
                                     257,        0x7fffffffu, 0x80000000u,
                                     0xfffffffeu, 0xffffffffu};
  Rng rng(424242);
  for (int i = 0; i < 5000; ++i) {
    raws.push_back(static_cast<std::uint32_t>(rng()));
  }
  for (std::uint32_t k = 1; k <= 256; ++k) {
    const std::uint64_t magic = fastmod_magic(k);
    for (const std::uint32_t raw : raws) {
      ASSERT_EQ(fastmod_u32(raw, magic, k), raw % k)
          << "raw=" << raw << " k=" << k;
    }
  }
}

TEST(ForwardKernel, ReduceSliceMatchesModulo) {
  for (const SliceId k : {SliceId{1}, SliceId{2}, SliceId{3}, SliceId{5},
                          SliceId{7}, SliceId{8}, SliceId{12}, SliceId{64}}) {
    FibSet fibs(k, 4);
    const FlatFibs flat(fibs);
    Rng rng(17 + static_cast<std::uint64_t>(k));
    for (int i = 0; i < 2000; ++i) {
      const auto raw = static_cast<std::uint32_t>(rng());
      ASSERT_EQ(flat.reduce_slice(raw),
                static_cast<SliceId>(raw % static_cast<std::uint32_t>(k)))
          << "raw=" << raw << " k=" << k;
    }
  }
}

void expect_summaries_equal(std::span<const ForwardSummary> got,
                            std::span<const ForwardSummary> want,
                            const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].outcome, want[i].outcome) << what << " packet " << i;
    EXPECT_EQ(got[i].hops, want[i].hops) << what << " packet " << i;
    EXPECT_EQ(got[i].cost, want[i].cost) << what << " packet " << i;
    EXPECT_EQ(got[i].deflected, want[i].deflected) << what << " packet " << i;
  }
}

/// Scalar vs AVX2 element-wise bit identity, with forward_stats as the
/// per-element oracle: all four policy combinations, counter headers,
/// ragged batch sizes straddling the 8-lane group width (0, 1, W-1, W,
/// W+1), power-of-two and non-power-of-two k, healthy and heavily failed
/// masks. When the CPU (or build) lacks AVX2, the AVX2 leg degrades to
/// scalar dispatch and the test still validates the oracle equivalence.
TEST(ForwardKernel, ScalarAvx2BitIdenticalToForwardStats) {
  const ForwardingPolicy policies[] = {
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kNone},
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kDeflect},
      {ExhaustPolicy::kHashDefault, LocalRecovery::kNone},
      {ExhaustPolicy::kHashDefault, LocalRecovery::kDeflect},
  };
  const bool have_avx2 = fwdk::kernel_supported(fwdk::Kernel::kAvx2);
  for (Graph& g : evaluation_topologies()) {
    for (const SliceId k :
         {SliceId{1}, SliceId{3}, SliceId{4}, SliceId{5}, SliceId{8}}) {
      Env env(g, k);
      BatchFeedConfig feed;
      feed.header_k = k;
      feed.counter_fraction = 0.3;
      std::vector<char> mask;
      std::vector<Packet> packets;
      ForwardWorkspace ws_scalar;
      ForwardWorkspace ws_avx2;
      for (const double p_fail : {0.0, 0.3}) {
        feed.failure_p = p_fail;
        int trial = 0;
        for (const std::size_t count :
             {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
              std::size_t{9}, std::size_t{70}}) {
          feed.packets_per_trial = static_cast<int>(count);
          fill_trial_batch(env.g, feed, 0xfeed0000u + static_cast<int>(k),
                           trial++, mask, packets);
          // A few src==dst short-circuits and short TTLs in the mix.
          for (std::size_t i = 0; i < count; ++i) {
            if (i % 5 == 4) packets[i].dst = packets[i].src;
            if (i % 7 == 0) packets[i].ttl = 4;
          }
          env.net.set_link_mask(mask);
          std::vector<ForwardSummary> want(count);
          std::vector<ForwardSummary> scalar(count);
          std::vector<ForwardSummary> avx2(count);
          for (const ForwardingPolicy& policy : policies) {
            for (std::size_t i = 0; i < count; ++i) {
              want[i] = env.net.forward_stats(packets[i], policy);
            }
            env.net.forward_stats_batch(packets, policy, scalar, ws_scalar,
                                        fwdk::Kernel::kScalar);
            env.net.forward_stats_batch(packets, policy, avx2, ws_avx2,
                                        fwdk::Kernel::kAvx2);
            expect_summaries_equal(scalar, want, "scalar");
            expect_summaries_equal(avx2, want, "avx2");
          }
        }
      }
    }
  }
  // The differential half of this test is only meaningful when the two
  // dispatches actually diverge; record that in the test output.
  if (!have_avx2) {
    GTEST_LOG_(INFO) << "AVX2 unavailable: both legs ran the scalar kernel";
  }
}

/// The sharded pipeline must be invariant under worker count and kernel:
/// out[i] bit-identical to the single-threaded batch for every shard
/// geometry, including mask updates between batches.
TEST(ForwardKernel, ShardPipelineWorkerCountInvariant) {
  const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                LocalRecovery::kDeflect};
  for (Graph& g : evaluation_topologies()) {
    const SliceId k = 5;
    Env env(g, k);
    BatchFeedConfig feed;
    feed.header_k = k;
    feed.packets_per_trial = 257;  // not a multiple of anything convenient
    feed.failure_p = 0.15;
    feed.counter_fraction = 0.2;
    std::vector<char> mask;
    std::vector<Packet> packets;
    for (int trial = 0; trial < 3; ++trial) {
      fill_trial_batch(env.g, feed, 0xabcdef, trial, mask, packets);
      env.net.set_link_mask(mask);
      std::vector<ForwardSummary> want(packets.size());
      env.net.forward_stats_batch(packets, policy, want);
      for (const int workers : {1, 2, 3, 5}) {
        for (const fwdk::Kernel kernel :
             {fwdk::Kernel::kScalar, fwdk::Kernel::kAvx2}) {
          ShardPipeline pipe(env.net, workers, kernel);
          ASSERT_LE(pipe.worker_count(), std::max(workers, 1));
          std::vector<ForwardSummary> got(packets.size());
          pipe.forward_stats_batch(packets, policy, got);
          expect_summaries_equal(got, want, "pipeline");
          // Mask update between batches: flip to all-alive and diff again.
          pipe.restore_all_links();
          env.net.restore_all_links();
          std::vector<ForwardSummary> want_up(packets.size());
          env.net.forward_stats_batch(packets, policy, want_up);
          pipe.forward_stats_batch(packets, policy, got);
          expect_summaries_equal(got, want_up, "pipeline-after-mask");
          env.net.set_link_mask(mask);  // restore for the next config
        }
      }
    }
  }
}

/// One long-lived pipeline across many batches and mask epochs (the
/// scenario-loop usage pattern), exercising the lazy mask rebroadcast.
TEST(ForwardKernel, ShardPipelineMaskEpochsAcrossBatches) {
  Env env(topo::sprint(), 4);
  const ForwardingPolicy policy{ExhaustPolicy::kHashDefault,
                                LocalRecovery::kDeflect};
  BatchFeedConfig feed;
  feed.header_k = 4;
  feed.packets_per_trial = 128;
  feed.failure_p = 0.2;
  ShardPipeline pipe(env.net, 3);
  std::vector<char> mask;
  std::vector<Packet> packets;
  for (int trial = 0; trial < 8; ++trial) {
    fill_trial_batch(env.g, feed, 0x5eed, trial, mask, packets);
    env.net.set_link_mask(mask);
    pipe.set_link_mask(mask);
    std::vector<ForwardSummary> want(packets.size());
    std::vector<ForwardSummary> got(packets.size());
    env.net.forward_stats_batch(packets, policy, want);
    pipe.forward_stats_batch(packets, policy, got);
    expect_summaries_equal(got, want, "epoch");
  }
}

// ---------------------------------------------------------------------------
// Recovery equivalence.
// ---------------------------------------------------------------------------

TEST(RecoveryFastPath, MatchesLegacyAcrossSchemes) {
  const RecoveryScheme schemes[] = {
      RecoveryScheme::kEndSystemCoinFlip,
      RecoveryScheme::kEndSystemFresh,
      RecoveryScheme::kEndSystemNoRevisit,
      RecoveryScheme::kEndSystemBoundedSwitches,
      RecoveryScheme::kEndSystemFirstHopBiased,
      RecoveryScheme::kEndSystemCounter,
      RecoveryScheme::kNetworkDeflection,
  };
  Env env(topo::sprint(), 5);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  for (const RecoveryScheme scheme : schemes) {
    RecoveryConfig cfg;
    cfg.scheme = scheme;
    Rng mask_rng(31 + static_cast<std::uint64_t>(scheme));
    env.net.set_link_mask(random_mask(env.g, 0.15, mask_rng));
    Rng legacy_rng(77);
    Rng fast_rng(77);
    ForwardWorkspace ws;
    for (int i = 0; i < 120; ++i) {
      const auto src = static_cast<NodeId>(mask_rng.below(n));
      auto dst = static_cast<NodeId>(mask_rng.below(n));
      if (src == dst) dst = (dst + 1) % env.g.node_count();

      const RecoveryResult want =
          attempt_recovery(env.net, src, dst, cfg, legacy_rng);
      const FastRecoveryResult got =
          attempt_recovery_fast(env.net, src, dst, cfg, fast_rng, ws);

      EXPECT_EQ(got.initially_connected, want.initially_connected);
      EXPECT_EQ(got.delivered, want.delivered);
      EXPECT_EQ(got.trials_used, want.trials_used);
      if (want.delivered) {
        EXPECT_EQ(got.summary.hops, want.delivery.hop_count());
        EXPECT_EQ(got.summary.cost, trace_cost(env.g, want.delivery));
        expect_hops_equal(ws.hops, want.delivery.hops);
      }
      // Both must have consumed the rng identically.
      EXPECT_EQ(legacy_rng(), fast_rng());
    }
  }
}

// ---------------------------------------------------------------------------
// Reliability-analyzer equivalence.
// ---------------------------------------------------------------------------

TEST(CsrAnalyzer, MatchesLegacyAdjacencyBuild) {
  for (Graph& g : evaluation_topologies()) {
    const SliceId k_max = 5;
    MultiInstanceRouting mir(
        g, ControlPlaneConfig{
               k_max, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false});
    const SplicedReliabilityAnalyzer analyzer(g, mir);
    const LegacyAnalyzer legacy(g, mir);
    Rng rng(5);
    for (const double p_fail : {0.0, 0.08, 0.3}) {
      const auto mask = random_mask(g, p_fail, rng);
      const std::span<const char> mask_view =
          p_fail == 0.0 ? std::span<const char>{} : mask;
      for (SliceId k = 1; k <= k_max; ++k) {
        for (const UnionSemantics sem : {UnionSemantics::kUndirectedLinks,
                                         UnionSemantics::kDirectedForwarding}) {
          EXPECT_EQ(analyzer.disconnected_pairs(k, mask_view, sem),
                    legacy.disconnected_pairs(k, mask_view, sem))
              << "k=" << k;
          for (NodeId dst = 0; dst < g.node_count(); ++dst) {
            EXPECT_EQ(analyzer.reachable_sources(dst, k, mask_view, sem),
                      legacy.reach(dst, k, mask_view, sem))
                << "dst=" << dst << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(CsrAnalyzer, WorkspaceEntryPointsMatchAllocatingOnes) {
  Graph g = topo::geant();
  MultiInstanceRouting mir(
      g, ControlPlaneConfig{
             4, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false});
  const SplicedReliabilityAnalyzer analyzer(g, mir);
  Rng rng(8);
  ReachWorkspace ws;
  for (int trial = 0; trial < 5; ++trial) {
    const auto mask = random_mask(g, 0.15, rng);
    for (SliceId k = 1; k <= 4; ++k) {
      for (const UnionSemantics sem : {UnionSemantics::kUndirectedLinks,
                                       UnionSemantics::kDirectedForwarding}) {
        EXPECT_EQ(analyzer.disconnected_pairs(k, mask, sem, ws),
                  analyzer.disconnected_pairs(k, mask, sem));
        for (NodeId dst = 0; dst < g.node_count(); dst += 5) {
          analyzer.reachable_sources_into(dst, k, mask, sem, ws);
          EXPECT_EQ(ws.seen, analyzer.reachable_sources(dst, k, mask, sem));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Experiment-level determinism: bit-identical at every thread count.
// ---------------------------------------------------------------------------

TEST(TrialEngineExperiments, ReliabilityBitIdenticalAcrossThreadCounts) {
  Graph g = erdos_renyi(26, 0.18, 11);
  make_connected(g, 12);
  ReliabilityConfig cfg;
  cfg.k_values = {1, 2, 3};
  cfg.p_values = {0.05, 0.12};
  cfg.trials = 12;
  cfg.seed = 3;

  cfg.threads = 1;
  const ReliabilityCurves serial = run_reliability_experiment(g, cfg);
  const int hw = default_thread_count();
  for (const int threads : {2, hw > 1 ? hw : 3}) {
    cfg.threads = threads;
    const ReliabilityCurves parallel = run_reliability_experiment(g, cfg);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_EQ(parallel.points[i].k, serial.points[i].k);
      EXPECT_EQ(parallel.points[i].p, serial.points[i].p);
      EXPECT_EQ(parallel.points[i].mean_disconnected,
                serial.points[i].mean_disconnected);
      EXPECT_EQ(parallel.points[i].ci95, serial.points[i].ci95);
    }
    ASSERT_EQ(parallel.best_possible.size(), serial.best_possible.size());
    for (std::size_t i = 0; i < serial.best_possible.size(); ++i) {
      EXPECT_EQ(parallel.best_possible[i].mean_disconnected,
                serial.best_possible[i].mean_disconnected);
      EXPECT_EQ(parallel.best_possible[i].ci95, serial.best_possible[i].ci95);
    }
  }
}

void expect_recovery_points_equal(const std::vector<RecoveryPoint>& got,
                                  const std::vector<RecoveryPoint>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].k, want[i].k);
    EXPECT_EQ(got[i].p, want[i].p);
    EXPECT_EQ(got[i].frac_unrecovered, want[i].frac_unrecovered);
    EXPECT_EQ(got[i].frac_disconnected, want[i].frac_disconnected);
    EXPECT_EQ(got[i].frac_initial_broken, want[i].frac_initial_broken);
    EXPECT_EQ(got[i].mean_trials, want[i].mean_trials);
    EXPECT_EQ(got[i].mean_stretch, want[i].mean_stretch);
    EXPECT_EQ(got[i].mean_hop_inflation, want[i].mean_hop_inflation);
    EXPECT_EQ(got[i].p99_stretch, want[i].p99_stretch);
    EXPECT_EQ(got[i].two_hop_loop_rate, want[i].two_hop_loop_rate);
    EXPECT_EQ(got[i].revisit_rate, want[i].revisit_rate);
  }
}

TEST(TrialEngineExperiments, RecoveryBitIdenticalAcrossThreadCounts) {
  const Graph g = topo::geant();
  for (const RecoveryScheme scheme : {RecoveryScheme::kEndSystemCoinFlip,
                                      RecoveryScheme::kNetworkDeflection}) {
    RecoveryExperimentConfig cfg;
    cfg.k_values = {1, 3};
    cfg.p_values = {0.05, 0.1};
    cfg.trials = 6;
    cfg.seed = 4;
    cfg.pair_sample = 30;
    cfg.recovery.scheme = scheme;

    cfg.threads = 1;
    const auto serial = run_recovery_experiment(g, cfg);
    const int hw = default_thread_count();
    for (const int threads : {2, hw > 1 ? hw : 3}) {
      cfg.threads = threads;
      expect_recovery_points_equal(run_recovery_experiment(g, cfg), serial);
    }
  }
}

TEST(TrialEngineExperiments, ExhaustivePairsRecoveryThreadInvariant) {
  // pair_sample = 0 walks every ordered pair — the Figs. 4/5 configuration.
  const Graph g = topo::abilene();
  RecoveryExperimentConfig cfg;
  cfg.k_values = {1, 3};
  cfg.p_values = {0.1};
  cfg.trials = 5;
  cfg.seed = 6;
  cfg.pair_sample = 0;

  cfg.threads = 1;
  const auto serial = run_recovery_experiment(g, cfg);
  cfg.threads = 4;
  expect_recovery_points_equal(run_recovery_experiment(g, cfg), serial);
}

}  // namespace
}  // namespace splice
