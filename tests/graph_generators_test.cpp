// Generator invariants: node/edge counts, connectivity, determinism.
#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/properties.h"

namespace splice {
namespace {

TEST(Generators, ErdosRenyiDeterministic) {
  const Graph a = erdos_renyi(20, 0.3, 5);
  const Graph b = erdos_renyi(20, 0.3, 5);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(Generators, ErdosRenyiExtremes) {
  EXPECT_EQ(erdos_renyi(10, 0.0, 1).edge_count(), 0);
  EXPECT_EQ(erdos_renyi(10, 1.0, 1).edge_count(), 45);
}

TEST(Generators, ErdosRenyiEdgeDensity) {
  const Graph g = erdos_renyi(100, 0.1, 7);
  // E[m] = 0.1 * 4950 = 495; allow wide tolerance.
  EXPECT_GT(g.edge_count(), 350);
  EXPECT_LT(g.edge_count(), 650);
}

TEST(Generators, WaxmanWeightsPositive) {
  const Graph g = waxman(50, 0.9, 0.2, 3);
  for (const Edge& e : g.edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 10.0);
  }
}

TEST(Generators, WaxmanDeterministic) {
  const Graph a = waxman(30, 0.8, 0.15, 11);
  const Graph b = waxman(30, 0.8, 0.15, 11);
  EXPECT_EQ(a.edge_count(), b.edge_count());
}

TEST(Generators, BarabasiAlbertCounts) {
  const int m = 2;
  const NodeId n = 50;
  const Graph g = barabasi_albert(n, m, 1);
  EXPECT_EQ(g.node_count(), n);
  // Seed clique of m+1=3 nodes has 3 edges; each of the other 47 adds 2.
  EXPECT_EQ(g.edge_count(), 3 + (n - 3) * m);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BarabasiAlbertIsHeavyTailed) {
  const Graph g = barabasi_albert(200, 2, 9);
  const TopologyStats s = topology_stats(g);
  // Hubs should substantially exceed the average degree.
  EXPECT_GT(s.max_degree, 4 * static_cast<int>(s.avg_degree));
}

TEST(Generators, RingProperties) {
  const Graph g = ring(7);
  EXPECT_EQ(g.node_count(), 7);
  EXPECT_EQ(g.edge_count(), 7);
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Generators, GridProperties) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_EQ(g.edge_count(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CompleteProperties) {
  const Graph g = complete(6);
  EXPECT_EQ(g.edge_count(), 15);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
}

TEST(Generators, Figure1Topology) {
  const Graph g = figure1_two_paths(2);
  EXPECT_EQ(g.node_count(), 6);
  EXPECT_EQ(g.edge_count(), 6);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2);  // s
  EXPECT_EQ(g.degree(1), 2);  // t
}

TEST(Generators, MakeConnectedRepairs) {
  Graph g(10);  // fully disconnected
  const int added = make_connected(g, 5);
  EXPECT_EQ(added, 9);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, MakeConnectedNoopWhenConnected) {
  Graph g = ring(5);
  EXPECT_EQ(make_connected(g, 1), 0);
  EXPECT_EQ(g.edge_count(), 5);
}

// Property sweep: random trees are trees (n-1 edges, connected, acyclic by
// edge count) for many sizes and seeds.
struct TreeParam {
  NodeId n;
  std::uint64_t seed;
};

class RandomTreeProperty : public ::testing::TestWithParam<TreeParam> {};

TEST_P(RandomTreeProperty, IsATree) {
  const auto [n, seed] = GetParam();
  const Graph g = random_tree(n, seed);
  EXPECT_EQ(g.node_count(), n);
  EXPECT_EQ(g.edge_count(), n - 1);
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomTreeProperty,
    ::testing::Values(TreeParam{2, 1}, TreeParam{3, 2}, TreeParam{4, 3},
                      TreeParam{5, 4}, TreeParam{8, 5}, TreeParam{16, 6},
                      TreeParam{33, 7}, TreeParam{64, 8}, TreeParam{100, 9},
                      TreeParam{200, 10}));

}  // namespace
}  // namespace splice
