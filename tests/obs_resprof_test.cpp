// Resource-attribution profiler tests: a brute-force oracle for the
// allocation hooks, the nested peak-watermark contract, tier degradation,
// span integration — and the zero-alloc gates this subsystem exists to
// enforce: forward_fast, the forward_stats_batch workspace overload, the
// reliability analyzer's workspace path and TrialEngine steady-state trials
// must perform ZERO heap allocations, at 1, 2 and 8 threads.
//
// Every hook-dependent test skips when alloc_hooks_compiled() is false
// (-DSPLICE_OBS=OFF or a sanitizer build, whose runtime owns new/delete).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "dataplane/network.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/resprof.h"
#include "obs/span.h"
#include "routing/multi_instance.h"
#include "sim/trial_engine.h"
#include "splicing/reliability.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

using obs::ResourceDelta;
using obs::ResourceProfiler;
using obs::ResourceScope;
using obs::ResourceTier;

class ResprofTest : public ::testing::Test {
 protected:
  void SetUp() override { ResourceProfiler::set_enabled(true); }
  void TearDown() override {
    ResourceProfiler::set_enabled(false);
    obs::SpanCollector::global().reset();
    obs::MetricsRegistry::set_enabled(false);
  }

  static bool hooks() { return obs::alloc_hooks_compiled(); }

  // False under -DSPLICE_OBS=OFF, where set_enabled() is a no-op: tier
  // tests skip there (the tier is contractually kOff in that build).
  static bool profiler_on() { return ResourceProfiler::enabled(); }
};

// ---------------------------------------------------------------------------
// Allocation-hook oracle.
// ---------------------------------------------------------------------------

TEST_F(ResprofTest, CountsExactlyTheAllocationsInTheRegion) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  constexpr int kAllocs = 50;
  std::size_t requested = 0;
  ResourceScope scope;
  char* blocks[kAllocs];
  for (int i = 0; i < kAllocs; ++i) {
    const std::size_t size = static_cast<std::size_t>(i + 1) * 16;
    blocks[i] = new char[size];
    requested += size;
  }
  for (char* b : blocks) delete[] b;
  const ResourceDelta d = scope.finish();
  EXPECT_EQ(d.allocs, kAllocs);
  EXPECT_EQ(d.frees, kAllocs);
  // Usable size >= requested size; malloc rounds up, never down.
  EXPECT_GE(d.alloc_bytes, static_cast<long long>(requested));
  EXPECT_TRUE(d.any());
}

TEST_F(ResprofTest, EmptyRegionHasNoAllocDelta) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  ResourceScope scope;
  const ResourceDelta d = scope.finish();
  EXPECT_EQ(d.allocs, 0);
  EXPECT_EQ(d.frees, 0);
  EXPECT_EQ(d.alloc_bytes, 0);
  EXPECT_EQ(d.peak_bytes, 0);
}

// The negative control behind every zero-alloc gate below: a region that
// does allocate must be seen to allocate, so a deliberately inserted
// allocation on a gated path fails its test rather than slipping through.
TEST_F(ResprofTest, DetectsADeliberateAllocation) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  ResourceScope scope;
  std::vector<int> v(100, 7);
  const int sink = v[99];
  const ResourceDelta d = scope.finish();
  EXPECT_EQ(sink, 7);
  EXPECT_GE(d.allocs, 1);
  EXPECT_GE(d.alloc_bytes, static_cast<long long>(100 * sizeof(int)));
}

TEST_F(ResprofTest, NestedRegionsEachSeeTheirOwnPeak) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  constexpr std::size_t kBig = 1 << 20;
  constexpr std::size_t kSmall = 2048;
  ResourceScope outer;
  {
    char* big = new char[kBig];
    big[0] = 1;
    delete[] big;
  }
  ResourceScope inner;
  {
    char* small = new char[kSmall];
    small[0] = 1;
    delete[] small;
  }
  const ResourceDelta di = inner.finish();
  const ResourceDelta douter = outer.finish();
  // The inner region's peak reflects only its own allocation, not the
  // 1 MiB the outer region saw before the inner mark opened.
  EXPECT_GE(di.peak_bytes, static_cast<long long>(kSmall));
  EXPECT_LT(di.peak_bytes, static_cast<long long>(kBig / 2));
  // Closing the inner region restored the outer watermark.
  EXPECT_GE(douter.peak_bytes, static_cast<long long>(kBig));
}

TEST_F(ResprofTest, CountersAreThreadLocal) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  ResourceDelta worker_delta;
  std::thread t([&] {
    ResourceProfiler::set_enabled(true);  // idempotent; fixture owns it
    ResourceScope scope;
    for (int i = 0; i < 1000; ++i) {
      char* p = new char[64];
      p[0] = 1;
      delete[] p;
    }
    worker_delta = scope.finish();
  });
  t.join();
  EXPECT_EQ(worker_delta.allocs, 1000);
  EXPECT_EQ(worker_delta.frees, 1000);
  // The worker's traffic never lands on this thread's counters.
  ResourceScope scope;
  const ResourceDelta here = scope.finish();
  EXPECT_EQ(here.allocs, 0);
}

TEST_F(ResprofTest, DisabledProfilerRecordsNothing) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  ResourceProfiler::set_enabled(false);
  ResourceScope scope;
  char* p = new char[4096];
  p[0] = 1;
  delete[] p;
  const ResourceDelta d = scope.finish();
  EXPECT_EQ(d.allocs, 0);
  EXPECT_EQ(d.alloc_bytes, 0);
  EXPECT_FALSE(d.any());
}

// ---------------------------------------------------------------------------
// Tier ladder.
// ---------------------------------------------------------------------------

TEST_F(ResprofTest, EnabledProfilerIsNeverOnTheOffTier) {
  if (!profiler_on()) GTEST_SKIP() << "profiler compiled out (SPLICE_OBS=OFF)";
  EXPECT_NE(ResourceProfiler::tier(), ResourceTier::kOff);
  ResourceProfiler::set_enabled(false);
  EXPECT_EQ(ResourceProfiler::tier(), ResourceTier::kOff);
}

TEST_F(ResprofTest, ForcedRusageTierDropsHardwareCounters) {
  if (!profiler_on()) GTEST_SKIP() << "profiler compiled out (SPLICE_OBS=OFF)";
  ASSERT_EQ(setenv("SPLICE_RESPROF_TIER", "rusage", 1), 0);
  ResourceProfiler::reprobe_tier();
  EXPECT_EQ(ResourceProfiler::tier(), ResourceTier::kRusage);
  ResourceScope scope;
  const ResourceDelta d = scope.finish();
  EXPECT_FALSE(d.hw_valid);
  EXPECT_EQ(d.cycles, 0);
  ASSERT_EQ(unsetenv("SPLICE_RESPROF_TIER"), 0);
  ResourceProfiler::reprobe_tier();
  EXPECT_NE(ResourceProfiler::tier(), ResourceTier::kOff);
}

TEST_F(ResprofTest, ProcessResourcesAreAvailableOnEveryTier) {
  const obs::ProcessResources pr = obs::capture_process_resources();
  ASSERT_TRUE(pr.ok);
  EXPECT_GT(pr.max_rss_bytes, 0);
  EXPECT_GE(pr.user_seconds + pr.sys_seconds, 0.0);

  // resource_report() is keyed to the profiler being enabled — which a
  // SPLICE_OBS=OFF build never is; capture_process_resources() above works
  // on every tier regardless.
  if (!profiler_on()) return;
  const auto rows = obs::resource_report();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front().first, "tier");
  bool has_rss = false;
  for (const auto& [k, v] : rows) has_rss |= k == "max_rss_bytes";
  EXPECT_TRUE(has_rss);
}

// ---------------------------------------------------------------------------
// Clock unification + span integration.
// ---------------------------------------------------------------------------

TEST_F(ResprofTest, GlobalClockSteersEveryTimestamp) {
  obs::ManualClock manual;
  obs::set_global_clock(&manual);
  EXPECT_EQ(obs::clock_now_ns(), 0u);
  manual.advance_ns(250);
  EXPECT_EQ(obs::clock_now_ns(), 250u);
  EXPECT_EQ(obs::global_clock().now_ns(), 250u);
  obs::set_global_clock(nullptr);
  // Monotonic clock restored: time moves again.
  const std::uint64_t a = obs::clock_now_ns();
  EXPECT_GT(a, 250u);
}

TEST_F(ResprofTest, SpansCarryResourceDeltas) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  obs::MetricsRegistry::set_enabled(true);
  obs::SpanCollector::global().reset();
  {
    SPLICE_OBS_SPAN("resprof_test.alloc_phase");
    char* p = new char[512];
    p[0] = 1;
    delete[] p;
  }
  const obs::SpanSnapshot snap = obs::SpanCollector::global().snapshot();
  bool found = false;
  for (const obs::SpanStat& s : snap.stats) {
    if (s.path != "resprof_test.alloc_phase") continue;
    found = true;
    EXPECT_GE(s.res.allocs, 1);
    EXPECT_GE(s.res.alloc_bytes, 512);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Zero-alloc gates.
// ---------------------------------------------------------------------------

struct GateEnv {
  Graph g;
  MultiInstanceRouting mir;
  FibSet fibs;
  DataPlaneNetwork net;
  SplicedReliabilityAnalyzer analyzer;

  explicit GateEnv(SliceId k = 5)
      : g(topo::by_name("abilene")),
        mir(g, ControlPlaneConfig{
                   k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false}),
        fibs(mir.build_fibs()),
        net(g, fibs),
        analyzer(g, mir) {}
};

std::vector<Packet> gate_packets(const Graph& g, SliceId k, int count) {
  Rng rng(2026);
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(count));
  const auto n = static_cast<std::uint64_t>(g.node_count());
  for (int i = 0; i < count; ++i) {
    Packet p;
    p.src = static_cast<NodeId>(rng.below(n));
    p.dst = static_cast<NodeId>(rng.below(n));
    if (i % 3 != 1) p.header = SpliceHeader::random(k, 20, rng);
    out.push_back(p);
  }
  return out;
}

std::vector<char> gate_mask(const Graph& g, double p_fail, Rng& rng) {
  std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 1);
  for (auto& m : mask) m = rng.uniform() < p_fail ? 0 : 1;
  return mask;
}

TEST_F(ResprofTest, ForwardFastIsZeroAlloc) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  GateEnv env;
  const std::vector<Packet> packets = gate_packets(env.g, 5, 64);
  const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                LocalRecovery::kDeflect};
  ForwardWorkspace ws;
  // Warm-up grows the hop buffer and visit stamps to steady-state size.
  for (const Packet& p : packets) {
    (void)env.net.forward_fast(p, policy, ws);
    (void)count_node_revisits(ws.hops, env.g.node_count(), ws);
  }

  ResourceScope scope;
  int delivered = 0;
  for (const Packet& p : packets) {
    const ForwardSummary s = env.net.forward_fast(p, policy, ws);
    delivered += s.delivered() ? 1 : 0;
    (void)count_node_revisits(ws.hops, env.g.node_count(), ws);
  }
  const ResourceDelta d = scope.finish();
  EXPECT_EQ(d.allocs, 0) << "forward_fast allocated on the hot path";
  EXPECT_EQ(d.frees, 0);
  EXPECT_GT(delivered, 0);

  // forward_stats: the no-trace mode is equally clean.
  ResourceScope stats_scope;
  for (const Packet& p : packets) (void)env.net.forward_stats(p, policy);
  EXPECT_EQ(stats_scope.finish().allocs, 0);
}

TEST_F(ResprofTest, ForwardStatsBatchWorkspaceOverloadIsZeroAlloc) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  GateEnv env;
  const std::vector<Packet> packets = gate_packets(env.g, 5, 256);
  const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                LocalRecovery::kDeflect};
  std::vector<ForwardSummary> out(packets.size());
  ForwardWorkspace ws;
  env.net.forward_stats_batch(packets, policy, out, ws);  // grows scratch

  ResourceScope scope;
  for (int rep = 0; rep < 8; ++rep) {
    env.net.forward_stats_batch(packets, policy, out, ws);
  }
  const ResourceDelta d = scope.finish();
  EXPECT_EQ(d.allocs, 0) << "batch kernel allocated in steady state";
  EXPECT_EQ(d.frees, 0);

  // And the workspace results match the allocating overload bit-for-bit.
  std::vector<ForwardSummary> plain(packets.size());
  env.net.forward_stats_batch(packets, policy, plain);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(plain[i].outcome, out[i].outcome);
    EXPECT_EQ(plain[i].hops, out[i].hops);
    EXPECT_EQ(plain[i].cost, out[i].cost);
    EXPECT_EQ(plain[i].deflected, out[i].deflected);
  }
}

TEST_F(ResprofTest, ReliabilityAnalyzerWorkspacePathIsZeroAlloc) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  GateEnv env;
  Rng rng(7);
  const std::vector<char> mask = gate_mask(env.g, 0.2, rng);
  ReachWorkspace ws;
  (void)env.analyzer.disconnected_pairs(
      5, mask, UnionSemantics::kUndirectedLinks, ws);  // warm-up

  ResourceScope scope;
  long long total = 0;
  for (int rep = 0; rep < 8; ++rep) {
    total += env.analyzer.disconnected_pairs(
        5, mask, UnionSemantics::kUndirectedLinks, ws);
    total += env.analyzer.disconnected_pairs(
        3, mask, UnionSemantics::kDirectedForwarding, ws);
  }
  const ResourceDelta d = scope.finish();
  EXPECT_EQ(d.allocs, 0) << "analyzer allocated with a warm workspace";
  EXPECT_EQ(d.frees, 0);
  EXPECT_GE(total, 0);
}

// TrialEngine: each worker's first trial may grow its scratch; every later
// trial on that worker must allocate nothing. The per-trial delta is the
// trial's *result*, so the engine's own bookkeeping (result vectors, the
// scratch unique_ptr) stays outside the measured region.
void run_trial_engine_gate(int threads) {
  GateEnv env;
  const std::vector<Packet> packets = gate_packets(env.g, 5, 128);
  const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                LocalRecovery::kDeflect};
  constexpr int kTrials = 48;

  struct Scratch {
    DataPlaneNetwork net;
    std::vector<char> mask;
    std::vector<ForwardSummary> out;
    ForwardWorkspace fwd;
    ReachWorkspace reach;
  };
  const TrialEngine<Scratch> engine(threads);
  const std::vector<ResourceDelta> deltas =
      engine.run<ResourceDelta>(
          kTrials,
          [&] {
            ResourceProfiler::set_enabled(true);  // fresh worker threads
            Scratch sc{env.net,
                       std::vector<char>(
                           static_cast<std::size_t>(env.g.edge_count()), 1),
                       std::vector<ForwardSummary>(packets.size()),
                       ForwardWorkspace{},
                       ReachWorkspace{}};
            // Warm the workspaces to steady-state capacity: batch scratch
            // grows to the batch size, the BFS seen/stack buffers to the
            // node count (a BFS never holds more than n entries, so this
            // covers every mask a trial can draw).
            const auto n =
                static_cast<std::size_t>(env.g.node_count());
            sc.reach.seen.reserve(n);
            sc.reach.stack.reserve(n);
            sc.net.forward_stats_batch(packets, policy, sc.out, sc.fwd);
            (void)env.analyzer.disconnected_pairs(
                5, sc.mask, UnionSemantics::kUndirectedLinks, sc.reach);
            return sc;
          },
          [&](int trial, Scratch& sc) {
            ResourceScope scope;
            Rng rng(trial_substream_seed(99, static_cast<std::uint64_t>(
                                                 trial)));
            for (auto& m : sc.mask) m = rng.uniform() < 0.15 ? 0 : 1;
            sc.net.set_link_mask(sc.mask);
            sc.net.forward_stats_batch(packets, policy, sc.out, sc.fwd);
            (void)env.analyzer.disconnected_pairs(
                5, sc.mask, UnionSemantics::kUndirectedLinks, sc.reach);
            return scope.finish();
          });

  ASSERT_EQ(deltas.size(), static_cast<std::size_t>(kTrials));
  // With the factory warming every workspace, no trial — first or later —
  // may touch the heap.
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_EQ(deltas[i].allocs, 0)
        << "trial " << i << " allocated at threads=" << threads;
    EXPECT_EQ(deltas[i].frees, 0)
        << "trial " << i << " freed at threads=" << threads;
  }
}

TEST_F(ResprofTest, TrialEngineSteadyStateIsZeroAllocAt1Thread) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  run_trial_engine_gate(1);
}

TEST_F(ResprofTest, TrialEngineSteadyStateIsZeroAllocAt2Threads) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  run_trial_engine_gate(2);
}

TEST_F(ResprofTest, TrialEngineSteadyStateIsZeroAllocAt8Threads) {
  if (!hooks()) GTEST_SKIP() << "alloc hooks not compiled into this build";
  run_trial_engine_gate(8);
}

}  // namespace
}  // namespace splice
