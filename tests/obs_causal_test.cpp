// Churn -> anomaly correlation engine: correlate() is a pure join, so its
// semantics pin down exactly — cause resolution through the epoch index,
// observation lag only when the anomaly timestamp is known and not before
// the publish, repair as the first LATER publish restoring the SAME edge,
// and unresolvable epochs (0, unknown, or publish-less) left unresolved.
// Chains and their JSON rendering must be canonical: invariant under the
// epoch input order, one chain per anomaly in anomaly order.
#include "obs/causal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace splice::obs {
namespace {

EpochRecord publish(std::uint64_t epoch, std::uint64_t ts, std::int64_t edge,
                    bool alive, std::uint64_t latency_ns = 0) {
  EpochRecord e;
  e.epoch = epoch;
  e.has_publish = true;
  e.publish_ts_ns = ts;
  e.edge = edge;
  e.alive = alive;
  if (latency_ns != 0) {
    e.has_latency = true;
    e.latency_ns = latency_ns;
  }
  return e;
}

TEST(ObsCausalTest, ResolvesCauseLagAndRepair) {
  std::vector<EpochRecord> epochs = {
      publish(5, 1000, 7, false, 50),  // edge 7 down: the cause
      publish(6, 2000, 3, false),      // unrelated edge
      publish(7, 6000, 7, true),       // edge 7 restored: the repair
  };
  std::vector<AnomalyRef> anomalies = {
      {1500, 5},  // lag 500 after the publish
      {0, 5},     // unknown timestamp: cause yes, lag no
      {900, 5},   // recorded before the publish: no (negative) lag
  };
  const auto chains = correlate(epochs, anomalies);
  ASSERT_EQ(chains.size(), 3u);

  const CausalChain& c0 = chains[0];
  EXPECT_EQ(c0.anomaly_index, 0u);
  EXPECT_EQ(c0.fib_epoch, 5u);
  EXPECT_TRUE(c0.cause_found);
  EXPECT_EQ(c0.cause_edge, 7);
  EXPECT_TRUE(c0.cause_down);
  EXPECT_EQ(c0.publish_ts_ns, 1000u);
  EXPECT_EQ(c0.reconv_latency_ns, 50u);
  EXPECT_TRUE(c0.has_lag);
  EXPECT_EQ(c0.lag_ns, 500u);
  EXPECT_TRUE(c0.repaired);
  EXPECT_EQ(c0.repair_epoch, 7u);
  EXPECT_EQ(c0.repair_ts_ns, 6000u);
  EXPECT_TRUE(c0.has_window);
  EXPECT_EQ(c0.window_ns, 5000u);

  EXPECT_TRUE(chains[1].cause_found);
  EXPECT_FALSE(chains[1].has_lag);
  EXPECT_TRUE(chains[2].cause_found);
  EXPECT_FALSE(chains[2].has_lag);
}

TEST(ObsCausalTest, UnresolvableEpochsStayUnresolved) {
  std::vector<EpochRecord> epochs = {publish(5, 1000, 7, false)};
  EpochRecord bare;  // an epoch row with no publish fields
  bare.epoch = 9;
  epochs.push_back(bare);

  const std::vector<AnomalyRef> anomalies = {
      {100, 0},   // fib_epoch 0: pre-churn FIB, nothing to join
      {100, 4},   // unknown epoch
      {100, 9},   // known epoch, no publish row
  };
  const auto chains = correlate(epochs, anomalies);
  ASSERT_EQ(chains.size(), 3u);
  for (const CausalChain& c : chains) {
    EXPECT_FALSE(c.cause_found);
    EXPECT_FALSE(c.repaired);
    EXPECT_FALSE(c.has_lag);
    EXPECT_FALSE(c.has_window);
  }
  EXPECT_EQ(chains[0].fib_epoch, 0u);
  EXPECT_EQ(chains[2].fib_epoch, 9u);
}

TEST(ObsCausalTest, RepairSkipsOtherEdgesAndRepeatedDowns) {
  const std::vector<EpochRecord> epochs = {
      publish(2, 1000, 7, false),  // cause
      publish(3, 1500, 7, false),  // the same edge flapping down again
      publish(4, 1600, 9, true),   // a different edge coming up
      publish(5, 2000, 7, true),   // the actual repair
  };
  const std::vector<AnomalyRef> anomalies = {{1200, 2}};
  const auto chains = correlate(epochs, anomalies);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_TRUE(chains[0].repaired);
  EXPECT_EQ(chains[0].repair_epoch, 5u);
  EXPECT_TRUE(chains[0].has_window);
  EXPECT_EQ(chains[0].window_ns, 1000u);
}

TEST(ObsCausalTest, NeverRepairedLeavesWindowOpen) {
  const std::vector<EpochRecord> epochs = {publish(2, 1000, 7, false)};
  const auto chains = correlate(epochs, {{{1200, 2}}});
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_TRUE(chains[0].cause_found);
  EXPECT_FALSE(chains[0].repaired);
  EXPECT_FALSE(chains[0].has_window);
}

TEST(ObsCausalTest, CanonicalUnderEpochInputOrder) {
  std::vector<EpochRecord> epochs = {
      publish(2, 1000, 7, false),
      publish(3, 1500, 3, false),
      publish(4, 2000, 7, true),
      publish(5, 2500, 3, true),
  };
  const std::vector<AnomalyRef> anomalies = {{1800, 2}, {1700, 3}, {0, 0}};

  const auto want = correlate(epochs, anomalies);
  const std::string want_json = causal_chains_json(want);

  std::reverse(epochs.begin(), epochs.end());
  const auto got = correlate(epochs, anomalies);
  EXPECT_EQ(causal_chains_json(got), want_json);

  // Chains come back one per anomaly, in anomaly order.
  ASSERT_EQ(got.size(), anomalies.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].anomaly_index, i);
    EXPECT_EQ(got[i].fib_epoch, anomalies[i].fib_epoch);
  }

  // The JSON array is stable, parseable shape with quoted u64s.
  EXPECT_NE(want_json.find("\"fib_epoch\": \"2\""), std::string::npos);
  EXPECT_NE(want_json.find("\"cause_found\": true"), std::string::npos);
}

}  // namespace
}  // namespace splice::obs
