// topology_stats / degree_sequence tests.
#include "graph/properties.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(Properties, EmptyGraph) {
  const TopologyStats s = topology_stats(Graph{});
  EXPECT_EQ(s.nodes, 0);
  EXPECT_EQ(s.edges, 0);
  EXPECT_FALSE(s.connected || s.nodes > 0);
}

TEST(Properties, SingleNode) {
  const TopologyStats s = topology_stats(Graph(1));
  EXPECT_EQ(s.nodes, 1);
  EXPECT_TRUE(s.connected);
  EXPECT_DOUBLE_EQ(s.diameter, 0.0);
  EXPECT_EQ(s.hop_diameter, 0);
}

TEST(Properties, WeightedLine) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const TopologyStats s = topology_stats(g);
  EXPECT_DOUBLE_EQ(s.diameter, 5.0);
  EXPECT_EQ(s.hop_diameter, 2);
  EXPECT_EQ(s.min_degree, 1);
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_NEAR(s.avg_degree, 4.0 / 3.0, 1e-12);
  EXPECT_EQ(s.edge_connectivity, 1);
  EXPECT_TRUE(s.connected);
}

TEST(Properties, DisconnectedDiameterInfinite) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const TopologyStats s = topology_stats(g);
  EXPECT_FALSE(s.connected);
  EXPECT_EQ(s.diameter, kInfiniteWeight);
  EXPECT_EQ(s.edge_connectivity, 0);
}

TEST(Properties, RingValues) {
  const TopologyStats s = topology_stats(ring(8));
  EXPECT_EQ(s.edge_connectivity, 2);
  EXPECT_EQ(s.hop_diameter, 4);
  EXPECT_DOUBLE_EQ(s.diameter, 4.0);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
}

TEST(Properties, CompleteGraphValues) {
  const TopologyStats s = topology_stats(complete(5));
  EXPECT_EQ(s.edge_connectivity, 4);
  EXPECT_EQ(s.hop_diameter, 1);
  EXPECT_DOUBLE_EQ(s.diameter, 1.0);
}

TEST(Properties, DegreeSequenceMatchesGraph) {
  const Graph g = topo::geant();
  const auto deg = degree_sequence(g);
  ASSERT_EQ(deg.size(), 23u);
  long long sum = 0;
  for (int d : deg) sum += d;
  EXPECT_EQ(sum, 2LL * g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(deg[static_cast<std::size_t>(v)], g.degree(v));
  }
}

TEST(Properties, SprintHopDiameterIsBackboneLike) {
  const TopologyStats s = topology_stats(topo::sprint());
  // Weighted shortest paths across 52 PoPs plus trans-oceanic legs: hop
  // diameter should be moderate (single digits to low teens).
  EXPECT_GE(s.hop_diameter, 5);
  EXPECT_LE(s.hop_diameter, 14);
  EXPECT_TRUE(s.connected);
}

}  // namespace
}  // namespace splice
