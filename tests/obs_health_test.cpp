// Route-health scorer + SLO burn-rate engine tests: the pure-integer score
// formula, snapshot bit-identity across writer thread counts (the
// determinism contract the telemetry stack carries), publish folding
// (churn bitmap + latency histograms), the multi-window alert rule (both
// windows must burn), and upward-transition-only recorder events.
#include "obs/health.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "util/rng.h"

namespace splice::obs {
namespace {

class ObsHealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RouteHealth::set_enabled(false);
    SloEngine::set_enabled(false);
    FlightRecorder::set_enabled(false);
    FlightRecorder::global().drain();
    FlightRecorder::global().reset();
  }
  void TearDown() override {
    RouteHealth::set_enabled(false);
    SloEngine::set_enabled(false);
    FlightRecorder::set_enabled(false);
    FlightRecorder::global().drain();
    FlightRecorder::global().reset();
    set_global_clock(nullptr);
  }
};

template <typename Fn>
void run_threaded(int items, int threads, Fn fn) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = t; i < items; i += threads) fn(i);
    });
  }
  for (auto& th : pool) th.join();
}

TEST_F(ObsHealthTest, ScoreIsThePublishedFormula) {
  // Healthy: no traffic, no anomalies reads 100.
  EXPECT_EQ(RouteHealth::score(0, 0, 0, 0), 100);
  EXPECT_EQ(RouteHealth::score(100, 100, 0, 0), 100);
  // Loss: floor(60 * lost / sent).
  EXPECT_EQ(RouteHealth::score(100, 50, 0, 0), 70);
  EXPECT_EQ(RouteHealth::score(100, 0, 0, 0), 40);
  EXPECT_EQ(RouteHealth::score(3, 2, 0, 0), 80);  // floor(60/3) = 20
  // Anomalies: 5 each, capped at 25.
  EXPECT_EQ(RouteHealth::score(10, 10, 1, 0), 95);
  EXPECT_EQ(RouteHealth::score(10, 10, 100, 0), 75);
  // Churn: 3 each, capped at 15.
  EXPECT_EQ(RouteHealth::score(10, 10, 0, 2), 94);
  EXPECT_EQ(RouteHealth::score(10, 10, 0, 100), 85);
  // Everything at once clamps at 0.
  EXPECT_EQ(RouteHealth::score(100, 0, 100, 100), 0);
}

TEST_F(ObsHealthTest, SnapshotSkipsIdleDestinations) {
  RouteHealth& health = RouteHealth::global();
  health.configure(64);
  health.record_outcome(0, 7, true);
  health.record_outcome(0, 11, false);
  const HealthSnapshot snap = health.snapshot_at(0);
  ASSERT_EQ(snap.dsts.size(), 2u);
  EXPECT_EQ(snap.dsts[0].dst, 7u);
  EXPECT_EQ(snap.dsts[0].score, 100);
  EXPECT_EQ(snap.dsts[1].dst, 11u);
  EXPECT_EQ(snap.dsts[1].score, 40);  // 1 sent, 0 delivered
}

TEST_F(ObsHealthTest, SnapshotJsonBitIdenticalAcrossThreadCounts) {
  // Same multiset of outcome/anomaly records, partitioned across 1, 2 and
  // 8 threads — the serialized snapshot must be byte-equal, scores and
  // sparkline buckets included.
  constexpr int kOps = 30000;
  constexpr std::uint32_t kDsts = 48;
  HealthConfig cfg;
  cfg.window.bucket_ns = 1000;
  cfg.window.buckets = 8;
  const std::uint64_t now = 7 * cfg.window.bucket_ns;

  struct Op {
    std::uint64_t t;
    std::uint32_t dst;
    std::uint8_t kind;  // 0 delivered, 1 lost, 2 anomaly
  };
  std::vector<Op> ops;
  Rng rng(0x4ea17);
  ops.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    ops.push_back({rng.below(now + 1),
                   static_cast<std::uint32_t>(rng.below(kDsts)),
                   static_cast<std::uint8_t>(rng.below(16) == 0  ? 2
                                             : rng.below(8) == 0 ? 1
                                                                 : 0)});
  }

  std::string reference;
  for (const int threads : {1, 2, 8}) {
    RouteHealth& health = RouteHealth::global();
    health.configure(kDsts, cfg);
    run_threaded(kOps, threads, [&](int i) {
      const Op& op = ops[static_cast<std::size_t>(i)];
      if (op.kind == 2) {
        health.record_anomaly(op.t, op.dst);
      } else {
        health.record_outcome(op.t, op.dst, op.kind == 0);
      }
    });
    const std::string body = health_json_body(health.snapshot_at(now));
    if (reference.empty()) {
      reference = body;
    } else {
      ASSERT_EQ(body, reference) << "threads=" << threads;
    }
  }
}

TEST_F(ObsHealthTest, PublishFoldsChurnBitmapAndLatency) {
  HealthConfig cfg;
  cfg.window.bucket_ns = 1000;
  cfg.window.buckets = 4;
  RouteHealth& health = RouteHealth::global();
  health.configure(8, cfg);

  const std::vector<char> touched = {0, 1, 1, 0, 0, 0, 0, 1};
  health.record_publish(0, 2'000'000, 500'000, touched);  // 2 ms, 0.5 ms
  health.record_publish(0, 3'000'000, 700'000, touched);

  const HealthSnapshot snap = health.snapshot_at(0);
  EXPECT_EQ(snap.publishes, 2u);
  EXPECT_EQ(snap.reconv_latency_us.total(), 2);
  EXPECT_EQ(snap.publish_work_us.total(), 2);
  ASSERT_EQ(snap.dsts.size(), 3u);  // dsts 1, 2, 7 — churn only
  for (const DstHealth& d : snap.dsts) {
    EXPECT_EQ(d.churn, 2u) << "dst " << d.dst;
    EXPECT_EQ(d.score, 94);  // 2 churn ticks: 100 - 3*2
  }
}

TEST_F(ObsHealthTest, SloPageRequiresBothWindows) {
  SloConfig cfg;
  cfg.slow.bucket_ns = 1000;
  cfg.slow.buckets = 8;
  cfg.fast_buckets = 2;
  SloEngine& slo = SloEngine::global();
  slo.configure(cfg);

  // Burn only in the OLD part of the slow window: slow burns, fast clean —
  // the problem is not current, no alert.
  slo.record_fwd(0, 1000, 500);
  const std::uint64_t now = 7 * cfg.slow.bucket_ns;
  slo.record_fwd(now, 1000, 0);
  SloSnapshot snap = slo.evaluate(now);
  ASSERT_EQ(snap.slos.size(), 2u);
  EXPECT_EQ(snap.slos[0].name, "fwd_success");
  EXPECT_GT(snap.slos[0].slow_burn, cfg.page_burn);
  EXPECT_EQ(snap.slos[0].fast_burn, 0.0);
  EXPECT_EQ(snap.slos[0].state, SloState::kOk);

  // Now burn the fast window too: both agree, page.
  slo.record_fwd(now, 1000, 500);
  snap = slo.evaluate(now);
  EXPECT_GE(snap.slos[0].fast_burn, cfg.page_burn);
  EXPECT_EQ(snap.slos[0].state, SloState::kPage);
}

TEST_F(ObsHealthTest, ReconvLatencySloCountsThresholdBreaches) {
  SloConfig cfg;
  cfg.slow.bucket_ns = 1000;
  cfg.slow.buckets = 4;
  cfg.fast_buckets = 2;
  cfg.reconv_threshold_ns = 1'000'000;
  SloEngine& slo = SloEngine::global();
  slo.configure(cfg);

  slo.record_publish(0, 500'000);    // under threshold
  slo.record_publish(0, 2'000'000);  // over
  const SloSnapshot snap = slo.peek(0);
  ASSERT_EQ(snap.slos.size(), 2u);
  EXPECT_EQ(snap.slos[1].name, "reconv_latency");
  EXPECT_EQ(snap.slos[1].slow_total, 2u);
  EXPECT_EQ(snap.slos[1].slow_errors, 1u);
}

#if SPLICE_OBS

TEST_F(ObsHealthTest, SloEmitsRecorderEventsOnUpwardTransitionsOnly) {
  SloConfig cfg;
  cfg.slow.bucket_ns = 1000;
  cfg.slow.buckets = 4;
  cfg.fast_buckets = 2;
  SloEngine& slo = SloEngine::global();
  slo.configure(cfg);
  FlightRecorder::set_enabled(true);

  // Sustained 100% loss: burn saturates both windows, state jumps straight
  // to page — exactly one kSloBurnPage event for SLO 0.
  slo.record_fwd(0, 1000, 1000);
  slo.evaluate(0);
  slo.evaluate(0);  // steady state: no second event
  slo.evaluate(0);

  const RecorderSnapshot rec = FlightRecorder::global().drain();
  int pages = 0, warns = 0;
  for (const RecorderEvent& ev : rec.events) {
    if (ev.type == static_cast<std::uint16_t>(EventType::kSloBurnPage)) {
      ++pages;
      EXPECT_EQ(ev.key, 0u);  // fwd_success
      EXPECT_GT(ev.a, 0u);    // fast burn (milli)
      EXPECT_GT(ev.b, 0u);    // slow burn (milli)
    }
    if (ev.type == static_cast<std::uint16_t>(EventType::kSloBurnWarn)) {
      ++warns;
    }
  }
  EXPECT_EQ(pages, 1);
  EXPECT_EQ(warns, 0);  // jumped over warn, never emitted it
}

TEST_F(ObsHealthTest, HealthForwardsBatchesToSloEngine) {
  // RouteHealth::record_fwd_batch is the single entry point the data plane
  // uses; with the SLO engine enabled it must feed both layers.
  HealthConfig hcfg;
  hcfg.window.bucket_ns = 1000;
  hcfg.window.buckets = 4;
  RouteHealth& health = RouteHealth::global();
  health.configure(4, hcfg);
  SloConfig scfg;
  scfg.slow.bucket_ns = 1000;
  scfg.slow.buckets = 4;
  scfg.fast_buckets = 2;
  SloEngine::global().configure(scfg);
  SloEngine::set_enabled(true);

  health.record_fwd_batch(0, 100, 25);
  const SloSnapshot snap = SloEngine::global().peek(0);
  EXPECT_EQ(snap.slos[0].slow_total, 100u);
  EXPECT_EQ(snap.slos[0].slow_errors, 25u);
}

#endif  // SPLICE_OBS

TEST_F(ObsHealthTest, SloSnapshotDeterministicAcrossThreadCounts) {
  constexpr int kOps = 20000;
  SloConfig cfg;
  cfg.slow.bucket_ns = 1000;
  cfg.slow.buckets = 8;
  cfg.fast_buckets = 3;
  const std::uint64_t now = 7 * cfg.slow.bucket_ns;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;  // (t, errors)
  Rng rng(0x510);
  ops.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    ops.emplace_back(rng.below(now + 1), rng.below(4));
  }

  std::string reference;
  for (const int threads : {1, 2, 8}) {
    SloEngine& slo = SloEngine::global();
    slo.configure(cfg);
    run_threaded(kOps, threads, [&](int i) {
      const auto& [t, errors] = ops[static_cast<std::size_t>(i)];
      slo.record_fwd(t, 10, errors);
    });
    const std::string body = slo_json_body(slo.peek(now));
    if (reference.empty()) {
      reference = body;
    } else {
      ASSERT_EQ(body, reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace splice::obs
