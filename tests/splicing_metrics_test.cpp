// Metrics tests: stretch, hop inflation, per-slice stretch census, oracle.
#include "splicing/metrics.h"

#include <gtest/gtest.h>

#include "routing/multi_instance.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(Oracle, MatchesKnownDistances) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(0, 3, 10.0);
  const ShortestPathOracle oracle(g);
  EXPECT_DOUBLE_EQ(oracle.distance(0, 3), 6.0);
  EXPECT_EQ(oracle.hops(0, 3), 3);
  EXPECT_DOUBLE_EQ(oracle.distance(3, 0), 6.0);
  EXPECT_DOUBLE_EQ(oracle.distance(2, 2), 0.0);
  EXPECT_EQ(oracle.hops(2, 2), 0);
}

TEST(Oracle, UnreachableIsInfinite) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const ShortestPathOracle oracle(g);
  EXPECT_EQ(oracle.distance(0, 2), kInfiniteWeight);
  EXPECT_EQ(oracle.hops(0, 2), -1);
}

TEST(Stretch, ShortestPathHasStretchOne) {
  const Splicer splicer(topo::geant(), SplicerConfig{});
  const ShortestPathOracle oracle(splicer.graph());
  const Delivery d = splicer.send(2, 17, splicer.make_pinned_header(0));
  ASSERT_TRUE(d.delivered());
  EXPECT_NEAR(trace_stretch(splicer.graph(), d, oracle.distance(2, 17)), 1.0,
              1e-9);
}

TEST(Stretch, DetourHasStretchAboveOne) {
  // Force the slice-1 path; if it differs from shortest, stretch > 1.
  SplicerConfig cfg;
  cfg.slices = 5;
  cfg.seed = 33;
  const Splicer splicer(topo::sprint(), cfg);
  const ShortestPathOracle oracle(splicer.graph());
  int checked = 0;
  for (NodeId src = 0; src < splicer.graph().node_count() && checked < 20;
       src += 3) {
    for (NodeId dst = 0; dst < splicer.graph().node_count() && checked < 20;
         dst += 7) {
      if (src == dst) continue;
      const Delivery d = splicer.send(src, dst, splicer.make_pinned_header(4));
      ASSERT_TRUE(d.delivered());
      const double st =
          trace_stretch(splicer.graph(), d, oracle.distance(src, dst));
      EXPECT_GE(st, 1.0 - 1e-9);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 20);
}

TEST(HopInflation, MatchesTraceLength) {
  const Splicer splicer(topo::geant(), SplicerConfig{});
  const ShortestPathOracle oracle(splicer.graph());
  const Delivery d = splicer.send(0, 9, splicer.make_pinned_header(0));
  ASSERT_TRUE(d.delivered());
  EXPECT_DOUBLE_EQ(trace_hop_inflation(d, oracle.hops(0, 9)), 1.0);
}

TEST(SliceStretches, UnperturbedSliceIsAllOnes) {
  const Graph g = topo::geant();
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{
             2, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false});
  const auto stretches = slice_stretches(g, mir.slice(0));
  EXPECT_EQ(stretches.size(), 23u * 22u);
  for (double s : stretches) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(SliceStretches, PerturbedSliceBoundedByOnePlusB) {
  const Graph g = topo::sprint();
  const double b = 3.0;
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{
             4, {PerturbationKind::kDegreeBased, 0.0, b}, 5, false});
  for (SliceId s = 1; s < 4; ++s) {
    for (double st : slice_stretches(g, mir.slice(s))) {
      EXPECT_GE(st, 1.0 - 1e-9);
      EXPECT_LE(st, 1.0 + b + 1e-9);
    }
  }
}

TEST(SliceStretches, PaperScaleCheck) {
  // §4.3: "In any particular slice, 99% of all paths in each tree have
  // stretch of less than 2.6" — on our Sprint reconstruction with the
  // paper's Weight(0,3) perturbation the same order must hold.
  const Graph g = topo::sprint();
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{
             5, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false});
  for (SliceId s = 0; s < 5; ++s) {
    const auto stretches = slice_stretches(g, mir.slice(s));
    std::vector<double> sorted(stretches);
    std::sort(sorted.begin(), sorted.end());
    const double p99 = sorted[static_cast<std::size_t>(
        0.99 * static_cast<double>(sorted.size()))];
    EXPECT_LT(p99, 3.2) << "slice " << s;  // generous band around 2.6
  }
}

}  // namespace
}  // namespace splice
