// Connectivity, components, disconnected-pair counting and union-find.
#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/union_find.h"
#include "util/rng.h"

namespace splice {
namespace {

TEST(Connectivity, SingleNodeIsConnected) {
  Graph g(1);
  EXPECT_TRUE(is_connected(g));
}

TEST(Connectivity, TwoIsolatedNodes) {
  Graph g(2);
  EXPECT_FALSE(is_connected(g));
  EXPECT_FALSE(connected(g, 0, 1));
  EXPECT_TRUE(connected(g, 0, 0));
}

TEST(Connectivity, PathGraph) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(connected(g, 0, 2));
}

TEST(Connectivity, MaskDisconnects) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const EdgeId bridge = g.add_edge(1, 2, 1.0);
  std::vector<char> alive(2, 1);
  alive[static_cast<std::size_t>(bridge)] = 0;
  EXPECT_FALSE(is_connected(g, alive));
  EXPECT_TRUE(connected(g, 0, 1, alive));
  EXPECT_FALSE(connected(g, 0, 2, alive));
}

TEST(Connectivity, ComponentsLabeling) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  std::vector<int> comp;
  EXPECT_EQ(connected_components(g, comp), 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
}

TEST(Connectivity, DisconnectedPairsFullyConnected) {
  const Graph g = complete(5);
  EXPECT_EQ(disconnected_ordered_pairs(g), 0);
  EXPECT_EQ(total_ordered_pairs(g), 20);
}

TEST(Connectivity, DisconnectedPairsTwoComponents) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  // Components of size 2 and 2: connected ordered pairs = 2 + 2 = 4;
  // total = 12; disconnected = 8.
  EXPECT_EQ(disconnected_ordered_pairs(g), 8);
}

TEST(Connectivity, DisconnectedPairsAllIsolated) {
  Graph g(3);
  EXPECT_EQ(disconnected_ordered_pairs(g), 6);
}

TEST(Connectivity, ReachableNodesRespectsMask) {
  const Graph g = ring(4);
  std::vector<char> alive(4, 1);
  alive[0] = 0;  // cut edge 0-1
  alive[3] = 0;  // cut edge 3-0
  const auto seen = reachable_nodes(g, 0, alive);
  EXPECT_TRUE(seen[0]);
  EXPECT_FALSE(seen[1]);
  EXPECT_FALSE(seen[2]);
  EXPECT_FALSE(seen[3]);
}

// Property sweep: disconnected_ordered_pairs agrees with a per-pair BFS
// count on random graphs with random masks.
class PairCountProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PairCountProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  const Graph g = erdos_renyi(12, 0.2, GetParam());
  std::vector<char> alive(static_cast<std::size_t>(g.edge_count()));
  for (auto& a : alive) a = rng.bernoulli(0.7) ? 1 : 0;

  long long brute = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto seen = reachable_nodes(g, s, alive);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s != t && !seen[static_cast<std::size_t>(t)]) ++brute;
    }
  }
  EXPECT_EQ(disconnected_ordered_pairs(g, alive), brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairCountProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(UnionFind, BasicUnite) {
  UnionFind uf(4);
  EXPECT_EQ(uf.components(), 4u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.components(), 3u);
}

TEST(UnionFind, ComponentSizes) {
  UnionFind uf(5);
  uf.unite(0, 1);
  uf.unite(1, 2);
  EXPECT_EQ(uf.component_size(0), 3u);
  EXPECT_EQ(uf.component_size(3), 1u);
}

TEST(UnionFind, TransitiveUnion) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_EQ(uf.components(), 3u);
}

TEST(UnionFind, AgreesWithComponents) {
  Rng rng(99);
  const Graph g = erdos_renyi(20, 0.1, 99);
  UnionFind uf(static_cast<std::size_t>(g.node_count()));
  for (const Edge& e : g.edges())
    uf.unite(static_cast<std::size_t>(e.u), static_cast<std::size_t>(e.v));
  std::vector<int> comp;
  const int n_comp = connected_components(g, comp);
  EXPECT_EQ(uf.components(), static_cast<std::size_t>(n_comp));
}

}  // namespace
}  // namespace splice
