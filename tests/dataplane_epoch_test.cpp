// Epoch-based RCU tests: the EpochDomain grace-period protocol (a publisher
// may never reclaim a snapshot while any reader still pins a pre-swap
// epoch), snapshot stability under a pinned reader, the multi-reader
// max-rate churn stress (the TSan leg's main target — every pin/unpin +
// swap + in-place patch of the retired table must be data-race-free), and
// the read-side zero-allocation gate: a warmed reader thread forwarding
// batches while the publisher actively swaps performs zero heap
// allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "dataplane/epoch.h"
#include "dataplane/fib_publisher.h"
#include "dataplane/network.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/resprof.h"
#include "routing/multi_instance.h"
#include "sim/batch_feed.h"
#include "sim/churn.h"
#include "topo/datasets.h"

namespace splice {
namespace {

ControlPlaneConfig make_cfg(SliceId k) {
  return ControlPlaneConfig{
      k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false};
}

std::uint64_t fib_bytes_checksum(const fwdk::FibView& view,
                                 std::size_t nodes) {
  // FNV-1a over the entry array (same layout both snapshots share).
  const auto* bytes = reinterpret_cast<const unsigned char*>(view.entries);
  const std::size_t len =
      static_cast<std::size_t>(view.k) * nodes * view.row_stride *
      sizeof(FibEntry);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// EpochDomain protocol.
// ---------------------------------------------------------------------------

TEST(EpochDomain, RegisterPinAdvanceBasics) {
  EpochDomain d;
  EXPECT_EQ(d.reader_count(), 0);
  EXPECT_EQ(d.current(), 1u);

  const auto slot = d.register_reader();
  EXPECT_EQ(d.reader_count(), 1);
  EXPECT_FALSE(d.pinned(slot));

  const std::uint64_t e = d.pin(slot);
  EXPECT_EQ(e, 1u);
  EXPECT_TRUE(d.pinned(slot));

  // A pinned reader on the current epoch never blocks grace for it.
  EXPECT_EQ(d.wait_for_grace(1), 0u);

  d.unpin(slot);
  EXPECT_FALSE(d.pinned(slot));
  EXPECT_EQ(d.advance(), 2u);
  EXPECT_EQ(d.current(), 2u);
  // Quiescent reader: grace is free.
  EXPECT_EQ(d.wait_for_grace(2), 0u);
  d.unregister_reader(slot);
  EXPECT_EQ(d.reader_count(), 0);
}

TEST(EpochDomain, GraceBlocksExactlyWhileOldEpochPinned) {
  EpochDomain d;
  const auto slot = d.register_reader();
  d.pin(slot);  // pins epoch 1

  std::atomic<bool> done{false};
  std::thread writer([&] {
    const std::uint64_t target = d.advance();  // 2
    d.wait_for_grace(target);
    done.store(true, std::memory_order_release);
  });

  // Protocol guarantee, not timing: the slot holds epoch 1 < 2, so the
  // grace wait cannot have completed no matter how the threads schedule.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load(std::memory_order_acquire));

  d.unpin(slot);
  writer.join();
  EXPECT_TRUE(done.load(std::memory_order_acquire));
  d.unregister_reader(slot);
}

TEST(EpochDomain, RepinningReaderNeverStallsGrace) {
  EpochDomain d;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    const auto slot = d.register_reader();
    while (!stop.load(std::memory_order_acquire)) {
      d.pin(slot);
      d.unpin(slot);
    }
    d.unregister_reader(slot);
  });
  // Many grace periods against a reader that keeps re-pinning: each wait
  // terminates because the slot is either quiescent or >= the target.
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t target = d.advance();
    d.wait_for_grace(target);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(d.current(), 201u);
}

TEST(EpochDomain, SlotsRecycleAfterUnregister) {
  EpochDomain d;
  std::vector<EpochDomain::ReaderSlot> slots;
  for (int i = 0; i < EpochDomain::kMaxReaders; ++i) {
    slots.push_back(d.register_reader());
  }
  EXPECT_EQ(d.reader_count(), EpochDomain::kMaxReaders);
  for (const auto s : slots) d.unregister_reader(s);
  EXPECT_EQ(d.reader_count(), 0);
  // The full population is claimable again.
  const auto again = d.register_reader();
  EXPECT_GE(again, 0);
  d.unregister_reader(again);
}

// ---------------------------------------------------------------------------
// Grace period through the publisher: no snapshot reclaimed while pinned.
// ---------------------------------------------------------------------------

TEST(FibPublisherGrace, PinnedSnapshotStaysBitStableAcrossAPublish) {
  const Graph g = topo::abilene();
  FibPublisher pub(g, make_cfg(3));
  const auto nodes = static_cast<std::size_t>(g.node_count());

  FibPublisher::Reader reader(pub);
  const DataPlaneNetwork& net = reader.pin();
  const std::uint64_t before = fib_bytes_checksum(net.fib_view(), nodes);

  std::atomic<bool> done{false};
  std::thread publisher([&] {
    pub.publish_link_down(0);
    done.store(true, std::memory_order_release);
  });
  // Wait until the swap + epoch advance happened; the publisher is now in
  // (or entering) the grace wait and cannot complete while we are pinned
  // on the pre-swap epoch.
  while (pub.epoch() < 2) std::this_thread::yield();
  EXPECT_FALSE(done.load(std::memory_order_acquire));

  // The pinned snapshot's table has not been touched by the publish.
  EXPECT_EQ(fib_bytes_checksum(net.fib_view(), nodes), before);

  reader.unpin();
  publisher.join();
  EXPECT_TRUE(done.load(std::memory_order_acquire));

  // A fresh pin adopts the post-swap snapshot.
  const DataPlaneNetwork& after = reader.pin();
  EXPECT_FALSE(after.link_alive(0));
  EXPECT_EQ(reader.adopted_version(), pub.published_version());
  reader.unpin();
}

// ---------------------------------------------------------------------------
// TSan stress: spinning readers vs a max-rate publisher.
// ---------------------------------------------------------------------------

TEST(FibPublisherStress, SpinningReadersUnderMaxRateChurn) {
  Graph g = erdos_renyi(20, 0.2, 9);
  make_connected(g, 10);
  FibPublisher pub(g, make_cfg(2));

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> batches{0};
  std::vector<std::thread> pool;
  pool.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    pool.emplace_back([&, r] {
      FibPublisher::Reader reader(pub);
      BatchFeedConfig feed;
      feed.header_k = 2;
      feed.packets_per_trial = 32;
      std::vector<char> mask;
      std::vector<Packet> packets;
      fill_trial_batch(g, feed, 0xc0de0000u + static_cast<std::uint64_t>(r),
                       0, mask, packets);
      std::vector<ForwardSummary> out(packets.size());
      ForwardWorkspace ws;
      const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                    LocalRecovery::kDeflect};
      while (!stop.load(std::memory_order_acquire)) {
        const DataPlaneNetwork& net = reader.pin();
        net.forward_stats_batch(packets, policy, out, ws);
        reader.unpin();
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Wait until the pool has served a few batches before churning: on a
  // single-core box the replay below can otherwise drain before any reader
  // thread is scheduled, and the point of this test is publishes racing
  // against genuinely pinned readers.
  while (batches.load(std::memory_order_relaxed) <
         static_cast<std::uint64_t>(kReaders)) {
    std::this_thread::yield();
  }

  // Max-rate replay: drain the whole trace back to back, no pacing.
  ChurnConfig cfg;
  cfg.incidents = 60;
  cfg.seed = 21;
  const auto trace = generate_churn_trace(g, cfg);
  ASSERT_FALSE(trace.empty());
  for (const LinkEvent& ev : trace) {
    const PublishStats st = apply_churn_event(pub, ev);
    EXPECT_EQ(st.epoch, pub.epoch());
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  EXPECT_GT(batches.load(std::memory_order_relaxed), 0u);

  // Every event advanced exactly one epoch and one version.
  EXPECT_EQ(pub.epoch(), 1u + trace.size());
  EXPECT_EQ(pub.published_version(), 1u + trace.size());

  // A post-churn pin observes the final version.
  FibPublisher::Reader reader(pub);
  (void)reader.pin();
  EXPECT_EQ(reader.adopted_version(), pub.published_version());
  reader.unpin();
}

// ---------------------------------------------------------------------------
// Read-side zero-allocation gate.
// ---------------------------------------------------------------------------

TEST(FibPublisherReadSide, WarmedReaderAllocatesNothingWhilePublisherSwaps) {
  if (!obs::alloc_hooks_compiled()) {
    GTEST_SKIP() << "alloc hooks not compiled (sanitizer or SPLICE_OBS=OFF)";
  }
  // The flight recorder must stay disabled here: a thread's first recorder
  // event (e.g. Reader::pin's kEpochAdopt) registers its ring, which
  // allocates. The zero-alloc contract is for the production read path.
  const Graph g = topo::abilene();
  FibPublisher pub(g, make_cfg(3));

  obs::ResourceProfiler::set_enabled(true);
  std::atomic<bool> warm{false};
  std::atomic<bool> stop{false};
  std::atomic<long long> reader_allocs{-1};
  std::thread reader_thread([&] {
    FibPublisher::Reader reader(pub);
    BatchFeedConfig feed;
    feed.header_k = 3;
    feed.packets_per_trial = 64;
    std::vector<char> mask;
    std::vector<Packet> packets;
    fill_trial_batch(g, feed, 0xa110c, 0, mask, packets);
    std::vector<ForwardSummary> out(packets.size());
    ForwardWorkspace ws;
    const ForwardingPolicy policy{ExhaustPolicy::kHashDefault,
                                  LocalRecovery::kDeflect};
    // Warm: grow the workspace lanes to the batch size.
    for (int i = 0; i < 8; ++i) {
      const DataPlaneNetwork& net = reader.pin();
      net.forward_stats_batch(packets, policy, out, ws);
      reader.unpin();
    }
    obs::ResourceScope scope;
    warm.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      const DataPlaneNetwork& net = reader.pin();
      net.forward_stats_batch(packets, policy, out, ws);
      reader.unpin();
    }
    const obs::ResourceDelta d = scope.finish();
    reader_allocs.store(d.allocs, std::memory_order_release);
  });
  while (!warm.load(std::memory_order_acquire)) std::this_thread::yield();

  // Publisher actively swapping the whole time the scope is open.
  ChurnConfig cfg;
  cfg.incidents = 40;
  cfg.seed = 5;
  const auto trace = generate_churn_trace(g, cfg);
  for (const LinkEvent& ev : trace) apply_churn_event(pub, ev);

  stop.store(true, std::memory_order_release);
  reader_thread.join();
  obs::ResourceProfiler::set_enabled(false);

  EXPECT_EQ(reader_allocs.load(std::memory_order_acquire), 0);
}

}  // namespace
}  // namespace splice
