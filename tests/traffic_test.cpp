// Traffic-engineering module tests: demand matrices, load accounting,
// imbalance metrics, and the §5 failure-shift experiment.
#include <gtest/gtest.h>

#include "topo/datasets.h"
#include "traffic/demand.h"
#include "traffic/load.h"

namespace splice {
namespace {

TEST(TrafficMatrix, SetAddGet) {
  TrafficMatrix tm(3);
  EXPECT_DOUBLE_EQ(tm.demand(0, 1), 0.0);
  tm.set_demand(0, 1, 2.0);
  tm.add_demand(0, 1, 1.5);
  EXPECT_DOUBLE_EQ(tm.demand(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(tm.total(), 3.5);
}

TEST(TrafficMatrix, NormalizeTotal) {
  TrafficMatrix tm(2);
  tm.set_demand(0, 1, 4.0);
  tm.set_demand(1, 0, 6.0);
  tm.normalize_total(5.0);
  EXPECT_DOUBLE_EQ(tm.total(), 5.0);
  EXPECT_DOUBLE_EQ(tm.demand(0, 1), 2.0);
}

TEST(TrafficMatrix, NormalizeEmptyIsNoop) {
  TrafficMatrix tm(2);
  tm.normalize_total(5.0);
  EXPECT_DOUBLE_EQ(tm.total(), 0.0);
}

TEST(Demands, UniformIsOnePerPair) {
  const Graph g = topo::geant();
  const TrafficMatrix tm = uniform_demands(g);
  EXPECT_DOUBLE_EQ(tm.total(), 23.0 * 22.0);
  EXPECT_DOUBLE_EQ(tm.demand(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(tm.demand(0, 1), 1.0);
}

TEST(Demands, GravityWeightsByDegree) {
  const Graph g = topo::sprint();
  const TrafficMatrix tm = gravity_demands(g);
  // Same normalized total as uniform.
  EXPECT_NEAR(tm.total(), 52.0 * 51.0, 1e-6);
  // Chicago (hub) attracts more than Milwaukee (stub).
  const NodeId chi = g.find_node("Chicago");
  const NodeId mke = g.find_node("Milwaukee");
  const NodeId sea = g.find_node("Seattle");
  EXPECT_GT(tm.demand(sea, chi), tm.demand(sea, mke));
}

TEST(Demands, HotspotConcentratesOnChosen) {
  const Graph g = topo::geant();
  const TrafficMatrix tm = hotspot_demands(g, 2, 10.0, 5);
  EXPECT_NEAR(tm.total(), 23.0 * 22.0, 1e-6);
  // Column sums: exactly two destinations should dominate.
  std::vector<double> col(static_cast<std::size_t>(g.node_count()), 0.0);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      col[static_cast<std::size_t>(t)] += tm.demand(s, t);
    }
  }
  std::sort(col.begin(), col.end());
  EXPECT_GT(col[col.size() - 2], 3.0 * col.front());
}

struct LoadFixture {
  LoadFixture() : splicer(topo::geant(), SplicerConfig{.slices = 4, .seed = 3}) {}
  Splicer splicer;
  Rng rng{7};
};

TEST(RouteDemands, ConservesDeliveredDemandPerHop) {
  LoadFixture f;
  const TrafficMatrix tm = uniform_demands(f.splicer.graph());
  const LinkLoads loads =
      route_demands(f.splicer, tm, SliceSelection::kPinnedShortest, f.rng);
  EXPECT_DOUBLE_EQ(loads.undelivered, 0.0);
  // Total link-load = sum over pairs of demand * hops; all demands are 1 so
  // it must equal the total hop count of all shortest paths >= #pairs.
  double total = 0.0;
  for (double l : loads.load) total += l;
  EXPECT_GE(total, tm.total());
}

TEST(RouteDemands, PinnedShortestMatchesSliceZeroPaths) {
  LoadFixture f;
  const Graph& g = f.splicer.graph();
  TrafficMatrix tm(g.node_count());
  tm.set_demand(2, 9, 5.0);
  const LinkLoads loads =
      route_demands(f.splicer, tm, SliceSelection::kPinnedShortest, f.rng);
  const auto path = f.splicer.control_plane().slice(0).path(2, 9);
  double expected_links = static_cast<double>(path.size() - 1);
  double loaded_links = 0.0;
  for (double l : loads.load) {
    if (l > 0.0) {
      EXPECT_DOUBLE_EQ(l, 5.0);
      ++loaded_links;
    }
  }
  EXPECT_DOUBLE_EQ(loaded_links, expected_links);
}

TEST(RouteDemands, UndeliveredAccountsForDeadEnds) {
  LoadFixture f;
  const Graph& g = f.splicer.graph();
  // Isolate node 3 by failing all its links.
  for (const Incidence& inc : g.neighbors(3)) {
    f.splicer.network().set_link_state(inc.edge, false);
  }
  TrafficMatrix tm(g.node_count());
  tm.set_demand(0, 3, 2.0);
  tm.set_demand(5, 7, 1.0);
  const LinkLoads loads =
      route_demands(f.splicer, tm, SliceSelection::kPinnedShortest, f.rng);
  EXPECT_DOUBLE_EQ(loads.undelivered, 2.0);
}

TEST(RouteDemands, SplicingSpreadsLoad) {
  LoadFixture f;
  const TrafficMatrix tm = uniform_demands(f.splicer.graph());
  const LinkLoads pinned =
      route_demands(f.splicer, tm, SliceSelection::kPinnedShortest, f.rng);
  const LinkLoads random =
      route_demands(f.splicer, tm, SliceSelection::kRandomHeaders, f.rng);
  // Random headers should not be more imbalanced than single-path by much;
  // typically they're better.
  EXPECT_LT(random.imbalance(), pinned.imbalance() * 1.3);
}

TEST(LinkLoads, ImbalanceDefinitions) {
  LinkLoads l;
  EXPECT_DOUBLE_EQ(l.imbalance(), 0.0);
  l.load = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(l.imbalance(), 1.0);
  l.load = {0.0, 0.0, 6.0};
  EXPECT_DOUBLE_EQ(l.imbalance(), 3.0);
  EXPECT_DOUBLE_EQ(l.max_load(), 6.0);
}

TEST(FailureShift, DisplacedDemandIsAccounted) {
  LoadFixture f;
  const Graph& g = f.splicer.graph();
  const TrafficMatrix tm = uniform_demands(g);
  // Pick a link on many shortest paths: the heaviest under pinned routing.
  const LinkLoads pinned =
      route_demands(f.splicer, tm, SliceSelection::kPinnedShortest, f.rng);
  EdgeId hot = 0;
  for (EdgeId e = 1; e < g.edge_count(); ++e) {
    if (pinned.load[static_cast<std::size_t>(e)] >
        pinned.load[static_cast<std::size_t>(hot)])
      hot = e;
  }
  const FailureShift shift = measure_failure_shift(
      f.splicer, tm, SliceSelection::kPinnedShortest, hot, f.rng);
  EXPECT_EQ(shift.failed_edge, hot);
  EXPECT_DOUBLE_EQ(shift.displaced_demand,
                   pinned.load[static_cast<std::size_t>(hot)]);
  EXPECT_GE(shift.lost_fraction, 0.0);
  EXPECT_LE(shift.lost_fraction, 1.0);
  // Herfindahl index is in (0, 1]; with many links absorbing the shift it
  // should be well below 1 (dispersion, §5's claim).
  EXPECT_GT(shift.concentration, 0.0);
  EXPECT_LE(shift.concentration, 1.0);
  EXPECT_LT(shift.concentration, 0.5);
  // Network state restored.
  EXPECT_TRUE(f.splicer.network().link_alive(hot));
}

TEST(FailureShift, NoTrafficNoShift) {
  LoadFixture f;
  TrafficMatrix tm(f.splicer.graph().node_count());
  const FailureShift shift = measure_failure_shift(
      f.splicer, tm, SliceSelection::kPinnedShortest, 0, f.rng);
  EXPECT_DOUBLE_EQ(shift.displaced_demand, 0.0);
  EXPECT_DOUBLE_EQ(shift.lost_fraction, 0.0);
}

}  // namespace
}  // namespace splice
