// MTR deployment rendering tests: extraction, MT-ID policy, round-trip,
// error handling.
#include "routing/mtr_config.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "topo/datasets.h"

namespace splice {
namespace {

MultiInstanceRouting make_mir(const Graph& g, SliceId k,
                              bool perturb_first = false) {
  ControlPlaneConfig cfg;
  cfg.slices = k;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  cfg.seed = 42;
  cfg.perturb_first_slice = perturb_first;
  return MultiInstanceRouting(g, cfg);
}

TEST(MtrConfig, ExtractionCoversEverySliceAndEdge) {
  const Graph g = topo::geant();
  const auto mir = make_mir(g, 4);
  const MtrDeployment d = extract_mtr_deployment(g, mir);
  ASSERT_EQ(d.topologies.size(), 4u);
  for (const MtrTopology& t : d.topologies) {
    EXPECT_EQ(t.cost.size(), static_cast<std::size_t>(g.edge_count()));
    for (double c : t.cost) EXPECT_GT(c, 0.0);
  }
}

TEST(MtrConfig, DefaultTopologyGetsMtIdZero) {
  const Graph g = topo::geant();
  const auto mir = make_mir(g, 3);
  const MtrDeployment d = extract_mtr_deployment(g, mir);
  EXPECT_EQ(d.topologies[0].mt_id, 0);       // unperturbed slice 0
  EXPECT_EQ(d.topologies[1].mt_id, kMtrBaseId + 1);
  EXPECT_EQ(d.topologies[2].mt_id, kMtrBaseId + 2);
}

TEST(MtrConfig, PerturbedFirstSliceGetsGeneratedId) {
  const Graph g = topo::geant();
  const auto mir = make_mir(g, 2, /*perturb_first=*/true);
  const MtrDeployment d = extract_mtr_deployment(g, mir);
  EXPECT_EQ(d.topologies[0].mt_id, kMtrBaseId);
}

TEST(MtrConfig, CostsMatchSliceWeights) {
  const Graph g = topo::sprint();
  const auto mir = make_mir(g, 3);
  const MtrDeployment d = extract_mtr_deployment(g, mir);
  for (SliceId s = 0; s < 3; ++s) {
    const auto w = mir.slice(s).weights();
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_DOUBLE_EQ(
          d.topologies[static_cast<std::size_t>(s)].cost[static_cast<std::size_t>(e)],
          w[static_cast<std::size_t>(e)]);
    }
  }
}

TEST(MtrConfig, RenderParsesBack) {
  const Graph g = topo::geant();
  const auto mir = make_mir(g, 5);
  const MtrDeployment d = extract_mtr_deployment(g, mir, "geant-prod");
  const std::string text = render_mtr_config(g, d);
  const MtrDeployment back = parse_mtr_config(g, text);
  EXPECT_TRUE(deployments_equivalent(d, back));
  EXPECT_EQ(back.router_domain, "geant-prod");
}

TEST(MtrConfig, RenderedTextHasExpectedStructure) {
  const Graph g = topo::abilene();
  const auto mir = make_mir(g, 2);
  const std::string text =
      render_mtr_config(g, extract_mtr_deployment(g, mir));
  EXPECT_NE(text.find("router-domain splice"), std::string::npos);
  EXPECT_NE(text.find("topology slice-0 mt-id 0"), std::string::npos);
  EXPECT_NE(text.find("topology slice-1 mt-id 33"), std::string::npos);
  EXPECT_NE(text.find("interface Seattle--Sunnyvale cost"),
            std::string::npos);
}

TEST(MtrConfig, ParseRejectsUnknownInterface) {
  const Graph g = topo::abilene();
  const std::string text =
      "router-domain x\n"
      "topology slice-0 mt-id 0\n"
      " interface Nowhere--Atlantis cost 3\n";
  EXPECT_THROW(parse_mtr_config(g, text), std::invalid_argument);
}

TEST(MtrConfig, ParseRejectsBadDirectives) {
  const Graph g = topo::abilene();
  EXPECT_THROW(parse_mtr_config(g, "frobnicate everything\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_mtr_config(g, "topology nonsense\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_mtr_config(g, " interface Seattle--Sunnyvale cost 3\n"),
      std::invalid_argument);
  EXPECT_THROW(parse_mtr_config(
                   g,
                   "topology slice-0 mt-id 0\n"
                   " interface Seattle--Sunnyvale cost -1\n"),
               std::invalid_argument);
}

TEST(MtrConfig, ParseRejectsIncompleteTopology) {
  const Graph g = topo::abilene();
  // Declares a topology but covers only one of 14 interfaces.
  const std::string text =
      "topology slice-0 mt-id 0\n"
      " interface Seattle--Sunnyvale cost 3\n";
  EXPECT_THROW(parse_mtr_config(g, text), std::invalid_argument);
}

TEST(MtrConfig, EquivalenceDetectsDifferences) {
  const Graph g = topo::abilene();
  const auto mir = make_mir(g, 2);
  MtrDeployment a = extract_mtr_deployment(g, mir);
  MtrDeployment b = a;
  EXPECT_TRUE(deployments_equivalent(a, b));
  b.topologies[1].cost[3] += 0.5;
  EXPECT_FALSE(deployments_equivalent(a, b));
  b = a;
  b.router_domain = "other";
  EXPECT_FALSE(deployments_equivalent(a, b));
  b = a;
  b.topologies.pop_back();
  EXPECT_FALSE(deployments_equivalent(a, b));
}

TEST(MtrConfig, CommentsAreIgnored) {
  const Graph g = topo::abilene();
  const auto mir = make_mir(g, 2);
  std::string text = render_mtr_config(g, extract_mtr_deployment(g, mir));
  text = "! a leading comment\n" + text + "! trailing\n";
  EXPECT_NO_THROW(parse_mtr_config(g, text));
}

}  // namespace
}  // namespace splice
