// Embedded dataset invariants: the sizes the paper quotes, connectivity,
// weight sanity, registry behavior.
#include "topo/datasets.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/connectivity.h"
#include "graph/mincut.h"
#include "graph/properties.h"

namespace splice {
namespace {

TEST(Datasets, GeantMatchesPaperSize) {
  const Graph g = topo::geant();
  EXPECT_EQ(g.node_count(), 23);  // "23 nodes and 37 links" (§4.1)
  EXPECT_EQ(g.edge_count(), 37);
}

TEST(Datasets, SprintMatchesPaperSize) {
  const Graph g = topo::sprint();
  EXPECT_EQ(g.node_count(), 52);  // "52 nodes and 84 links" (§4.1)
  EXPECT_EQ(g.edge_count(), 84);
}

TEST(Datasets, AbileneSize) {
  const Graph g = topo::abilene();
  EXPECT_EQ(g.node_count(), 11);
  EXPECT_EQ(g.edge_count(), 14);
}

TEST(Datasets, ExodusSize) {
  const Graph g = topo::exodus();
  EXPECT_EQ(g.node_count(), 22);
  EXPECT_EQ(g.edge_count(), 37);
}

TEST(Datasets, AbovenetSize) {
  const Graph g = topo::abovenet();
  EXPECT_EQ(g.node_count(), 22);
  EXPECT_EQ(g.edge_count(), 42);
}

TEST(Datasets, AbovenetDenserThanExodus) {
  // Rocketfuel found MFN's backbone noticeably denser than Exodus's; the
  // reconstructions preserve that ordering.
  const Graph ex = topo::exodus();
  const Graph ab = topo::abovenet();
  const double ex_deg = 2.0 * ex.edge_count() / ex.node_count();
  const double ab_deg = 2.0 * ab.edge_count() / ab.node_count();
  EXPECT_GT(ab_deg, ex_deg);
}

TEST(Datasets, AllConnected) {
  for (const auto& name : topo::registry_names()) {
    EXPECT_TRUE(is_connected(topo::by_name(name))) << name;
  }
}

TEST(Datasets, AllWeightsPositive) {
  for (const auto& name : topo::registry_names()) {
    const Graph g = topo::by_name(name);
    for (const Edge& e : g.edges()) {
      EXPECT_GT(e.weight, 0.0) << name;
      EXPECT_LT(e.weight, 500.0) << name;  // sanity: ~<50,000 km
    }
  }
}

TEST(Datasets, AllNodesNamed) {
  for (const auto& name : topo::registry_names()) {
    const Graph g = topo::by_name(name);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_FALSE(g.name(v).empty()) << name << " node " << v;
    }
  }
}

TEST(Datasets, NoDuplicateLinks) {
  for (const auto& name : topo::registry_names()) {
    const Graph g = topo::by_name(name);
    for (EdgeId e1 = 0; e1 < g.edge_count(); ++e1) {
      for (EdgeId e2 = e1 + 1; e2 < g.edge_count(); ++e2) {
        const bool same =
            (g.edge(e1).u == g.edge(e2).u && g.edge(e1).v == g.edge(e2).v) ||
            (g.edge(e1).u == g.edge(e2).v && g.edge(e1).v == g.edge(e2).u);
        EXPECT_FALSE(same) << name << ": duplicate link " << e1 << "," << e2;
      }
    }
  }
}

TEST(Datasets, SprintDegreeStructureIsBackboneLike) {
  const TopologyStats s = topology_stats(topo::sprint());
  // 2 * 84 / 52 ≈ 3.2 average degree, hubs well above that.
  EXPECT_NEAR(s.avg_degree, 2.0 * 84 / 52, 1e-9);
  EXPECT_GE(s.max_degree, 8);
  EXPECT_GE(s.min_degree, 1);
}

TEST(Datasets, GeantLatencyWeightsLookEuropean) {
  const Graph g = topo::geant();
  // Intra-European link weights derived from distance should be modest;
  // the transatlantic links (to US-NewYork) must be the heaviest.
  const NodeId ny = g.find_node("US-NewYork");
  ASSERT_NE(ny, kInvalidNode);
  double max_weight = 0.0;
  EdgeId max_edge = kInvalidEdge;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).weight > max_weight) {
      max_weight = g.edge(e).weight;
      max_edge = e;
    }
  }
  ASSERT_NE(max_edge, kInvalidEdge);
  EXPECT_TRUE(g.edge(max_edge).u == ny || g.edge(max_edge).v == ny);
}

TEST(Datasets, SprintSurvivesSingleLinkFailureAtCore) {
  // The reconstruction's 2-edge-connected core: removing any single link
  // leaves at most the degree-1 stubs disconnected.
  const Graph g = topo::sprint();
  int stubs = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) stubs += g.degree(v) == 1;
  std::vector<char> alive(static_cast<std::size_t>(g.edge_count()), 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    alive[static_cast<std::size_t>(e)] = 0;
    std::vector<int> comp;
    const int pieces = connected_components(g, comp, alive);
    EXPECT_LE(pieces, 2) << "link " << e;
    alive[static_cast<std::size_t>(e)] = 1;
  }
  EXPECT_LE(stubs, 2);
}

TEST(Datasets, RegistryRoundTrip) {
  const auto names = topo::registry_names();
  EXPECT_EQ(names.size(), 6u);
  for (const auto& name : names) {
    EXPECT_GT(topo::by_name(name).node_count(), 0) << name;
  }
}

TEST(Datasets, RegistryRejectsUnknown) {
  EXPECT_THROW(topo::by_name("arpanet"), std::out_of_range);
}

TEST(Datasets, Figure1HasTwoDisjointPaths) {
  const Graph g = topo::figure1();
  EXPECT_EQ(g.node_count(), 6);
  EXPECT_EQ(g.edge_count(), 6);
  EXPECT_EQ(edge_connectivity(g), 2);
}

}  // namespace
}  // namespace splice
