// Parallel trial-runner tests: correctness, determinism, equivalence with
// the sequential path, and the threaded reliability experiment.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "sim/experiments.h"
#include "topo/datasets.h"
#include "util/stats.h"

namespace splice {
namespace {

TEST(ParallelTrials, CoversEveryTrialExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(100);
    struct Nothing {};
    parallel_trials<Nothing>(
        100, threads,
        [&](int t, Nothing&) { hits[static_cast<std::size_t>(t)]++; },
        [](Nothing&, const Nothing&) {});
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << threads;
  }
}

TEST(ParallelTrials, SumMatchesSequential) {
  auto run = [](int threads) {
    struct Acc {
      long long sum = 0;
    };
    const Acc acc = parallel_trials<Acc>(
        1000, threads, [](int t, Acc& a) { a.sum += t * t; },
        [](Acc& into, const Acc& from) { into.sum += from.sum; });
    return acc.sum;
  };
  const long long expect = run(1);
  for (int threads : {2, 3, 8}) EXPECT_EQ(run(threads), expect);
}

TEST(ParallelTrials, ZeroTrials) {
  struct Acc {
    int calls = 0;
  };
  const Acc acc = parallel_trials<Acc>(
      0, 4, [](int, Acc& a) { ++a.calls; },
      [](Acc& into, const Acc& from) { into.calls += from.calls; });
  EXPECT_EQ(acc.calls, 0);
}

TEST(ParallelTrials, MoreThreadsThanTrials) {
  struct Acc {
    int calls = 0;
  };
  const Acc acc = parallel_trials<Acc>(
      3, 16, [](int, Acc& a) { ++a.calls; },
      [](Acc& into, const Acc& from) { into.calls += from.calls; });
  EXPECT_EQ(acc.calls, 3);
}

TEST(ParallelTrials, OnlineStatsMergeAcrossWorkers) {
  struct Acc {
    OnlineStats stats;
  };
  auto run = [](int threads) {
    return parallel_trials<Acc>(
               500, threads,
               [](int t, Acc& a) { a.stats.add(static_cast<double>(t)); },
               [](Acc& into, const Acc& from) {
                 into.stats.merge(from.stats);
               })
        .stats;
  };
  const OnlineStats seq = run(1);
  const OnlineStats par = run(4);
  EXPECT_EQ(par.count(), seq.count());
  EXPECT_NEAR(par.mean(), seq.mean(), 1e-9);
  EXPECT_NEAR(par.variance(), seq.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(par.min(), seq.min());
  EXPECT_DOUBLE_EQ(par.max(), seq.max());
}

TEST(DefaultThreadCount, AtLeastOne) {
  EXPECT_GE(default_thread_count(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7, 64}) {
    std::vector<std::atomic<int>> hits(200);
    parallel_for(200, threads,
                 [&](int, int i) { hits[static_cast<std::size_t>(i)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << threads;
  }
}

TEST(ParallelFor, DisjointSlotWritesMatchSequential) {
  // The determinism contract: iteration i writes only slot i, so results
  // are identical for every thread count.
  auto run = [](int threads) {
    std::vector<long long> out(500);
    parallel_for(500, threads, [&](int, int i) {
      out[static_cast<std::size_t>(i)] = static_cast<long long>(i) * i + 7;
    });
    return out;
  };
  const auto expect = run(1);
  for (int threads : {2, 3, 8}) EXPECT_EQ(run(threads), expect);
}

TEST(ParallelFor, ZeroCount) {
  std::atomic<int> calls{0};
  parallel_for(0, 4, [&](int, int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, WorkerIndexInBounds) {
  // Workers are capped at min(threads, count); worker ids index per-worker
  // scratch (e.g. DijkstraWorkspace pools), so they must stay in range.
  constexpr int kThreads = 5;
  constexpr int kCount = 3;
  std::vector<std::atomic<int>> used(kCount);
  parallel_for(kCount, kThreads, [&](int worker, int) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, kCount);  // capped by count, not threads
    used[static_cast<std::size_t>(worker)]++;
  });
  int total = 0;
  for (auto& u : used) total += u.load();
  EXPECT_EQ(total, kCount);
}

TEST(ThreadedReliability, MatchesSequentialMeans) {
  // Per-trial randomness depends only on (seed, p, trial), so the threaded
  // run must produce exactly the same set of per-trial samples — identical
  // means up to floating-point merge order.
  ReliabilityConfig seq;
  seq.k_values = {1, 3};
  seq.p_values = {0.05};
  seq.trials = 60;
  seq.threads = 1;
  ReliabilityConfig par = seq;
  par.threads = 4;
  const auto a = run_reliability_experiment(topo::geant(), seq);
  const auto b = run_reliability_experiment(topo::geant(), par);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_NEAR(a.points[i].mean_disconnected, b.points[i].mean_disconnected,
                1e-12);
  }
  EXPECT_NEAR(a.best_possible[0].mean_disconnected,
              b.best_possible[0].mean_disconnected, 1e-12);
}

}  // namespace
}  // namespace splice
