// In-process telemetry agent tests (obs/agent.h): --telemetry spec
// parsing, the document builder's byte-identity with the legacy snapshot
// path, the agent lifecycle against a real segment, the scrape endpoint's
// exposition (linted with the same rules obs_export_test enforces), and
// the steady-state zero-allocation contract on the publish path
// (resprof-enforced).
#include "obs/agent.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/clock.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/linkstats.h"
#include "obs/metrics.h"
#include "obs/resprof.h"
#include "obs/shm_segment.h"
#include "obs/slo.h"
#include "util/json.h"

namespace splice::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class ObsAgentTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm(); }
  void TearDown() override {
    if (TelemetryAgent::global().running()) TelemetryAgent::global().stop();
    disarm();
    set_global_clock(nullptr);
  }

  static void disarm() {
    RouteHealth::set_enabled(false);
    SloEngine::set_enabled(false);
    LinkStats::set_enabled(false);
    MetricsRegistry::set_enabled(false);
    MetricsRegistry::global().reset();
    ResourceProfiler::set_enabled(false);
  }

  /// Arms health + SLO with a little deterministic traffic under a manual
  /// clock reading of `now_ns`, so documents have non-trivial content.
  void arm_health(std::uint64_t now_ns) {
    RouteHealth::global().configure(8);
    RouteHealth::set_enabled(true);
    SloEngine::global().configure();
    SloEngine::set_enabled(true);
    for (std::uint32_t d = 0; d < 8; ++d) {
      RouteHealth::global().record_outcome(now_ns, d, d % 3 != 0);
    }
    RouteHealth::global().record_fwd_batch(now_ns, 64, 5);
  }
};

TEST_F(ObsAgentTest, ParseTelemetrySpec) {
  TelemetryConfig cfg;
  std::string error;
  EXPECT_TRUE(parse_telemetry_spec("shm:/tmp/x.tel", cfg, &error)) << error;
  EXPECT_EQ(cfg.shm_path, "/tmp/x.tel");
  EXPECT_FALSE(cfg.tcp);

  cfg = {};
  EXPECT_TRUE(parse_telemetry_spec("tcp:0", cfg, &error)) << error;
  EXPECT_TRUE(cfg.tcp);
  EXPECT_EQ(cfg.tcp_port, 0);
  EXPECT_TRUE(cfg.shm_path.empty());

  cfg = {};
  EXPECT_TRUE(parse_telemetry_spec("shm:/a/b.tel,tcp:9123", cfg, &error));
  EXPECT_EQ(cfg.shm_path, "/a/b.tel");
  EXPECT_TRUE(cfg.tcp);
  EXPECT_EQ(cfg.tcp_port, 9123);

  for (const char* bad :
       {"", "shm:", "tcp:", "tcp:abc", "tcp:70000", "tcp:-1", "file:/x",
        ","}) {
    cfg = {};
    EXPECT_FALSE(parse_telemetry_spec(bad, cfg, &error)) << bad;
  }
}

TEST_F(ObsAgentTest, DocumentMatchesLegacySnapshotPathByteForByte) {
  ManualClock clock;
  clock.set_ns(5'000'000'000ULL);
  set_global_clock(&clock);
  arm_health(clock.now_ns());

  // With the registry off, the agent's document must be byte-identical to
  // health_snapshot_document() over the legacy allocating snapshot calls —
  // the contract that lets splice_top decode segment reads and snapshot
  // files with the same code.
  const std::uint64_t now = clock.now_ns();
  TelemetryWorkspace ws;
  build_telemetry_document(ws, now);
  const std::string legacy = health_snapshot_document(
      RouteHealth::global().snapshot_at(now), SloEngine::global().peek(now));
  EXPECT_EQ(ws.doc, legacy);

  // And it is a deterministic function of (state, now): rebuilding into a
  // warm workspace changes nothing.
  const std::string first = ws.doc;
  build_telemetry_document(ws, now);
  EXPECT_EQ(ws.doc, first);

  // With the registry on, the document grows a spliceMetrics section and
  // still parses.
  MetricsRegistry::set_enabled(true);
  MetricsRegistry::global().counter("agent_test_events").add(3);
  build_telemetry_document(ws, now);
  EXPECT_NE(ws.doc.find("\"spliceMetrics\""), std::string::npos);
  const JsonParseResult parsed = parse_json(ws.doc);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_NE(parsed.value.find("spliceHealth"), nullptr);
  EXPECT_NE(parsed.value.find("spliceSlo"), nullptr);
  EXPECT_NE(parsed.value.find("spliceMetrics"), nullptr);
}

TEST_F(ObsAgentTest, LifecyclePublishesIntoSegmentAndFreezesOnStop) {
  arm_health(clock_now_ns());
  const std::string path = temp_path("agent_lifecycle.tel");

  TelemetryConfig cfg;
  cfg.shm_path = path;
  cfg.period_ms = 20;
  std::string error;
  TelemetryAgent& agent = TelemetryAgent::global();
  ASSERT_TRUE(agent.start(cfg, &error)) << error;
  EXPECT_TRUE(agent.running());
  EXPECT_FALSE(agent.start(cfg, &error));  // double start rejected

  // The initial flush means an attach right after start() sees data.
  ShmSegmentReader reader;
  ASSERT_TRUE(reader.attach(path, &error)) << error;
  std::string doc;
  ShmSegmentInfo info;
  ASSERT_EQ(reader.read(doc, &info), ShmReadResult::kOk);
  EXPECT_GE(info.generation, 2u);
  EXPECT_EQ(info.period_ns, 20'000'000u);
  EXPECT_EQ(info.writer_pid, static_cast<std::uint64_t>(::getpid()));
  const JsonParseResult parsed = parse_json(doc);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_NE(parsed.value.find("spliceHealth"), nullptr);

  // flush_now() bumps the generation synchronously.
  const std::uint64_t before = info.generation;
  ASSERT_TRUE(agent.flush_now());
  ASSERT_EQ(reader.read(doc, &info), ShmReadResult::kOk);
  EXPECT_GT(info.generation, before);

  // stop(): final flush, then the segment freezes but stays attachable.
  agent.stop();
  EXPECT_FALSE(agent.running());
  ASSERT_EQ(reader.read(doc, &info), ShmReadResult::kOk);
  const std::uint64_t frozen_gen = info.generation;
  const std::uint64_t frozen_beat = info.heartbeat_ns;
  ASSERT_EQ(reader.read(doc, &info), ShmReadResult::kOk);
  EXPECT_EQ(info.generation, frozen_gen);
  EXPECT_EQ(info.heartbeat_ns, frozen_beat);
  std::remove(path.c_str());
}

/// Minimal loopback HTTP GET for the scrape test (mirrors what a real
/// scraper does; splice_inspect scrape is the operator-facing twin).
bool loopback_get(std::uint16_t port, const std::string& target,
                  std::string& response) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return false;
  }
  const std::string req =
      "GET " + target + " HTTP/1.0\r\nConnection: close\r\n\r\n";
  if (::write(fd, req.data(), req.size()) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return false;
  }
  char buf[4096];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return true;
}

TEST_F(ObsAgentTest, ScrapeEndpointServesLintCleanExposition) {
  MetricsRegistry::set_enabled(true);
  MetricsRegistry::global().counter("agent_scrape_events").add(7);
  MetricsRegistry::global().histogram("agent_scrape_us", 0.0, 100.0, 4).observe(
      12.0);

  TelemetryConfig cfg;
  cfg.tcp = true;
  cfg.tcp_port = 0;  // ephemeral
  std::string error;
  TelemetryAgent& agent = TelemetryAgent::global();
  if (!agent.start(cfg, &error)) {
    GTEST_SKIP() << "cannot bind loopback here: " << error;
  }
  const std::uint16_t port = agent.scrape_port();
  ASSERT_NE(port, 0);

  std::string response;
  ASSERT_TRUE(loopback_get(port, "/metrics", response));
  ASSERT_NE(response.find(" 200 "), std::string::npos) << response;
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  EXPECT_NE(body.find("agent_scrape_events"), std::string::npos);

  // The exposition must satisfy the same conformance rules obs_export_test
  // enforces on the file exporter.
  std::string lint_error;
  EXPECT_TRUE(prometheus_lint(body, &lint_error)) << lint_error;

  // Unknown paths 404, non-GET 405 — and neither kills the serve loop.
  std::string missing;
  ASSERT_TRUE(loopback_get(port, "/nope", missing));
  EXPECT_NE(missing.find(" 404 "), std::string::npos);
  std::string again;
  ASSERT_TRUE(loopback_get(port, "/metrics", again));
  EXPECT_NE(again.find(" 200 "), std::string::npos);

  agent.stop();
}

TEST_F(ObsAgentTest, SteadyStatePublishPathIsAllocationFree) {
  if (!alloc_hooks_compiled()) {
    GTEST_SKIP() << "allocation hooks not compiled in this build";
  }
  arm_health(clock_now_ns());
  MetricsRegistry::set_enabled(true);
  MetricsRegistry::global().counter("agent_zeroalloc_events").add(11);
  MetricsRegistry::global()
      .histogram("agent_zeroalloc_us", 0.0, 50.0, 8)
      .observe(3.0);

  TelemetryConfig cfg;
  cfg.shm_path = temp_path("agent_zeroalloc.tel");
  cfg.period_ms = 10'000;  // the agent thread stays parked; we drive flushes
  std::string error;
  TelemetryAgent& agent = TelemetryAgent::global();
  ASSERT_TRUE(agent.start(cfg, &error)) << error;

  // Two warmup flushes on THIS thread: the workspace vectors, the document
  // buffer and the thread_local serializer scratches all reach their
  // steady-state capacity.
  ASSERT_TRUE(agent.flush_now());
  ASSERT_TRUE(agent.flush_now());

  ResourceProfiler::set_enabled(true);
  {
    ResourceScope scope;
    ASSERT_TRUE(agent.flush_now());
    const ResourceDelta d = scope.finish();
    EXPECT_EQ(d.allocs, 0) << "telemetry publish path allocated";
  }
  ResourceProfiler::set_enabled(false);
  agent.stop();
  std::remove(cfg.shm_path.c_str());
}

TEST_F(ObsAgentTest, StartValidatesConfig) {
  TelemetryAgent& agent = TelemetryAgent::global();
  std::string error;
  TelemetryConfig none;
  EXPECT_FALSE(agent.start(none, &error));  // no sink

  TelemetryConfig zero_period;
  zero_period.shm_path = temp_path("agent_zero_period.tel");
  zero_period.period_ms = 0;
  EXPECT_FALSE(agent.start(zero_period, &error));

  TelemetryConfig bad_path;
  bad_path.shm_path = "/nonexistent-dir/xyz/agent.tel";
  EXPECT_FALSE(agent.start(bad_path, &error));
  EXPECT_FALSE(agent.running());
}

}  // namespace
}  // namespace splice::obs
