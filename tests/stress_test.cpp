// Randomized chaos/stress test over the full stack: on random topologies,
// apply random sequences of operations (fail/restore links, send packets
// with arbitrary headers and policies, run recovery episodes, query the
// analyzer) and continuously check cross-layer invariants. Each TEST_P
// seed drives an independent scenario.
#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "sim/failure.h"
#include "splicing/recovery.h"
#include "splicing/reliability.h"
#include "splicing/splicer.h"
#include "util/rng.h"

namespace splice {
namespace {

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, FullStackSurvivesRandomOperations) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  // Random connected topology and splicer geometry.
  const auto n = static_cast<NodeId>(8 + rng.below(40));
  Graph g = waxman(n, 0.9, 0.25, rng());
  make_connected(g, rng());
  SplicerConfig cfg;
  cfg.slices = static_cast<SliceId>(1 + rng.below(8));
  cfg.seed = rng();
  if (rng.coin()) cfg.perturbation.kind = PerturbationKind::kUniform;
  Splicer splicer(std::move(g), cfg);
  const Graph& graph = splicer.graph();
  const SplicedReliabilityAnalyzer analyzer(graph,
                                            splicer.control_plane());

  std::vector<char> alive(static_cast<std::size_t>(graph.edge_count()), 1);
  long long delivered = 0;

  for (int op = 0; op < 400; ++op) {
    switch (rng.below(6)) {
      case 0: {  // fail a random link
        const auto e = static_cast<EdgeId>(
            rng.below(static_cast<std::uint64_t>(graph.edge_count())));
        alive[static_cast<std::size_t>(e)] = 0;
        splicer.network().set_link_state(e, false);
        break;
      }
      case 1: {  // restore a random link
        const auto e = static_cast<EdgeId>(
            rng.below(static_cast<std::uint64_t>(graph.edge_count())));
        alive[static_cast<std::size_t>(e)] = 1;
        splicer.network().set_link_state(e, true);
        break;
      }
      case 2: {  // restore everything
        std::fill(alive.begin(), alive.end(), 1);
        splicer.network().restore_all_links();
        break;
      }
      case 3: {  // send with an arbitrary header/policy
        Packet p;
        p.src = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(graph.node_count())));
        p.dst = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(graph.node_count())));
        p.header = SpliceHeader::random(cfg.slices, 20, rng);
        p.ttl = 1 + static_cast<int>(rng.below(128));
        if (rng.coin()) p.counter = CounterHeader(static_cast<std::uint32_t>(rng.below(6)));
        ForwardingPolicy policy;
        policy.local_recovery =
            rng.coin() ? LocalRecovery::kDeflect : LocalRecovery::kNone;
        const Delivery d = splicer.network().forward(p, policy);
        // Invariant: a delivered trace only uses alive links and ends at
        // the destination.
        if (d.delivered()) {
          ++delivered;
          if (!d.hops.empty()) {
            ASSERT_EQ(d.hops.back().next, p.dst);
          }
          for (const HopRecord& hop : d.hops) {
            ASSERT_TRUE(alive[static_cast<std::size_t>(hop.edge)]);
          }
        }
        break;
      }
      case 4: {  // recovery episode; soundness vs directed analyzer
        const auto src = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(graph.node_count())));
        const auto dst = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(graph.node_count())));
        if (src == dst) break;
        RecoveryConfig rcfg;
        if (rng.coin()) rcfg.scheme = RecoveryScheme::kNetworkDeflection;
        const RecoveryResult r =
            attempt_recovery(splicer.network(), src, dst, rcfg, rng);
        if (r.delivered && rcfg.scheme != RecoveryScheme::kNetworkDeflection) {
          ASSERT_TRUE(analyzer.connected(
              src, dst, cfg.slices, alive,
              UnionSemantics::kDirectedForwarding))
              << "recovered a pair the union says is unreachable";
        }
        break;
      }
      case 5: {  // analyzer consistency with physical connectivity
        const long long spliced = analyzer.disconnected_pairs(
            cfg.slices, alive, UnionSemantics::kUndirectedLinks);
        const long long physical = disconnected_ordered_pairs(graph, alive);
        ASSERT_GE(spliced, physical);
        const long long directed = analyzer.disconnected_pairs(
            cfg.slices, alive, UnionSemantics::kDirectedForwarding);
        ASSERT_GE(directed, spliced);
        break;
      }
      default:
        break;
    }
  }
  // The scenario should have delivered *something* across 400 ops.
  EXPECT_GT(delivered, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace splice
