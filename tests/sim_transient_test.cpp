// Transient-convergence (§6) simulation tests.
#include "sim/transient.h"

#include <gtest/gtest.h>

#include "topo/datasets.h"

namespace splice {
namespace {

TransientConfig small_cfg() {
  TransientConfig cfg;
  cfg.slices = 4;
  cfg.time_samples = 4;
  cfg.pair_sample = 80;
  cfg.failures = 8;
  return cfg;
}

TEST(Transient, FractionsAreCoherent) {
  const auto points = run_transient_experiment(topo::sprint(), small_cfg());
  ASSERT_EQ(points.size(), 4u);
  for (const auto& pt : points) {
    EXPECT_NEAR(pt.plain_delivered + pt.plain_loops + pt.plain_blackholes,
                1.0, 1e-9);
    EXPECT_NEAR(
        pt.spliced_delivered + pt.spliced_loops + pt.spliced_blackholes, 1.0,
        1e-9);
    EXPECT_GE(pt.t, 0.0);
    EXPECT_LE(pt.t, 1.0);
  }
}

TEST(Transient, SplicingDeliversMoreThroughTheWindow) {
  // The §6 claim: with stale-slice deflection, delivery through the mixed
  // old/new window beats plain routing at every sampled instant.
  const auto points = run_transient_experiment(topo::sprint(), small_cfg());
  for (const auto& pt : points) {
    EXPECT_GE(pt.spliced_delivered, pt.plain_delivered);
  }
  // And strictly better somewhere.
  double gain = 0.0;
  for (const auto& pt : points)
    gain += pt.spliced_delivered - pt.plain_delivered;
  EXPECT_GT(gain, 0.0);
}

TEST(Transient, PlainRoutingImprovesAsWindowCloses) {
  // As more nodes update, plain delivery climbs toward 1 (single link
  // failure on a mostly 2-connected graph).
  TransientConfig cfg = small_cfg();
  cfg.time_samples = 6;
  const auto points = run_transient_experiment(topo::sprint(), cfg);
  EXPECT_GT(points.back().plain_delivered,
            points.front().plain_delivered);
}

TEST(Transient, Deterministic) {
  const auto a = run_transient_experiment(topo::geant(), small_cfg());
  const auto b = run_transient_experiment(topo::geant(), small_cfg());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].plain_delivered, b[i].plain_delivered);
    EXPECT_EQ(a[i].spliced_delivered, b[i].spliced_delivered);
    EXPECT_EQ(a[i].spliced_loops, b[i].spliced_loops);
  }
}

TEST(Transient, ExhaustivePairsModeWorks) {
  TransientConfig cfg = small_cfg();
  cfg.pair_sample = 0;  // all pairs
  cfg.failures = 2;
  cfg.time_samples = 2;
  const auto points = run_transient_experiment(topo::geant(), cfg);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& pt : points) {
    EXPECT_GT(pt.plain_delivered, 0.5);
  }
}

}  // namespace
}  // namespace splice
