// Tests for the text/CSV table writer and formatting helpers.
#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace splice {
namespace {

TEST(Table, TextAlignsColumns) {
  Table t({"k", "value"});
  t.add_row({"1", "0.5"});
  t.add_row({"10", "0.25"});
  const std::string text = t.to_text();
  // Header, rule, two rows.
  int lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4);
  EXPECT_NE(text.find("k"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
}

TEST(Table, RowsAndColumnsCounts) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, PrintWritesToStream) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_text());
}

TEST(Formatters, Double) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Formatters, Percent) {
  EXPECT_EQ(fmt_percent(0.5, 1), "50.0%");
  EXPECT_EQ(fmt_percent(0.012345, 2), "1.23%");
}

TEST(Formatters, Int) {
  EXPECT_EQ(fmt_int(42), "42");
  EXPECT_EQ(fmt_int(-7), "-7");
}

TEST(WriteFile, RoundTrips) {
  const std::string path = ::testing::TempDir() + "/splice_table_test.txt";
  ASSERT_TRUE(write_file(path, "hello\nworld\n"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(WriteFile, FailsOnBadPath) {
  EXPECT_FALSE(write_file("/nonexistent-dir/xyz/file.txt", "x"));
}

TEST(WriteFileAtomic, RoundTripsAndLeavesNoTemp) {
  const std::string path = ::testing::TempDir() + "/splice_atomic_test.json";
  ASSERT_TRUE(write_file_atomic(path, "{\"a\": 1}\n"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "{\"a\": 1}\n");
  // The temp file must be gone after the rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(WriteFileAtomic, OverwritesExistingContent) {
  const std::string path = ::testing::TempDir() + "/splice_atomic_over.json";
  ASSERT_TRUE(write_file_atomic(path, "old old old old"));
  ASSERT_TRUE(write_file_atomic(path, "new"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "new");
  std::remove(path.c_str());
}

TEST(WriteFileAtomic, FailsOnBadPathWithoutTempResidue) {
  EXPECT_FALSE(write_file_atomic("/nonexistent-dir/xyz/file.json", "x"));
}

TEST(WriteFileAtomic, ContentAfterRenameIsExactlyWhatWasWritten) {
  const std::string path = ::testing::TempDir() + "/splice_atomic_fsync.bin";
  // Binary payload with embedded NULs and a size that is no power-of-two
  // multiple: what rename(2) publishes must be byte-for-byte the input —
  // the temp file is fsync'd before the rename (and the directory after),
  // so the published name can never refer to a short or empty file.
  std::string content;
  content.reserve(70001);
  for (int i = 0; i < 70001; ++i) {
    content.push_back(static_cast<char>(i % 251));
  }
  ASSERT_TRUE(write_file_atomic(path, content));
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), content);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace splice
