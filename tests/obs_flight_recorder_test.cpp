// Flight-recorder unit tests: SPSC ring wraparound against a brute-force
// oracle, drop accounting, the disabled-mode "no ring even gets allocated"
// guarantee, deterministic walk sampling, and a multi-thread drain smoke.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace splice::obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::set_enabled(false);
    FlightRecorder::global().drain();  // discard leftovers from other tests
    FlightRecorder::global().reset();
  }
  void TearDown() override {
    FlightRecorder::set_enabled(false);
    FlightRecorder::global().drain();
    FlightRecorder::global().reset();
    FlightRecorder::global().set_ring_capacity(1u << 16);
    FlightRecorder::global().set_walk_sample_every(64);
  }
};

#if SPLICE_OBS

RecorderEvent payload_event(std::uint32_t i) {
  RecorderEvent ev;
  ev.type = static_cast<std::uint16_t>(EventType::kWalkHop);
  ev.key = 42;
  ev.a = i;
  return ev;
}

TEST_F(FlightRecorderTest, WraparoundMatchesBruteForceOracle) {
  // One producer thread records randomized batches into a tiny ring; the
  // oracle is a bounded queue with the same drop-when-full rule. Batches
  // large enough to wrap the ring many times over; drains happen at batch
  // boundaries (the intended quiescent-point discipline).
  constexpr std::size_t kCapacity = 16;
  auto& rec = FlightRecorder::global();
  rec.set_ring_capacity(kCapacity);
  FlightRecorder::set_enabled(true);

  // The whole loop runs on one long-lived thread so every batch lands in
  // the *same* ring: head/tail march far past the capacity and the
  // power-of-two index masking gets exercised on every lap.
  std::uint64_t oracle_dropped = 0;
  std::thread producer([&] {
    Rng rng(0xf11f);
    std::uint32_t next_payload = 0;
    for (int iter = 0; iter < 50; ++iter) {
      const auto n = static_cast<std::uint32_t>(rng.below(3 * kCapacity + 1));
      std::deque<std::uint32_t> oracle;
      for (std::uint32_t i = 0; i < n; ++i) {
        rec.record(payload_event(next_payload + i));
        if (oracle.size() >= kCapacity) {
          ++oracle_dropped;
        } else {
          oracle.push_back(next_payload + i);
        }
      }
      next_payload += n;

      RecorderSnapshot snap = rec.drain();
      std::vector<std::uint32_t> got;
      for (const RecorderEvent& ev : snap.events) got.push_back(ev.a);
      const std::vector<std::uint32_t> want(oracle.begin(), oracle.end());
      EXPECT_EQ(got, want) << "iteration " << iter;
      EXPECT_EQ(snap.dropped, oracle_dropped) << "iteration " << iter;
      if (got != want) return;
    }
  });
  producer.join();
  EXPECT_GT(oracle_dropped, 0u) << "test never exercised the full-ring path";
}

TEST_F(FlightRecorderTest, DropCountSurvivesDrainAndClearsOnReset) {
  constexpr std::size_t kCapacity = 8;
  auto& rec = FlightRecorder::global();
  rec.set_ring_capacity(kCapacity);
  FlightRecorder::set_enabled(true);

  std::thread producer([&] {
    for (std::uint32_t i = 0; i < 3 * kCapacity; ++i) {
      rec.record(payload_event(i));
    }
  });
  producer.join();

  RecorderSnapshot snap = rec.drain();
  EXPECT_EQ(snap.events.size(), kCapacity);
  EXPECT_EQ(snap.dropped, 2 * kCapacity);
  // Drain consumed the events but the cumulative drop count persists...
  snap = rec.drain();
  EXPECT_TRUE(snap.events.empty());
  EXPECT_EQ(snap.dropped, 2 * kCapacity);
  // ...until reset.
  rec.reset();
  snap = rec.drain();
  EXPECT_EQ(snap.dropped, 0u);
}

TEST_F(FlightRecorderTest, DisabledRecordPathAllocatesNoRing) {
  auto& rec = FlightRecorder::global();
  const std::size_t rings_before = rec.ring_count();
  std::thread t([&] {
    // All hooks, recorder disabled: none may register a ring for this
    // (brand new) thread.
    rec.phase_begin(0);
    rec.phase_end(0);
    rec.spt_repair(1, 2, 3, 4, 5);
    rec.trial_begin(7);
    rec.trial_end(7);
    rec.record(payload_event(1));
    WalkScope walk(123);
    EXPECT_FALSE(walk.armed());
    walk_hop(1, 2, 0, 3, false, 2);
  });
  t.join();
  EXPECT_EQ(rec.ring_count(), rings_before);
  EXPECT_TRUE(rec.drain().events.empty());
}

TEST_F(FlightRecorderTest, WalkSamplingIsAPureFunctionOfWalkId) {
  auto& rec = FlightRecorder::global();
  rec.set_walk_sample_every(8);
  std::vector<bool> first;
  for (std::uint64_t id = 0; id < 512; ++id) {
    first.push_back(rec.sample_walk(id));
  }
  // Same decisions from another thread (thread identity must not leak in).
  std::vector<bool> second;
  std::thread t([&] {
    for (std::uint64_t id = 0; id < 512; ++id) {
      second.push_back(rec.sample_walk(id));
    }
  });
  t.join();
  EXPECT_EQ(first, second);
  const auto hits = std::count(first.begin(), first.end(), true);
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 512);

  rec.set_walk_sample_every(1);
  EXPECT_TRUE(rec.sample_walk(0xdeadbeef));
  rec.set_walk_sample_every(0);
  EXPECT_FALSE(rec.sample_walk(0xdeadbeef));
}

TEST_F(FlightRecorderTest, MultiThreadRecordDrainsEveryEvent) {
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 500;
  auto& rec = FlightRecorder::global();
  rec.set_ring_capacity(1u << 12);
  FlightRecorder::set_enabled(true);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        RecorderEvent ev = payload_event(i);
        ev.key = static_cast<std::uint64_t>(t);
        ev.seq = i;
        rec.record(ev);
      }
    });
  }
  for (auto& w : workers) w.join();

  RecorderSnapshot snap = rec.drain();
  EXPECT_EQ(snap.dropped, 0u);
  ASSERT_EQ(snap.events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  sort_deterministic(snap.events);
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint32_t i = 0; i < kPerThread; ++i) {
      const RecorderEvent& ev =
          snap.events[static_cast<std::size_t>(t) * kPerThread + i];
      EXPECT_EQ(ev.key, static_cast<std::uint64_t>(t));
      EXPECT_EQ(ev.seq, i);
    }
  }
}

TEST_F(FlightRecorderTest, SortDeterministicOrdersWalksByKeyAndSeq) {
  std::vector<RecorderEvent> events;
  RecorderEvent walk = payload_event(0);
  walk.key = 2;
  walk.seq = 1;
  events.push_back(walk);
  walk.key = 1;
  walk.seq = 2;
  events.push_back(walk);
  walk.key = 1;
  walk.seq = 0;
  events.push_back(walk);
  RecorderEvent phase;
  phase.type = static_cast<std::uint16_t>(EventType::kPhaseBegin);
  phase.time_ns = 999;
  events.push_back(phase);

  sort_deterministic(events);
  // Non-walk events first, then walks by (key, seq).
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].type,
            static_cast<std::uint16_t>(EventType::kPhaseBegin));
  EXPECT_EQ(events[1].key, 1u);
  EXPECT_EQ(events[1].seq, 0u);
  EXPECT_EQ(events[2].key, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[3].key, 2u);
}

#else  // !SPLICE_OBS

TEST_F(FlightRecorderTest, CompiledOutRecorderStaysInert) {
  auto& rec = FlightRecorder::global();
  FlightRecorder::set_enabled(true);  // must be a no-op
  EXPECT_FALSE(FlightRecorder::enabled());
  rec.phase_begin(0);
  rec.trial_begin(1);
  EXPECT_EQ(rec.ring_count(), 0u);
  EXPECT_TRUE(rec.drain().events.empty());
}

#endif  // SPLICE_OBS

}  // namespace
}  // namespace splice::obs
