// RoutingInstance tests: next-hop correctness, tree structure, path
// reconstruction, distances under perturbed weights.
#include "routing/routing_instance.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "routing/perturbation.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

Graph diamond() {
  // 0 - 1 - 3 (cost 2) and 0 - 2 - 3 (cost 5).
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  return g;
}

TEST(RoutingInstance, NextHopsFollowShortestPaths) {
  const Graph g = diamond();
  const RoutingInstance inst(g, g.weights());
  EXPECT_EQ(inst.next_hop(0, 3), 1);
  EXPECT_EQ(inst.next_hop(1, 3), 3);
  EXPECT_EQ(inst.next_hop(2, 3), 3);
  EXPECT_EQ(inst.next_hop(3, 0), 1);
}

TEST(RoutingInstance, SelfNextHopIsInvalid) {
  const Graph g = diamond();
  const RoutingInstance inst(g, g.weights());
  EXPECT_EQ(inst.next_hop(2, 2), kInvalidNode);
  EXPECT_EQ(inst.next_hop_edge(2, 2), kInvalidEdge);
  EXPECT_DOUBLE_EQ(inst.distance(2, 2), 0.0);
}

TEST(RoutingInstance, UnreachableDestination) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const RoutingInstance inst(g, g.weights());
  EXPECT_EQ(inst.next_hop(0, 2), kInvalidNode);
  EXPECT_EQ(inst.distance(0, 2), kInfiniteWeight);
  EXPECT_TRUE(inst.path(0, 2).empty());
}

TEST(RoutingInstance, EmptyWeightsMeansGraphWeights) {
  const Graph g = diamond();
  const RoutingInstance inst(g, {});
  EXPECT_DOUBLE_EQ(inst.distance(0, 3), 2.0);
}

TEST(RoutingInstance, PathEndsAtDestination) {
  const Graph g = topo::geant();
  const RoutingInstance inst(g, g.weights());
  const auto path = inst.path(0, 10);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 10);
}

TEST(RoutingInstance, PerturbedWeightsChangeDistances) {
  const Graph g = diamond();
  // Make the top route expensive.
  std::vector<Weight> w = g.weights();
  w[0] = 10.0;  // edge 0-1
  const RoutingInstance inst(g, w);
  EXPECT_EQ(inst.next_hop(0, 3), 2);
  EXPECT_DOUBLE_EQ(inst.distance(0, 3), 5.0);
}

TEST(RoutingInstance, PathCostOriginalUsesBaseWeights) {
  const Graph g = diamond();
  std::vector<Weight> w = g.weights();
  w[0] = 10.0;  // force the 0-2-3 route in this slice
  const RoutingInstance inst(g, w);
  // Slice path 0-2-3 costs 5 under ORIGINAL weights (2+3), not perturbed.
  EXPECT_DOUBLE_EQ(inst.path_cost_original(g, 0, 3), 5.0);
}

TEST(RoutingInstance, PathCostOriginalUnreachable) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const RoutingInstance inst(g, g.weights());
  EXPECT_EQ(inst.path_cost_original(g, 0, 2), kInfiniteWeight);
}

TEST(RoutingInstance, TreeEdgesFormSpanningTree) {
  const Graph g = topo::sprint();
  const RoutingInstance inst(g, g.weights());
  for (NodeId dst : {0, 10, 25, 51}) {
    const auto edges = inst.tree_edges(dst);
    // Connected graph: every node except dst has a parent edge.
    EXPECT_EQ(edges.size(), static_cast<std::size_t>(g.node_count() - 1));
  }
}

TEST(RoutingInstance, TreeNextHopsConvergeOnDestination) {
  const Graph g = topo::sprint();
  Rng rng(5);
  const auto w = perturb_weights(
      g, PerturbationConfig{PerturbationKind::kDegreeBased, 0.0, 3.0}, rng);
  const RoutingInstance inst(g, w);
  for (NodeId dst = 0; dst < g.node_count(); dst += 7) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == dst) continue;
      const auto path = inst.path(v, dst);
      ASSERT_FALSE(path.empty()) << v << "->" << dst;
      EXPECT_EQ(path.back(), dst);
      EXPECT_LE(path.size(), static_cast<std::size_t>(g.node_count()));
    }
  }
}

TEST(RoutingInstance, DistancesMatchDijkstraUnderPerturbation) {
  const Graph g = topo::geant();
  Rng rng(6);
  const auto w = perturb_weights(
      g, PerturbationConfig{PerturbationKind::kUniform, 0.0, 2.0}, rng);
  const RoutingInstance inst(g, w);
  DijkstraOptions opts;
  opts.weight_override = w;
  for (NodeId dst : {0, 5, 11, 22}) {
    const ShortestPaths sp = dijkstra(g, dst, opts);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_NEAR(inst.distance(v, dst), sp.dist[static_cast<std::size_t>(v)],
                  1e-9);
    }
  }
}

TEST(RoutingInstance, NextHopDecreasesDistance) {
  // The fundamental routing invariant: handing the packet to the next hop
  // strictly decreases the (perturbed) distance to the destination.
  const Graph g = topo::sprint();
  Rng rng(7);
  const auto w = perturb_weights(
      g, PerturbationConfig{PerturbationKind::kDegreeBased, 0.0, 3.0}, rng);
  const RoutingInstance inst(g, w);
  for (NodeId dst = 0; dst < g.node_count(); dst += 5) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == dst) continue;
      const NodeId nh = inst.next_hop(v, dst);
      ASSERT_NE(nh, kInvalidNode);
      EXPECT_LT(inst.distance(nh, dst), inst.distance(v, dst));
    }
  }
}

// Stretch property (§4.3 context): per-slice paths under perturbation
// Weight(0, b) have original-weight stretch at most 1 + b.
class SliceStretchBound : public ::testing::TestWithParam<double> {};

TEST_P(SliceStretchBound, StretchBoundedByOnePlusB) {
  const double b = GetParam();
  const Graph g = topo::geant();
  Rng rng(8);
  const auto w = perturb_weights(
      g, PerturbationConfig{PerturbationKind::kUniform, 0.0, b}, rng);
  const RoutingInstance inst(g, w);
  const RoutingInstance base(g, g.weights());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      const Weight slice_cost = inst.path_cost_original(g, s, t);
      const Weight best = base.distance(s, t);
      // Perturbed weights w' satisfy w <= w' <= (1+b) w, so the slice path
      // measured in original weights is at most (1+b) * shortest.
      EXPECT_LE(slice_cost, (1.0 + b) * best + 1e-9);
      EXPECT_GE(slice_cost, best - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BValues, SliceStretchBound,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 3.0));

}  // namespace
}  // namespace splice
