// BGP convergence-dynamics tests.
#include "interdomain/bgp_dynamics.h"

#include <gtest/gtest.h>

#include "sim/failure.h"
#include "util/rng.h"

namespace splice {
namespace {

AsGraph hierarchy(std::uint64_t seed = 1) {
  AsHierarchyConfig cfg;
  cfg.seed = seed;
  return make_as_hierarchy(cfg);
}

TEST(ColdConvergence, ReachesEveryPair) {
  const AsGraph g = hierarchy();
  const ConvergenceStats s = measure_cold_convergence(g);
  EXPECT_EQ(s.unreachable_pairs, 0);
  EXPECT_GT(s.rounds, 0);
  // At least one change per (AS, dst) pair to go from empty to converged.
  EXPECT_GE(s.route_changes,
            static_cast<long long>(g.as_count()) * (g.as_count() - 1));
  // Gao-Rexford economics converge quickly — well under the 4n+8 cap.
  EXPECT_LT(s.rounds, 2 * g.as_count());
}

TEST(ColdConvergence, Deterministic) {
  const AsGraph g = hierarchy(3);
  const ConvergenceStats a = measure_cold_convergence(g);
  const ConvergenceStats b = measure_cold_convergence(g);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.route_changes, b.route_changes);
}

TEST(FailureReconvergence, CheaperThanColdStart) {
  const AsGraph g = hierarchy();
  const ConvergenceStats cold = measure_cold_convergence(g);
  for (AsLinkId l = 0; l < g.link_count(); l += 7) {
    const ConvergenceStats refl = measure_failure_reconvergence(g, l);
    EXPECT_LT(refl.route_changes, cold.route_changes) << "link " << l;
  }
}

TEST(FailureReconvergence, StubUplinkFailureIsExpensive) {
  // Failing one of a multihomed stub's uplinks forces every AS that routed
  // to the stub through it to change — route_changes must be nonzero.
  const AsGraph g = hierarchy();
  // Stubs are the last ASes added; their links are the last added too.
  const AsLinkId stub_link = g.link_count() - 1;
  const ConvergenceStats s = measure_failure_reconvergence(g, stub_link);
  EXPECT_GT(s.route_changes, 0);
  // Multihoming keeps everything reachable.
  EXPECT_EQ(s.unreachable_pairs, 0);
}

TEST(FailureReconvergence, BarelyUsedLinksReconvergeCheaply) {
  // Every link carries at least the direct best route between its own two
  // endpoints (one change per direction when withdrawn), so the cheapest
  // possible reconvergence is a handful of changes — some redundant
  // tier-2 peering should hit that floor, far below the hierarchy-wide
  // churn of a transit-link failure.
  const AsGraph g = hierarchy();
  long long min_changes = 1LL << 40;
  long long max_changes = 0;
  for (AsLinkId l = 0; l < g.link_count(); ++l) {
    const long long c = measure_failure_reconvergence(g, l).route_changes;
    min_changes = std::min(min_changes, c);
    max_changes = std::max(max_changes, c);
  }
  EXPECT_LE(min_changes, 6);
  EXPECT_GT(max_changes, 20 * min_changes);
}

TEST(FailureReconvergence, SplicedFibsRideThroughIt) {
  // The point of the module: while classic BGP churns through
  // `route_changes` updates, the k-route FIBs installed *before* the
  // failure still deliver via forwarding bits for most pairs.
  const AsGraph g = hierarchy();
  const BgpSplicer bgp(g, BgpConfig{3, 0});
  Rng rng(5);
  int checked = 0;
  int rode_through = 0;
  for (AsLinkId l = 0; l < g.link_count(); l += 5) {
    const ConvergenceStats churn = measure_failure_reconvergence(g, l);
    if (churn.route_changes == 0) continue;
    std::vector<char> alive(static_cast<std::size_t>(g.link_count()), 1);
    alive[static_cast<std::size_t>(l)] = 0;
    // Sample pairs: can the stale spliced FIBs still deliver?
    for (int trial = 0; trial < 30; ++trial) {
      const auto src = static_cast<AsId>(
          rng.below(static_cast<std::uint64_t>(g.as_count())));
      const auto dst = static_cast<AsId>(
          rng.below(static_cast<std::uint64_t>(g.as_count())));
      if (src == dst) continue;
      ++checked;
      rode_through += bgp.spliced_connected(src, dst, alive) ? 1 : 0;
    }
  }
  ASSERT_GT(checked, 0);
  EXPECT_GT(rode_through, checked * 9 / 10);
}

}  // namespace
}  // namespace splice
