// Incremental SPT repair tests: randomized link-event sequences (weight
// increases, decreases, kills and resurrections) must leave every table of
// RoutingInstance::recompute_edge() bit-identical to a from-scratch build
// with the same weight vector, with distances cross-checked against the
// independent Bellman-Ford oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/bellman_ford.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "routing/multi_instance.h"
#include "routing/routing_instance.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

/// Every (node, dst) table entry of `repaired` must equal `fresh` exactly —
/// same bits for distances, same next hops, same next-hop edges. Equality
/// (not tolerance) is the contract: repair renormalizes parents with the
/// same deterministic tie-breaking rule the full Dijkstra uses.
void expect_identical(const RoutingInstance& repaired,
                      const RoutingInstance& fresh) {
  const NodeId n = fresh.node_count();
  ASSERT_EQ(repaired.node_count(), n);
  for (NodeId dst = 0; dst < n; ++dst) {
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(repaired.distance(v, dst), fresh.distance(v, dst))
          << "v=" << v << " dst=" << dst;
      ASSERT_EQ(repaired.next_hop(v, dst), fresh.next_hop(v, dst))
          << "v=" << v << " dst=" << dst;
      ASSERT_EQ(repaired.next_hop_edge(v, dst), fresh.next_hop_edge(v, dst))
          << "v=" << v << " dst=" << dst;
    }
  }
}

/// Second oracle: distances must match Bellman-Ford under the same weights.
void expect_matches_bellman_ford(const Graph& g, const RoutingInstance& inst,
                                 const std::vector<Weight>& weights) {
  const NodeId n = g.node_count();
  for (NodeId dst = 0; dst < n; ++dst) {
    const auto oracle = bellman_ford_distances(g, dst, weights);
    for (NodeId v = 0; v < n; ++v) {
      const Weight got = inst.distance(v, dst);
      const Weight want = oracle[static_cast<std::size_t>(v)];
      if (want >= kInfiniteWeight) {
        EXPECT_EQ(got, want) << "v=" << v << " dst=" << dst;
      } else {
        EXPECT_NEAR(got, want, 1e-9) << "v=" << v << " dst=" << dst;
      }
    }
  }
}

/// Drives `events` random link events on `g`, checking after each one.
void run_event_sequence(const Graph& g, std::uint64_t seed, int events,
                        double rebuild_threshold) {
  RoutingInstance inst(g, {});
  inst.set_repair_rebuild_threshold(rebuild_threshold);
  std::vector<Weight> weights = g.weights();
  Rng rng(seed);
  RepairStats total;
  for (int i = 0; i < events; ++i) {
    const auto e = static_cast<EdgeId>(
        rng.below(static_cast<std::uint64_t>(g.edge_count())));
    const auto se = static_cast<std::size_t>(e);
    Weight w;
    switch (rng.below(5)) {
      case 0:  // kill (clean infinity)
        w = kInfiniteWeight;
        break;
      case 1:  // kill (transient.cpp's inflated sentinel)
        w = 1e18;
        break;
      case 2:  // resurrect / restore the original weight
        w = g.edge(e).weight;
        break;
      case 3:  // increase
        w = weights[se] >= kInfiniteWeight ? g.edge(e).weight * 2.0
                                           : weights[se] * 1.75;
        break;
      default:  // decrease
        w = weights[se] >= kInfiniteWeight ? g.edge(e).weight
                                           : weights[se] * 0.4;
        break;
    }
    weights[se] = w;
    const RepairStats stats = inst.recompute_edge(e, w);
    total.add(stats);
    // Every destination tree is accounted for exactly once per event.
    EXPECT_EQ(stats.trees_untouched + stats.trees_repaired +
                  stats.trees_rebuilt,
              static_cast<long long>(g.node_count()))
        << "event " << i;
    const RoutingInstance fresh(g, weights);
    expect_identical(inst, fresh);
  }
  expect_matches_bellman_ford(g, inst, weights);
  // A random sequence of this length exercises the repair path, not just
  // the untouched early-outs.
  EXPECT_GT(total.trees_repaired + total.trees_rebuilt, 0);
}

TEST(RoutingRepair, RandomEventsOnErdosRenyi) {
  Graph g = erdos_renyi(40, 0.12, 21);
  make_connected(g, 22);
  run_event_sequence(g, /*seed=*/101, /*events=*/40,
                     /*rebuild_threshold=*/0.25);
}

TEST(RoutingRepair, RandomEventsOnGeant) {
  run_event_sequence(topo::geant(), /*seed=*/7, /*events=*/40,
                     /*rebuild_threshold=*/0.25);
}

TEST(RoutingRepair, RepairOnlyNoRebuildFallback) {
  // threshold = 1.0 forces the incremental path even for huge subtrees.
  Graph g = erdos_renyi(32, 0.15, 5);
  make_connected(g, 6);
  run_event_sequence(g, /*seed=*/13, /*events=*/30,
                     /*rebuild_threshold=*/1.0);
}

TEST(RoutingRepair, RebuildOnlyThresholdZero) {
  // threshold = 0 makes every touched tree take the full-rebuild fallback;
  // results must not depend on which path ran.
  run_event_sequence(topo::abilene(), /*seed=*/3, /*events=*/25,
                     /*rebuild_threshold=*/0.0);
}

TEST(RoutingRepair, DeterministicTieBreakingOnEqualWeightGrid) {
  // A unit-weight grid is saturated with equal-cost ties; repair must pick
  // the same canonical parents (lowest id, then lowest edge id) as a full
  // build at every step.
  const Graph g = grid(5, 5);
  run_event_sequence(g, /*seed=*/55, /*events=*/30,
                     /*rebuild_threshold=*/0.25);
}

TEST(RoutingRepair, KillAndResurrectBridgeEdge) {
  // line 0-1-2: killing an edge partitions the graph; repair must produce
  // the same unreachable markers as a fresh build, and resurrection must
  // restore the original tables.
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  RoutingInstance inst(g, {});
  const RoutingInstance before(g, {});

  inst.recompute_edge(e01, kInfiniteWeight);
  std::vector<Weight> dead = g.weights();
  dead[static_cast<std::size_t>(e01)] = kInfiniteWeight;
  expect_identical(inst, RoutingInstance(g, dead));
  EXPECT_EQ(inst.distance(0, 2), kInfiniteWeight);
  EXPECT_EQ(inst.next_hop(0, 2), kInvalidNode);
  EXPECT_EQ(inst.next_hop_edge(0, 2), kInvalidEdge);

  inst.recompute_edge(e01, 1.0);
  expect_identical(inst, before);
}

TEST(RoutingRepair, NoOpEventTouchesNothing) {
  const Graph g = topo::abilene();
  RoutingInstance inst(g, {});
  const RepairStats stats = inst.recompute_edge(0, g.edge(0).weight);
  EXPECT_EQ(stats.trees_untouched, static_cast<long long>(g.node_count()));
  EXPECT_EQ(stats.trees_repaired, 0);
  EXPECT_EQ(stats.trees_rebuilt, 0);
  EXPECT_EQ(stats.nodes_touched, 0);
  expect_identical(inst, RoutingInstance(g, {}));
}

TEST(RoutingRepair, MultiInstanceEdgeEventMatchesRebuild) {
  const Graph g = topo::geant();
  ControlPlaneConfig cfg;
  cfg.slices = 4;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  cfg.seed = 11;
  const MultiInstanceRouting before(g, cfg);

  Rng rng(77);
  for (int i = 0; i < 4; ++i) {
    const auto e = static_cast<EdgeId>(
        rng.below(static_cast<std::uint64_t>(g.edge_count())));
    RepairStats stats;
    const MultiInstanceRouting after = before.with_edge_event(e, 1e18, &stats);
    EXPECT_EQ(stats.trees_untouched + stats.trees_repaired +
                  stats.trees_rebuilt,
              static_cast<long long>(cfg.slices) * g.node_count());

    // Oracle: rebuild each slice from scratch on the post-event weights.
    for (SliceId s = 0; s < cfg.slices; ++s) {
      std::vector<Weight> weights(before.slice(s).weights().begin(),
                                  before.slice(s).weights().end());
      weights[static_cast<std::size_t>(e)] = 1e18;
      expect_identical(after.slice(s), RoutingInstance(g, weights));
    }
    // The original control plane is untouched by with_edge_event.
    for (SliceId s = 0; s < cfg.slices; ++s) {
      std::vector<Weight> weights(before.slice(s).weights().begin(),
                                  before.slice(s).weights().end());
      expect_identical(before.slice(s), RoutingInstance(g, weights));
    }
  }
}

}  // namespace
}  // namespace splice
