// Min-cut (Stoer–Wagner) and max-flow (Dinic) tests, including the
// cross-check min over (s,t) pair connectivity == global edge connectivity.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/mincut.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(MinCut, TwoNodesOneEdge) {
  Graph g(2);
  g.add_edge(0, 1, 3.5);
  const MinCutResult r = global_min_cut(g);
  EXPECT_DOUBLE_EQ(r.weight, 3.5);
  EXPECT_EQ(r.partition.size(), 1u);
}

TEST(MinCut, RingHasCutTwo) {
  const Graph g = ring(6);
  EXPECT_EQ(edge_connectivity(g), 2);
}

TEST(MinCut, TreeHasCutOne) {
  const Graph g = random_tree(10, 3);
  EXPECT_EQ(edge_connectivity(g), 1);
}

TEST(MinCut, CompleteGraph) {
  const Graph g = complete(5);
  EXPECT_EQ(edge_connectivity(g), 4);
}

TEST(MinCut, DisconnectedGraphIsZero) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(edge_connectivity(g), 0);
}

TEST(MinCut, WeightedBottleneck) {
  // Two triangles joined by a single light edge.
  Graph g(6);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 0, 10.0);
  g.add_edge(3, 4, 10.0);
  g.add_edge(4, 5, 10.0);
  g.add_edge(5, 3, 10.0);
  g.add_edge(2, 3, 0.5);
  const MinCutResult r = global_min_cut(g);
  EXPECT_DOUBLE_EQ(r.weight, 0.5);
  EXPECT_EQ(r.partition.size(), 3u);
}

TEST(MinCut, ParallelEdgesAccumulate) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(edge_connectivity(g), 2);
}

TEST(MaxFlow, UnitPathIsOne) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_EQ(pair_edge_connectivity(g, 0, 2), 1);
}

TEST(MaxFlow, TwoDisjointPaths) {
  const Graph g = figure1_two_paths(2);
  // s = 0, t = 1: two vertex-disjoint paths.
  EXPECT_EQ(pair_edge_connectivity(g, 0, 1), 2);
}

TEST(MaxFlow, CompleteGraphPairConnectivity) {
  const Graph g = complete(6);
  EXPECT_EQ(pair_edge_connectivity(g, 0, 5), 5);
}

TEST(MaxFlow, DisconnectedPairIsZero) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(pair_edge_connectivity(g, 0, 2), 0);
}

TEST(MaxFlow, DirectedArcConnectivity) {
  Digraph d(4);
  d.add_arc(0, 1);
  d.add_arc(0, 2);
  d.add_arc(1, 3);
  d.add_arc(2, 3);
  EXPECT_EQ(pair_arc_connectivity(d, 0, 3), 2);
  EXPECT_EQ(pair_arc_connectivity(d, 3, 0), 0);
}

TEST(MaxFlow, DirectedSharedArcBottleneck) {
  Digraph d(4);
  d.add_arc(0, 1);
  d.add_arc(0, 1);  // parallel arcs both count
  d.add_arc(1, 2);
  d.add_arc(2, 3);
  EXPECT_EQ(pair_arc_connectivity(d, 0, 3), 1);
}

TEST(FlowNetwork, DirectedCapacities) {
  FlowNetwork net(3);
  net.add_arc(0, 1, 3);
  net.add_arc(1, 2, 2);
  EXPECT_EQ(net.max_flow(0, 2), 2);
}

// Property: global edge connectivity equals the min over t != 0 of
// pairwise edge connectivity from node 0 (standard Gomory-Hu style fact).
class CutFlowAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutFlowAgreement, GlobalCutEqualsMinPairwiseFlow) {
  Graph g = erdos_renyi(10, 0.35, GetParam());
  make_connected(g, GetParam() + 100);
  const int global = edge_connectivity(g);
  int min_pair = 1 << 30;
  for (NodeId t = 1; t < g.node_count(); ++t) {
    min_pair = std::min(min_pair, pair_edge_connectivity(g, 0, t));
  }
  EXPECT_EQ(global, min_pair);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutFlowAgreement,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(CutFlow, SprintTopologyIsTwoConnectedAtCore) {
  const Graph g = topo::sprint();
  // The Sprint reconstruction has degree-1 stubs? It should not: minimum
  // degree 2 was a design goal except Milwaukee (degree 1).
  EXPECT_GE(edge_connectivity(g), 1);
}

}  // namespace
}  // namespace splice
