// Experiment-harness tests on small configurations: shape invariants of
// every curve the paper plots (monotone in k, bounded by best-possible,
// zero at p=0), determinism, and the Appendix A/B harnesses.
#include "sim/experiments.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "topo/datasets.h"

namespace splice {
namespace {

ReliabilityConfig small_reliability_cfg() {
  ReliabilityConfig cfg;
  cfg.k_values = {1, 2, 3};
  cfg.p_values = {0.0, 0.05, 0.1};
  cfg.trials = 40;
  return cfg;
}

TEST(ReliabilityExperiment, ProducesFullGrid) {
  const auto curves =
      run_reliability_experiment(topo::geant(), small_reliability_cfg());
  EXPECT_EQ(curves.points.size(), 9u);         // 3 k x 3 p
  EXPECT_EQ(curves.best_possible.size(), 3u);  // one per p
}

TEST(ReliabilityExperiment, ZeroFailureMeansZeroDisconnection) {
  const auto curves =
      run_reliability_experiment(topo::geant(), small_reliability_cfg());
  for (const auto& pt : curves.points) {
    if (pt.p == 0.0) {
      EXPECT_DOUBLE_EQ(pt.mean_disconnected, 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(curves.best_possible.front().mean_disconnected, 0.0);
}

TEST(ReliabilityExperiment, MonotoneInK) {
  const auto curves =
      run_reliability_experiment(topo::sprint(), small_reliability_cfg());
  std::map<double, std::map<SliceId, double>> by_p;
  for (const auto& pt : curves.points)
    by_p[pt.p][pt.k] = pt.mean_disconnected;
  for (const auto& [p, by_k] : by_p) {
    double prev = 1.0;
    for (const auto& [k, frac] : by_k) {
      EXPECT_LE(frac, prev + 1e-12) << "p=" << p << " k=" << k;
      prev = frac;
    }
  }
}

TEST(ReliabilityExperiment, BoundedByBestPossible) {
  const auto curves =
      run_reliability_experiment(topo::sprint(), small_reliability_cfg());
  std::map<double, double> best;
  for (const auto& pt : curves.best_possible) best[pt.p] = pt.mean_disconnected;
  for (const auto& pt : curves.points) {
    EXPECT_GE(pt.mean_disconnected, best[pt.p] - 1e-12);
  }
}

TEST(ReliabilityExperiment, DeterministicPerSeed) {
  const auto a =
      run_reliability_experiment(topo::geant(), small_reliability_cfg());
  const auto b =
      run_reliability_experiment(topo::geant(), small_reliability_cfg());
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].mean_disconnected,
                     b.points[i].mean_disconnected);
  }
}

TEST(ReliabilityExperiment, MoreFailuresMoreDisconnection) {
  const auto curves =
      run_reliability_experiment(topo::sprint(), small_reliability_cfg());
  // For each k, the curve should rise (statistically) from p=0 to p=0.1.
  std::map<SliceId, std::map<double, double>> by_k;
  for (const auto& pt : curves.points) by_k[pt.k][pt.p] = pt.mean_disconnected;
  for (const auto& [k, curve] : by_k) {
    EXPECT_LT(curve.at(0.0), curve.at(0.1)) << "k=" << k;
  }
}

TEST(ReliabilityExperiment, NodeFailureModeBehaves) {
  ReliabilityConfig cfg = small_reliability_cfg();
  cfg.failure = FailureKind::kNode;
  const auto curves = run_reliability_experiment(topo::sprint(), cfg);
  EXPECT_EQ(curves.points.size(), 9u);
  for (const auto& pt : curves.points) {
    EXPECT_GE(pt.mean_disconnected, -1e-12);
    EXPECT_LE(pt.mean_disconnected, 1.0 + 1e-12);
    if (pt.p == 0.0) {
      EXPECT_DOUBLE_EQ(pt.mean_disconnected, 0.0);
    }
  }
  // Monotone in k under node failures too.
  std::map<double, std::map<SliceId, double>> by_p;
  for (const auto& pt : curves.points)
    by_p[pt.p][pt.k] = pt.mean_disconnected;
  for (const auto& [p, by_k] : by_p) {
    double prev = 1.0;
    for (const auto& [k, frac] : by_k) {
      EXPECT_LE(frac, prev + 1e-12) << "p=" << p << " k=" << k;
      prev = frac;
    }
  }
}

TEST(ReliabilityExperiment, DirectedSemanticsIsWeaker) {
  ReliabilityConfig undirected = small_reliability_cfg();
  ReliabilityConfig directed = small_reliability_cfg();
  directed.semantics = UnionSemantics::kDirectedForwarding;
  const auto u = run_reliability_experiment(topo::sprint(), undirected);
  const auto d = run_reliability_experiment(topo::sprint(), directed);
  ASSERT_EQ(u.points.size(), d.points.size());
  for (std::size_t i = 0; i < u.points.size(); ++i) {
    EXPECT_GE(d.points[i].mean_disconnected,
              u.points[i].mean_disconnected - 1e-12);
  }
}

RecoveryExperimentConfig small_recovery_cfg() {
  RecoveryExperimentConfig cfg;
  cfg.k_values = {1, 3};
  cfg.p_values = {0.0, 0.08};
  cfg.trials = 8;
  cfg.pair_sample = 60;
  return cfg;
}

TEST(RecoveryExperiment, ProducesFullGrid) {
  const auto points =
      run_recovery_experiment(topo::sprint(), small_recovery_cfg());
  EXPECT_EQ(points.size(), 4u);  // 2 k x 2 p
}

TEST(RecoveryExperiment, RecoveryBoundedByReliability) {
  // Unrecovered fraction can never drop below the spliced-disconnection
  // fraction (you cannot recover a pair with no surviving spliced path),
  // and never exceeds the initially-broken fraction.
  const auto points =
      run_recovery_experiment(topo::sprint(), small_recovery_cfg());
  for (const auto& pt : points) {
    EXPECT_GE(pt.frac_unrecovered, pt.frac_disconnected - 1e-12);
    EXPECT_LE(pt.frac_unrecovered, pt.frac_initial_broken + 1e-12);
  }
}

TEST(RecoveryExperiment, NoSplicingMeansNoRecovery) {
  const auto points =
      run_recovery_experiment(topo::sprint(), small_recovery_cfg());
  for (const auto& pt : points) {
    if (pt.k == 1) {
      EXPECT_DOUBLE_EQ(pt.frac_unrecovered, pt.frac_initial_broken);
    }
  }
}

TEST(RecoveryExperiment, ZeroFailureAllConnected) {
  const auto points =
      run_recovery_experiment(topo::sprint(), small_recovery_cfg());
  for (const auto& pt : points) {
    if (pt.p == 0.0) {
      EXPECT_DOUBLE_EQ(pt.frac_unrecovered, 0.0);
      EXPECT_DOUBLE_EQ(pt.frac_initial_broken, 0.0);
    }
  }
}

TEST(RecoveryExperiment, StretchAtLeastOneWhenPresent) {
  const auto points =
      run_recovery_experiment(topo::sprint(), small_recovery_cfg());
  for (const auto& pt : points) {
    if (pt.mean_stretch > 0.0) {
      EXPECT_GE(pt.mean_stretch, 1.0 - 1e-9);
      EXPECT_GE(pt.p99_stretch, pt.mean_stretch - 1e-9);
    }
    if (pt.mean_trials > 0.0) {
      EXPECT_GE(pt.mean_trials, 1.0);
      EXPECT_LE(pt.mean_trials, 5.0);
    }
  }
}

TEST(RecoveryExperiment, NetworkSchemeRuns) {
  RecoveryExperimentConfig cfg = small_recovery_cfg();
  cfg.recovery.scheme = RecoveryScheme::kNetworkDeflection;
  const auto points = run_recovery_experiment(topo::sprint(), cfg);
  for (const auto& pt : points) {
    EXPECT_GE(pt.frac_unrecovered, pt.frac_disconnected - 1e-12);
  }
}

TEST(RecoveryExperiment, ExhaustivePairsWhenSampleZero) {
  RecoveryExperimentConfig cfg = small_recovery_cfg();
  cfg.pair_sample = 0;
  cfg.p_values = {0.05};
  cfg.trials = 2;
  cfg.k_values = {2};
  const auto points = run_recovery_experiment(topo::geant(), cfg);
  ASSERT_EQ(points.size(), 1u);
}

TEST(RecoveryExperiment, NodeFailureModeBehaves) {
  RecoveryExperimentConfig cfg = small_recovery_cfg();
  cfg.failure = FailureKind::kNode;
  const auto points = run_recovery_experiment(topo::sprint(), cfg);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& pt : points) {
    EXPECT_GE(pt.frac_unrecovered, pt.frac_disconnected - 1e-12);
    EXPECT_LE(pt.frac_unrecovered, pt.frac_initial_broken + 1e-12);
    if (pt.p == 0.0) {
      EXPECT_DOUBLE_EQ(pt.frac_initial_broken, 0.0);
    }
  }
}

TEST(SliceStretchCensus, RowPerSlice) {
  const auto rows = run_slice_stretch_census(
      topo::geant(), 4, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NEAR(rows[0].stretch.mean, 1.0, 1e-9);  // slice 0 unperturbed
  for (const auto& row : rows) {
    EXPECT_GE(row.stretch.mean, 1.0 - 1e-9);
    EXPECT_LE(row.stretch.p99, 4.0 + 1e-9);  // bound: 1 + b
  }
}

TEST(ScalingExperiment, SmallSweepBehaves) {
  ScalingConfig cfg;
  cfg.sizes = {16, 32};
  cfg.trials = 10;
  cfg.max_k = 8;
  const auto points = run_scaling_experiment(cfg);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& pt : points) {
    EXPECT_GT(pt.edges, 0);
    EXPECT_GE(pt.k_needed, 1);
    EXPECT_LE(pt.k_needed, 9);
    EXPECT_GE(pt.achieved, pt.best_possible - 1e-12);
  }
}

TEST(StretchBoundExperiment, ChebyshevHolds) {
  StretchBoundConfig cfg;
  cfg.path_samples = 60;
  cfg.perturbation_samples = 100;
  const auto points = run_stretch_bound_experiment(topo::sprint(), cfg);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& pt : points) {
    EXPECT_DOUBLE_EQ(pt.bound, 1.0 / (pt.r * pt.r));
    // Theorem B.1: empirical violation probability is below the bound.
    EXPECT_LE(pt.empirical_violation, pt.bound + 0.02);
  }
}

TEST(StretchBoundExperiment, ViolationDecreasesWithR) {
  StretchBoundConfig cfg;
  cfg.r_values = {1.0, 2.0, 4.0};
  cfg.path_samples = 60;
  cfg.perturbation_samples = 100;
  const auto points = run_stretch_bound_experiment(topo::sprint(), cfg);
  EXPECT_GE(points[0].empirical_violation, points[1].empirical_violation);
  EXPECT_GE(points[1].empirical_violation, points[2].empirical_violation);
}

TEST(DiversityExperiment, GrowsWithK) {
  const auto points = run_diversity_experiment(
      topo::geant(), {1, 2, 4}, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1);
  ASSERT_EQ(points.size(), 3u);
  // Arcs and walk counts grow with k; FIB state grows exactly linearly.
  EXPECT_LT(points[0].mean_union_arcs, points[2].mean_union_arcs);
  EXPECT_LE(points[0].log10_paths, points[2].log10_paths);
  EXPECT_EQ(points[1].fib_entries, 2 * points[0].fib_entries);
  EXPECT_EQ(points[2].fib_entries, 4 * points[0].fib_entries);
  // k=1 tree: exactly one path to each destination.
  EXPECT_NEAR(points[0].log10_paths, 0.0, 1e-9);
  EXPECT_NEAR(points[0].mean_union_arcs,
              static_cast<double>(topo::geant().node_count() - 1), 1e-9);
}

}  // namespace
}  // namespace splice
