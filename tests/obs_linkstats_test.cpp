// Per-link × per-slice attribution equivalence suite. The batch kernels'
// hit()/drop() hooks must reproduce, exactly, what a straightforward
// per-hop walk of the legacy forwarding algorithm attributes: every
// committed hop to its (slice, edge) cell, every §4.3 deflection flagged,
// every dead end charged to the staged slice's dead primary link (invalid
// primaries stay unattributed). On top of the oracle:
//
//   * attribution on vs off must not perturb forwarding outcomes (the
//     hooks never alter the walk — bit-identical summaries);
//   * snapshots are byte-equal across 1/2/8 pipeline workers and across
//     the scalar/AVX2 kernels (the determinism contract);
//   * all-alive traversal counts equal the offline traffic/load.h
//     accumulation for the same demand set, edge by edge.
#include "obs/linkstats.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "dataplane/forward_kernel.h"
#include "dataplane/network.h"
#include "dataplane/shard_pipeline.h"
#include "graph/generators.h"
#include "obs/clock.h"
#include "routing/multi_instance.h"
#include "sim/batch_feed.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"
#include "traffic/demand.h"
#include "traffic/load.h"
#include "util/rng.h"

namespace splice {
namespace {

// ---------------------------------------------------------------------------
// Oracle: the pre-fast-path forwarding walk (dataplane_fastpath_test's
// legacy_forward) extended to attribute each hop and drop the way the
// kernel hooks specify.
// ---------------------------------------------------------------------------

struct CellCounts {
  std::uint64_t traversals = 0;
  std::uint64_t deflections = 0;
  std::uint64_t drops = 0;
  bool operator==(const CellCounts&) const = default;
};

/// (slice, edge) -> counts. std::map so equality is order-canonical.
using CellMap = std::map<std::pair<std::uint32_t, std::uint32_t>, CellCounts>;

SliceId oracle_default_slice(const FibSet& fibs, NodeId src, NodeId dst) {
  const auto k = static_cast<std::uint64_t>(fibs.slice_count());
  return static_cast<SliceId>(hash_mix(static_cast<std::uint64_t>(src),
                                       static_cast<std::uint64_t>(dst)) %
                              k);
}

void oracle_walk(const FibSet& fibs, std::span<const char> link_alive,
                 const Packet& packet, const ForwardingPolicy& policy,
                 CellMap& cells) {
  const auto alive = [&](EdgeId e) {
    return link_alive[static_cast<std::size_t>(e)] != 0;
  };
  if (packet.src == packet.dst) return;

  const SliceId k = fibs.slice_count();
  SpliceHeader header = packet.header;
  CounterHeader counter = packet.counter;
  SliceId current = oracle_default_slice(fibs, packet.src, packet.dst);
  NodeId node = packet.src;
  int ttl = packet.ttl;

  while (ttl-- > 0) {
    SliceId slice = current;
    if (const auto popped = header.pop(); popped.has_value()) {
      slice = static_cast<SliceId>(*popped % k);
    } else if (policy.exhaust == ExhaustPolicy::kHashDefault) {
      slice = oracle_default_slice(fibs, packet.src, packet.dst);
    }
    if (counter.active()) slice = counter.deflect(slice, k);

    FibEntry entry = fibs.lookup(slice, node, packet.dst);
    bool deflected = false;
    const bool usable = entry.valid() && alive(entry.edge);
    if (!usable) {
      if (policy.local_recovery == LocalRecovery::kDeflect) {
        for (SliceId s = 0; s < k && !deflected; ++s) {
          if (s == slice) continue;
          const FibEntry alt = fibs.lookup(s, node, packet.dst);
          if (alt.valid() && alive(alt.edge)) {
            entry = alt;
            slice = s;
            deflected = true;
          }
        }
      }
      if (!deflected) {
        // Dead end: entry/slice are still the staged slice's primary.
        if (entry.valid()) {
          ++cells[{static_cast<std::uint32_t>(slice),
                   static_cast<std::uint32_t>(entry.edge)}]
                .drops;
        }
        return;
      }
    }

    CellCounts& cell = cells[{static_cast<std::uint32_t>(slice),
                              static_cast<std::uint32_t>(entry.edge)}];
    ++cell.traversals;
    if (deflected) ++cell.deflections;
    node = entry.next_hop;
    current = slice;
    if (node == packet.dst) return;
  }
  // TTL expiry attributes nothing beyond the hops already committed.
}

struct EdgeTotals {
  std::uint64_t traversals = 0;
  std::uint64_t deflections = 0;
  std::uint64_t drops = 0;
  bool operator==(const EdgeTotals&) const = default;
};

std::map<std::uint32_t, EdgeTotals> edge_fold(const CellMap& cells) {
  std::map<std::uint32_t, EdgeTotals> out;
  for (const auto& [key, c] : cells) {
    EdgeTotals& t = out[key.second];
    t.traversals += c.traversals;
    t.deflections += c.deflections;
    t.drops += c.drops;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared environment (mirrors dataplane_fastpath_test).
// ---------------------------------------------------------------------------

struct Env {
  Graph g;
  MultiInstanceRouting mir;
  FibSet fibs;
  DataPlaneNetwork net;

  Env(Graph graph, SliceId k)
      : g(std::move(graph)),
        mir(g, ControlPlaneConfig{
                   k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false}),
        fibs(mir.build_fibs()),
        net(g, fibs) {}
};

std::vector<Graph> evaluation_topologies() {
  std::vector<Graph> out;
  out.push_back(topo::geant());
  out.push_back(topo::sprint());
  Graph er = erdos_renyi(36, 0.12, 42);
  make_connected(er, 43);
  out.push_back(std::move(er));
  return out;
}

class LinkStatsTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kNow = 5'000'000'000ull;

  void SetUp() override {
    clock_.set_ns(kNow);
    obs::set_global_clock(&clock_);
  }
  void TearDown() override {
    obs::LinkStats::set_enabled(false);
    obs::set_global_clock(nullptr);
  }

  /// Sizes and arms the global LinkStats for `g`; skips the test when the
  /// build compiled the instrumentation away (-DSPLICE_OBS=OFF).
  static void arm(const Graph& g, SliceId k) {
    obs::LinkStats& stats = obs::LinkStats::global();
    stats.configure(static_cast<std::uint32_t>(g.edge_count()),
                    static_cast<std::uint32_t>(k));
    std::vector<std::int32_t> src(static_cast<std::size_t>(g.edge_count()));
    std::vector<std::int32_t> dst(src.size());
    std::vector<double> weight(src.size());
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      src[static_cast<std::size_t>(e)] = static_cast<std::int32_t>(g.edge(e).u);
      dst[static_cast<std::size_t>(e)] = static_cast<std::int32_t>(g.edge(e).v);
      weight[static_cast<std::size_t>(e)] = g.edge(e).weight;
    }
    stats.set_topology(src, dst, weight);
    obs::LinkStats::set_enabled(true);
    if (!obs::LinkStats::enabled()) {
      GTEST_SKIP() << "SPLICE_OBS=OFF: attribution compiled out";
    }
  }

  obs::ManualClock clock_;
};

void expect_summaries_equal(std::span<const ForwardSummary> got,
                            std::span<const ForwardSummary> want,
                            const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].outcome, want[i].outcome) << what << " packet " << i;
    EXPECT_EQ(got[i].hops, want[i].hops) << what << " packet " << i;
    EXPECT_EQ(got[i].cost, want[i].cost) << what << " packet " << i;
    EXPECT_EQ(got[i].deflected, want[i].deflected) << what << " packet " << i;
  }
}

// ---------------------------------------------------------------------------
// Gating: a disabled LinkStats records nothing and hands out no scratch.
// ---------------------------------------------------------------------------

TEST_F(LinkStatsTest, DisabledRecordsNothing) {
  obs::LinkStats::set_enabled(false);
  EXPECT_EQ(obs::LinkScratch::acquire(), nullptr);

  Env env(topo::geant(), 3);
  BatchFeedConfig feed;
  feed.header_k = 3;
  feed.packets_per_trial = 64;
  std::vector<char> mask;
  std::vector<Packet> packets;
  fill_trial_batch(env.g, feed, 0xd15ab1ed, 0, mask, packets);
  env.net.set_link_mask(mask);
  std::vector<ForwardSummary> out(packets.size());
  env.net.forward_stats_batch(
      packets, {ExhaustPolicy::kStayInCurrent, LocalRecovery::kDeflect}, out);

  const obs::LinkSnapshot snap = obs::LinkStats::global().snapshot_at(kNow);
  EXPECT_EQ(snap.total_traversals, 0u);
  EXPECT_EQ(snap.total_deflections, 0u);
  EXPECT_EQ(snap.total_drops, 0u);
  EXPECT_TRUE(snap.links.empty());
}

// ---------------------------------------------------------------------------
// Oracle equivalence: every topology, both kernels, healthy and failed
// masks, deflection on and off — and attribution on/off never changes a
// forwarding outcome.
// ---------------------------------------------------------------------------

TEST_F(LinkStatsTest, BatchCountsMatchOracleWalkEverywhere) {
  const ForwardingPolicy policies[] = {
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kNone},
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kDeflect},
      {ExhaustPolicy::kHashDefault, LocalRecovery::kDeflect},
  };
  for (Graph& g : evaluation_topologies()) {
    for (const SliceId k : {SliceId{2}, SliceId{5}}) {
      Env env(g, k);
      arm(env.g, k);
      if (::testing::Test::IsSkipped()) return;

      BatchFeedConfig feed;
      feed.header_k = k;
      feed.packets_per_trial = 96;
      feed.counter_fraction = 0.25;
      std::vector<char> mask;
      std::vector<Packet> packets;
      ForwardWorkspace ws;
      int trial = 0;
      for (const double p_fail : {0.0, 0.35}) {
        feed.failure_p = p_fail;
        fill_trial_batch(env.g, feed, 0x11bb5 + static_cast<int>(k), trial++,
                         mask, packets);
        // src==dst short-circuits and TTL expiries in the mix: both must
        // attribute exactly what the walk committed, nothing more.
        for (std::size_t i = 0; i < packets.size(); ++i) {
          if (i % 11 == 10) packets[i].dst = packets[i].src;
          if (i % 7 == 0) packets[i].ttl = 4;
        }
        env.net.set_link_mask(mask);

        for (const ForwardingPolicy& policy : policies) {
          CellMap want_cells;
          for (const Packet& p : packets) {
            oracle_walk(env.fibs, env.net.link_mask(), p, policy, want_cells);
          }
          const auto want_edges = edge_fold(want_cells);

          // Off-run first: the outcome baseline attribution must not move.
          obs::LinkStats::set_enabled(false);
          std::vector<ForwardSummary> want(packets.size());
          env.net.forward_stats_batch(packets, policy, want, ws,
                                      fwdk::Kernel::kScalar);
          obs::LinkStats::set_enabled(true);

          for (const fwdk::Kernel kernel :
               {fwdk::Kernel::kScalar, fwdk::Kernel::kAvx2}) {
            obs::LinkStats::global().reset();
            std::vector<ForwardSummary> got(packets.size());
            env.net.forward_stats_batch(packets, policy, got, ws, kernel);
            expect_summaries_equal(got, want, fwdk::to_string(kernel));

            const obs::LinkSnapshot snap =
                obs::LinkStats::global().snapshot_at(kNow);

            // Per-(slice, edge) traversals.
            CellMap got_trav;
            std::map<std::uint32_t, EdgeTotals> got_edges;
            std::uint64_t total_trav = 0, total_defl = 0, total_drop = 0;
            for (const obs::LinkRow& row : snap.links) {
              ASSERT_EQ(row.slice_traversals.size(),
                        static_cast<std::size_t>(snap.k));
              std::uint64_t row_sum = 0;
              for (std::uint32_t s = 0; s < snap.k; ++s) {
                const std::uint64_t trav = row.slice_traversals[s];
                row_sum += trav;
                if (trav != 0) got_trav[{s, row.edge}].traversals = trav;
              }
              EXPECT_EQ(row_sum, row.traversals) << "edge " << row.edge;
              got_edges[row.edge] = EdgeTotals{row.traversals,
                                               row.deflections, row.drops};
              // Cost is derived, never accumulated: weight × traversals.
              EXPECT_EQ(row.cost,
                        row.weight * static_cast<double>(row.traversals))
                  << "edge " << row.edge;
              // One batch, one flush, one clock reading: the whole window
              // sits in the newest sparkline bucket.
              EXPECT_EQ(row.trav_buckets.back(), row.traversals);
              EXPECT_EQ(row.drop_buckets.back(), row.drops);
              total_trav += row.traversals;
              total_defl += row.deflections;
              total_drop += row.drops;
            }
            CellMap want_trav;
            for (const auto& [key, c] : want_cells) {
              if (c.traversals != 0) want_trav[key].traversals = c.traversals;
            }
            std::map<std::uint32_t, EdgeTotals> want_edges_nz;
            for (const auto& [e, t] : want_edges) {
              if (t != EdgeTotals{}) want_edges_nz[e] = t;
            }
            EXPECT_EQ(got_trav, want_trav)
                << fwdk::to_string(kernel) << " k=" << k
                << " p_fail=" << p_fail;
            EXPECT_EQ(got_edges, want_edges_nz)
                << fwdk::to_string(kernel) << " k=" << k
                << " p_fail=" << p_fail;
            EXPECT_EQ(snap.total_traversals, total_trav);
            EXPECT_EQ(snap.total_deflections, total_defl);
            EXPECT_EQ(snap.total_drops, total_drop);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: the JSON snapshot is byte-identical at 1/2/8 pipeline
// workers and across kernels — the relaxed merges are commutative integers
// and cost is derived, so no schedule can reorder a result into view.
// ---------------------------------------------------------------------------

TEST_F(LinkStatsTest, SnapshotBitIdenticalAcrossWorkerCountsAndKernels) {
  Env env(topo::sprint(), 5);
  arm(env.g, 5);
  if (::testing::Test::IsSkipped()) return;

  const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                LocalRecovery::kDeflect};
  BatchFeedConfig feed;
  feed.header_k = 5;
  feed.packets_per_trial = 1024;
  feed.failure_p = 0.2;
  feed.counter_fraction = 0.2;

  std::string reference;
  for (const fwdk::Kernel kernel :
       {fwdk::Kernel::kScalar, fwdk::Kernel::kAvx2}) {
    for (const int workers : {1, 2, 8}) {
      obs::LinkStats::global().reset();
      ShardPipeline pipe(env.net, workers, kernel);
      std::vector<char> mask;
      std::vector<Packet> packets;
      for (int t = 0; t < 3; ++t) {
        fill_trial_batch(env.g, feed, 0xca11ab1e, t, mask, packets);
        pipe.set_link_mask(mask);
        std::vector<ForwardSummary> out(packets.size());
        pipe.forward_stats_batch(packets, policy, out);
      }
      const std::string body =
          obs::links_json_body(obs::LinkStats::global().snapshot_at(kNow));
      if (reference.empty()) {
        reference = body;
        EXPECT_NE(body.find("\"links\""), std::string::npos);
      } else {
        EXPECT_EQ(body, reference)
            << fwdk::to_string(kernel) << " workers=" << workers;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Offline cross-check: with every link alive, per-edge traversal counts
// equal traffic/load.h's route_demands accumulation for unit demands over
// all ordered pairs (same tables, same empty-header Algorithm 1 walk).
// ---------------------------------------------------------------------------

TEST_F(LinkStatsTest, AllAliveCountsMatchRouteDemands) {
  SplicerConfig cfg;
  cfg.slices = 5;
  cfg.seed = 11;
  Splicer splicer(topo::geant(), cfg);
  const NodeId n = splicer.graph().node_count();

  TrafficMatrix demands(n);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s != d) demands.set_demand(s, d, 1.0);
    }
  }
  // Offline pass while attribution is off (kHashSpread never touches the
  // rng, so the shared Rng cannot skew the comparison).
  obs::LinkStats::set_enabled(false);
  Rng rng(1);
  const LinkLoads loads =
      route_demands(splicer, demands, SliceSelection::kHashSpread, rng);
  EXPECT_EQ(loads.undelivered, 0.0);

  arm(splicer.graph(), cfg.slices);
  if (::testing::Test::IsSkipped()) return;
  obs::LinkStats::global().reset();

  std::vector<Packet> packets;
  packets.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      Packet p;
      p.src = s;
      p.dst = d;  // empty header: Hash(src, dst) every hop, as kHashSpread
      packets.push_back(p);
    }
  }
  std::vector<ForwardSummary> out(packets.size());
  splicer.network().forward_stats_batch(packets, ForwardingPolicy{}, out);
  for (const ForwardSummary& s : out) {
    ASSERT_EQ(s.outcome, ForwardOutcome::kDelivered);
  }

  const obs::LinkSnapshot snap = obs::LinkStats::global().snapshot_at(kNow);
  EXPECT_EQ(snap.total_deflections, 0u);
  EXPECT_EQ(snap.total_drops, 0u);

  std::vector<std::uint64_t> got(loads.load.size(), 0);
  for (const obs::LinkRow& row : snap.links) {
    got[row.edge] = row.traversals;
  }
  for (std::size_t e = 0; e < loads.load.size(); ++e) {
    EXPECT_EQ(static_cast<double>(got[e]), loads.load[e]) << "edge " << e;
  }
}

}  // namespace
}  // namespace splice
