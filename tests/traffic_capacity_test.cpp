// Capacity/utilization tests.
#include "traffic/capacity.h"

#include <gtest/gtest.h>

#include "topo/datasets.h"

namespace splice {
namespace {

struct CapFixture {
  CapFixture()
      : splicer(topo::geant(), SplicerConfig{.slices = 4, .seed = 5}) {}
  Splicer splicer;
  Rng rng{9};
};

TEST(Provisioning, HeadroomAndFloor) {
  LinkLoads loads;
  loads.load = {10.0, 0.0, 4.0};
  const CapacityPlan plan = provision_capacities(loads, 1.5, 2.0);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_DOUBLE_EQ(plan[0], 15.0);
  EXPECT_DOUBLE_EQ(plan[1], 2.0);  // floor
  EXPECT_DOUBLE_EQ(plan[2], 6.0);
}

TEST(Utilization, BasicMath) {
  LinkLoads loads;
  loads.load = {5.0, 20.0};
  loads.undelivered = 3.0;
  const UtilizationReport r = evaluate_utilization(loads, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(r.utilization[0], 0.5);
  EXPECT_DOUBLE_EQ(r.utilization[1], 2.0);
  EXPECT_DOUBLE_EQ(r.max_utilization, 2.0);
  EXPECT_DOUBLE_EQ(r.mean_utilization, 1.25);
  EXPECT_EQ(r.overloaded_links, 1);
  EXPECT_DOUBLE_EQ(r.undelivered, 3.0);
}

TEST(Utilization, SteadyStateMatchesHeadroom) {
  // Provisioning at headroom h puts every loaded link at utilization 1/h.
  CapFixture f;
  const TrafficMatrix tm = uniform_demands(f.splicer.graph());
  const LinkLoads loads =
      route_demands(f.splicer, tm, SliceSelection::kPinnedShortest, f.rng);
  const CapacityPlan plan = provision_capacities(loads, 2.0);
  const UtilizationReport r = evaluate_utilization(loads, plan);
  EXPECT_NEAR(r.max_utilization, 0.5, 1e-9);
  EXPECT_EQ(r.overloaded_links, 0);
}

TEST(Utilization, FailureSpikeIsBoundedAndRestoresState) {
  CapFixture f;
  const Graph& g = f.splicer.graph();
  const TrafficMatrix tm = uniform_demands(g);
  // Find a loaded link to fail.
  const LinkLoads base =
      route_demands(f.splicer, tm, SliceSelection::kPinnedShortest, f.rng);
  EdgeId hot = 0;
  for (EdgeId e = 1; e < g.edge_count(); ++e) {
    if (base.load[static_cast<std::size_t>(e)] >
        base.load[static_cast<std::size_t>(hot)])
      hot = e;
  }
  const UtilizationReport spike = failure_utilization_spike(
      f.splicer, tm, SliceSelection::kPinnedShortest, 2.0, hot, f.rng);
  // The failed link carries nothing afterwards.
  EXPECT_DOUBLE_EQ(spike.utilization[static_cast<std::size_t>(hot)], 0.0);
  // Some link absorbed extra traffic: max utilization above steady 0.5.
  EXPECT_GT(spike.max_utilization, 0.5);
  // Network state restored.
  EXPECT_TRUE(f.splicer.network().link_alive(hot));
}

TEST(Utilization, HashSpreadSpikesLessThanSinglePath) {
  // §5's operational claim at the utilization level: with demand spread
  // across slices in steady state, the post-failure spike (relative to
  // each mode's own provisioning) is no worse than single-path routing's,
  // aggregated over the three hottest links.
  CapFixture f;
  const Graph& g = f.splicer.graph();
  const TrafficMatrix tm = uniform_demands(g);
  const LinkLoads base =
      route_demands(f.splicer, tm, SliceSelection::kPinnedShortest, f.rng);
  std::vector<EdgeId> order(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    order[static_cast<std::size_t>(e)] = e;
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return base.load[static_cast<std::size_t>(a)] >
           base.load[static_cast<std::size_t>(b)];
  });
  double single_total = 0.0;
  double spread_total = 0.0;
  for (int i = 0; i < 3; ++i) {
    single_total += failure_utilization_spike(
                        f.splicer, tm, SliceSelection::kPinnedShortest, 2.0,
                        order[static_cast<std::size_t>(i)], f.rng)
                        .max_utilization;
    spread_total += failure_utilization_spike(
                        f.splicer, tm, SliceSelection::kHashSpread, 2.0,
                        order[static_cast<std::size_t>(i)], f.rng)
                        .max_utilization;
  }
  EXPECT_LE(spread_total, single_total * 1.25);
}

}  // namespace
}  // namespace splice
