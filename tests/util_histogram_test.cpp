// Histogram/CDF tests.
#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace splice {
namespace {

TEST(Histogram, BinningBasics) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(4), 1);
  EXPECT_EQ(h.count(2), 0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.total(), 2);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CdfMonotoneAndComplete) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double prev = 0.0;
  for (int i = 0; i < h.bins(); ++i) {
    EXPECT_GE(h.cdf_at(i), prev);
    prev = h.cdf_at(i);
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(h.bins() - 1), 1.0);
}

TEST(Histogram, QuantileEdges) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.quantile_edge(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile_edge(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile_edge(0.05), 10.0);
}

TEST(Histogram, EmptyCdfIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.cdf_at(3), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_edge(0.5), 1.0);  // never reached -> hi
}

TEST(Histogram, RenderContainsRows) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(6.0);
  h.add(7.0);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("#"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

}  // namespace
}  // namespace splice
