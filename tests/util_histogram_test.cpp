// Histogram/CDF tests.
#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace splice {
namespace {

TEST(Histogram, BinningBasics) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(4), 1);
  EXPECT_EQ(h.count(2), 0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.total(), 2);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CdfMonotoneAndComplete) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double prev = 0.0;
  for (int i = 0; i < h.bins(); ++i) {
    EXPECT_GE(h.cdf_at(i), prev);
    prev = h.cdf_at(i);
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(h.bins() - 1), 1.0);
}

TEST(Histogram, QuantileEdges) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.quantile_edge(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile_edge(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile_edge(0.05), 10.0);
}

TEST(Histogram, EmptyCdfIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.cdf_at(3), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_edge(0.5), 1.0);  // never reached -> hi
}

TEST(Histogram, CumulativeMatchesBruteForceUnderInterleavedAdds) {
  // The cached prefix sums must stay coherent when adds and cdf queries
  // interleave (every add invalidates the cache).
  Histogram h(0.0, 50.0, 25);
  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 30; ++i) h.add(rng.uniform() * 60.0 - 5.0);
    for (int b = 0; b < h.bins(); ++b) {
      long long brute = 0;
      for (int j = 0; j <= b; ++j) brute += h.count(j);
      ASSERT_EQ(h.cumulative(b), brute) << "round " << round << " bin " << b;
      ASSERT_DOUBLE_EQ(h.cdf_at(b),
                       static_cast<double>(brute) /
                           static_cast<double>(h.total()));
    }
  }
}

TEST(Histogram, TracksSampleSum) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(-4.0);   // clamped into bin 0, but the sum sees the raw value
  h.add(25.5);
  EXPECT_DOUBLE_EQ(h.sum(), 22.5);
}

TEST(Histogram, MergeAddsCountsTotalsAndSums) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  Rng rng(3);
  Histogram serial(0.0, 10.0, 5);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform() * 12.0 - 1.0;
    (i % 2 ? a : b).add(x);
    serial.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), serial.total());
  for (int i = 0; i < serial.bins(); ++i) {
    EXPECT_EQ(a.count(i), serial.count(i)) << "bin " << i;
    EXPECT_EQ(a.cumulative(i), serial.cumulative(i)) << "bin " << i;
  }
  // Sums differ only by addition order; for half/half interleaving of
  // bounded values the difference must be tiny.
  EXPECT_NEAR(a.sum(), serial.sum(), 1e-9 * std::abs(serial.sum()));
}

TEST(Histogram, MergeAfterCdfQueryInvalidatesPrefix) {
  Histogram a(0.0, 4.0, 4);
  Histogram b(0.0, 4.0, 4);
  a.add(0.5);
  EXPECT_EQ(a.cumulative(3), 1);  // builds the prefix cache
  b.add(3.5);
  a.merge(b);
  EXPECT_EQ(a.cumulative(2), 1);
  EXPECT_EQ(a.cumulative(3), 2);  // cache refreshed after merge
}

TEST(Histogram, FromCountsRebuildsDerivedState) {
  const Histogram h = Histogram::from_counts(0.0, 8.0, {1, 0, 2, 5}, 19.0);
  EXPECT_EQ(h.bins(), 4);
  EXPECT_EQ(h.total(), 8);
  EXPECT_DOUBLE_EQ(h.sum(), 19.0);
  EXPECT_EQ(h.cumulative(3), 8);
  EXPECT_DOUBLE_EQ(h.cdf_at(1), 1.0 / 8.0);
}

TEST(Histogram, BinIndexSharedRuleClampsAndSplitsEdges) {
  EXPECT_EQ(Histogram::bin_index(0.0, 10.0, 5, -1.0), 0);
  EXPECT_EQ(Histogram::bin_index(0.0, 10.0, 5, 0.0), 0);
  EXPECT_EQ(Histogram::bin_index(0.0, 10.0, 5, 2.0), 1);  // edges go up
  EXPECT_EQ(Histogram::bin_index(0.0, 10.0, 5, 9.999), 4);
  EXPECT_EQ(Histogram::bin_index(0.0, 10.0, 5, 10.0), 4);
  EXPECT_EQ(Histogram::bin_index(0.0, 10.0, 5, 1e9), 4);
  // add() must agree with the static rule.
  Histogram h(0.0, 10.0, 5);
  h.add(2.0);
  EXPECT_EQ(h.count(Histogram::bin_index(0.0, 10.0, 5, 2.0)), 1);
}

TEST(Histogram, RenderContainsRows) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(6.0);
  h.add(7.0);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("#"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

}  // namespace
}  // namespace splice
