// Tests for the Graph and Digraph containers.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/digraph.h"

namespace splice {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_FALSE(g.valid_node(0));
}

TEST(Graph, AddNodesAndNames) {
  Graph g;
  const NodeId a = g.add_node("alpha");
  const NodeId b = g.add_node();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(g.name(a), "alpha");
  EXPECT_EQ(g.name(b), "");
  g.set_name(b, "beta");
  EXPECT_EQ(g.name(b), "beta");
  EXPECT_EQ(g.find_node("alpha"), a);
  EXPECT_EQ(g.find_node("beta"), b);
  EXPECT_EQ(g.find_node("gamma"), kInvalidNode);
}

TEST(Graph, AddNodesBulk) {
  Graph g;
  const NodeId first = g.add_nodes(5);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.add_nodes(0), 5);  // no-op returns next id
}

TEST(Graph, AddEdgeUpdatesAdjacency) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.edge(e).u, 0);
  EXPECT_EQ(g.edge(e).v, 1);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].neighbor, 1);
  EXPECT_EQ(g.neighbors(0)[0].edge, e);
  ASSERT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(1)[0].neighbor, 0);
  EXPECT_EQ(g.neighbors(2).size(), 0u);
}

TEST(Graph, DegreeCountsParallelEdges) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.edge_count(), 2);
}

TEST(Graph, EdgeOther) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  EXPECT_EQ(g.edge(e).other(0), 1);
  EXPECT_EQ(g.edge(e).other(1), 0);
}

TEST(Graph, FindEdge) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  EXPECT_EQ(g.find_edge(0, 1), e);
  EXPECT_EQ(g.find_edge(1, 0), e);
  EXPECT_EQ(g.find_edge(0, 2), kInvalidEdge);
}

TEST(Graph, WeightsVectorAndSetWeight) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 4.0);
  auto w = g.weights();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[1], 4.0);
  g.set_weight(1, 6.0);
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 6.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 7.0);
}

TEST(Graph, CopyIsIndependent) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  Graph copy = g;
  copy.add_node("extra");
  copy.add_edge(0, 2, 1.0);
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(copy.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(copy.edge_count(), 2);
}

TEST(GraphDeath, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(0, 0, 1.0), "Precondition");
}

TEST(GraphDeath, RejectsNonPositiveWeight) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(0, 1, 0.0), "Precondition");
  EXPECT_DEATH(g.add_edge(0, 1, -1.0), "Precondition");
}

TEST(GraphDeath, RejectsInvalidEndpoint) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(0, 5, 1.0), "Precondition");
}

TEST(Digraph, AddArcAndSuccessors) {
  Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(0, 2);
  d.add_arc(1, 2);
  EXPECT_EQ(d.arc_count(), 3u);
  EXPECT_EQ(d.successors(0).size(), 2u);
  EXPECT_EQ(d.successors(2).size(), 0u);
}

TEST(Digraph, AddArcUniqueDedups) {
  Digraph d(2);
  EXPECT_TRUE(d.add_arc_unique(0, 1));
  EXPECT_FALSE(d.add_arc_unique(0, 1));
  EXPECT_EQ(d.arc_count(), 1u);
}

TEST(Digraph, ReachabilityFollowsDirection) {
  Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  EXPECT_TRUE(has_directed_path(d, 0, 2));
  EXPECT_FALSE(has_directed_path(d, 2, 0));
  EXPECT_TRUE(has_directed_path(d, 1, 1));  // trivially
}

TEST(Digraph, ReachableFromMarksAll) {
  Digraph d(4);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  const auto seen = reachable_from(d, 0);
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_FALSE(seen[3]);
}

TEST(Digraph, CanReachIsReverseReachability) {
  Digraph d(4);
  d.add_arc(0, 2);
  d.add_arc(1, 2);
  d.add_arc(2, 3);
  const auto seen = can_reach(d, 3);
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_TRUE(seen[3]);
  const auto seen2 = can_reach(d, 0);
  EXPECT_TRUE(seen2[0]);
  EXPECT_FALSE(seen2[1]);
}

TEST(Digraph, HandlesCycles) {
  Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 0);
  d.add_arc(1, 2);
  EXPECT_TRUE(has_directed_path(d, 0, 2));
  const auto seen = reachable_from(d, 0);
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

}  // namespace
}  // namespace splice
