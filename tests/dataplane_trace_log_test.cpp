// Trace-log tests: formatting, parsing round-trip, log statistics.
#include "dataplane/trace_log.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "routing/multi_instance.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"

namespace splice {
namespace {

struct TraceFixture {
  TraceFixture() : splicer(topo::abilene(), SplicerConfig{.slices = 3, .seed = 2}) {}
  Splicer splicer;
};

TEST(FormatTrace, DeliveredRecordFields) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  const Delivery d = f.splicer.send(0, 10, f.splicer.make_pinned_header(0));
  ASSERT_TRUE(d.delivered());
  const std::string line = format_trace(g, 0, 10, d);
  EXPECT_NE(line.find("DELIVERED"), std::string::npos);
  EXPECT_NE(line.find("src=Seattle"), std::string::npos);
  EXPECT_NE(line.find("dst=NewYork"), std::string::npos);
  EXPECT_NE(line.find("path=Seattle-"), std::string::npos);
  EXPECT_EQ(line.find("deflected="), std::string::npos);
}

TEST(FormatTrace, ZeroHopDelivery) {
  TraceFixture f;
  const Delivery d = f.splicer.send(4, 4);
  const std::string line = format_trace(f.splicer.graph(), 4, 4, d);
  EXPECT_NE(line.find("hops=0"), std::string::npos);
  EXPECT_NE(line.find("path=KansasCity"), std::string::npos);
}

TEST(FormatTrace, DeadEndAndDeflectionMarkers) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  const Delivery normal = f.splicer.send(0, 10, f.splicer.make_pinned_header(0));
  ASSERT_TRUE(normal.delivered());
  f.splicer.network().set_link_state(normal.hops[1].edge, false);

  const Delivery dead =
      f.splicer.send(0, 10, f.splicer.make_pinned_header(0));
  if (!dead.delivered()) {
    EXPECT_NE(format_trace(g, 0, 10, dead).find("DEAD_END"),
              std::string::npos);
  }
  ForwardingPolicy deflect;
  deflect.local_recovery = LocalRecovery::kDeflect;
  const Delivery recovered =
      f.splicer.send(0, 10, f.splicer.make_pinned_header(0), deflect);
  if (recovered.delivered()) {
    bool any = false;
    for (const HopRecord& h : recovered.hops) any |= h.deflected;
    if (any) {
      EXPECT_NE(format_trace(g, 0, 10, recovered).find("deflected="),
                std::string::npos);
    }
  }
}

TEST(ParseTrace, RoundTripsFormattedRecords) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto src = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(g.node_count())));
    auto dst = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(g.node_count())));
    if (src == dst) dst = (dst + 1) % g.node_count();
    const Delivery d = f.splicer.send(src, dst, f.splicer.make_random_header(rng));
    const std::string line = format_trace(g, src, dst, d);
    const ParsedTrace t = parse_trace(line);
    EXPECT_EQ(t.outcome, d.outcome);
    EXPECT_EQ(t.hops, d.hop_count());
    EXPECT_EQ(t.src, g.name(src));
    EXPECT_EQ(t.dst, g.name(dst));
    ASSERT_EQ(t.slices.size(), d.hops.size());
    for (std::size_t h = 0; h < d.hops.size(); ++h) {
      EXPECT_EQ(t.slices[h], d.hops[h].slice);
      EXPECT_EQ(t.path[h + 1], g.name(d.hops[h].next));
    }
  }
}

TEST(ParseTrace, RejectsMalformed) {
  EXPECT_THROW(parse_trace(""), std::invalid_argument);
  EXPECT_THROW(parse_trace("WAT src=a dst=b path=a"), std::invalid_argument);
  EXPECT_THROW(parse_trace("DELIVERED src=a"), std::invalid_argument);
  EXPECT_THROW(parse_trace("DELIVERED src=a dst=b hops=2 slices=0 path=a-b"),
               std::invalid_argument);  // hop-count mismatch
  EXPECT_THROW(
      parse_trace("DELIVERED src=a dst=b hops=0 slices= path=a frob=1"),
      std::invalid_argument);
}

TEST(TraceLog, AccumulatesStatistics) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  TraceLog log(g);
  Rng rng(5);
  int sent = 0;
  for (NodeId src = 0; src < g.node_count(); ++src) {
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      if (src == dst) continue;
      const Delivery d =
          f.splicer.send(src, dst, f.splicer.make_random_header(rng));
      log.record(src, dst, d);
      ++sent;
    }
  }
  EXPECT_EQ(log.size(), static_cast<std::size_t>(sent));
  EXPECT_EQ(log.delivered(), sent);  // intact network
  EXPECT_EQ(log.dead_ends() + log.ttl_expired(), 0);
  EXPECT_GT(log.total_hops(), sent);  // multi-hop network
  const std::string rendered = log.render();
  EXPECT_NE(rendered.find("# traces="), std::string::npos);
  // Every line parses.
  std::size_t start = 0;
  int parsed = 0;
  while (start < rendered.size()) {
    const std::size_t end = rendered.find('\n', start);
    const std::string line = rendered.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NO_THROW(parse_trace(line));
      ++parsed;
    }
    start = end + 1;
  }
  EXPECT_EQ(parsed, sent);
}

TEST(TraceLog, CountsDeadEndsUnderFailures) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  // Isolate a node: all sends toward it dead-end.
  for (const Incidence& inc : g.neighbors(5)) {
    f.splicer.network().set_link_state(inc.edge, false);
  }
  TraceLog log(g);
  for (NodeId src = 0; src < g.node_count(); ++src) {
    if (src == 5) continue;
    log.record(src, 5, f.splicer.send(src, 5, f.splicer.make_pinned_header(0)));
  }
  EXPECT_EQ(log.delivered(), 0);
  EXPECT_EQ(log.dead_ends(), g.node_count() - 1);
}

}  // namespace
}  // namespace splice
