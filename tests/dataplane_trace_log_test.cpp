// Trace-log tests: formatting, parsing round-trip, log statistics.
#include "dataplane/trace_log.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "dataplane/network.h"
#include "obs/metrics.h"
#include "routing/multi_instance.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

struct TraceFixture {
  TraceFixture() : splicer(topo::abilene(), SplicerConfig{.slices = 3, .seed = 2}) {}
  Splicer splicer;
};

TEST(FormatTrace, DeliveredRecordFields) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  const Delivery d = f.splicer.send(0, 10, f.splicer.make_pinned_header(0));
  ASSERT_TRUE(d.delivered());
  const std::string line = format_trace(g, 0, 10, d);
  EXPECT_NE(line.find("DELIVERED"), std::string::npos);
  EXPECT_NE(line.find("src=Seattle"), std::string::npos);
  EXPECT_NE(line.find("dst=NewYork"), std::string::npos);
  EXPECT_NE(line.find("path=Seattle-"), std::string::npos);
  EXPECT_EQ(line.find("deflected="), std::string::npos);
}

TEST(FormatTrace, ZeroHopDelivery) {
  TraceFixture f;
  const Delivery d = f.splicer.send(4, 4);
  const std::string line = format_trace(f.splicer.graph(), 4, 4, d);
  EXPECT_NE(line.find("hops=0"), std::string::npos);
  EXPECT_NE(line.find("path=KansasCity"), std::string::npos);
}

TEST(FormatTrace, DeadEndAndDeflectionMarkers) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  const Delivery normal = f.splicer.send(0, 10, f.splicer.make_pinned_header(0));
  ASSERT_TRUE(normal.delivered());
  f.splicer.network().set_link_state(normal.hops[1].edge, false);

  const Delivery dead =
      f.splicer.send(0, 10, f.splicer.make_pinned_header(0));
  if (!dead.delivered()) {
    EXPECT_NE(format_trace(g, 0, 10, dead).find("DEAD_END"),
              std::string::npos);
  }
  ForwardingPolicy deflect;
  deflect.local_recovery = LocalRecovery::kDeflect;
  const Delivery recovered =
      f.splicer.send(0, 10, f.splicer.make_pinned_header(0), deflect);
  if (recovered.delivered()) {
    bool any = false;
    for (const HopRecord& h : recovered.hops) any |= h.deflected;
    if (any) {
      EXPECT_NE(format_trace(g, 0, 10, recovered).find("deflected="),
                std::string::npos);
    }
  }
}

TEST(ParseTrace, RoundTripsFormattedRecords) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto src = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(g.node_count())));
    auto dst = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(g.node_count())));
    if (src == dst) dst = (dst + 1) % g.node_count();
    const Delivery d = f.splicer.send(src, dst, f.splicer.make_random_header(rng));
    const std::string line = format_trace(g, src, dst, d);
    const ParsedTrace t = parse_trace(line);
    EXPECT_EQ(t.outcome, d.outcome);
    EXPECT_EQ(t.hops, d.hop_count());
    EXPECT_EQ(t.src, g.name(src));
    EXPECT_EQ(t.dst, g.name(dst));
    ASSERT_EQ(t.slices.size(), d.hops.size());
    for (std::size_t h = 0; h < d.hops.size(); ++h) {
      EXPECT_EQ(t.slices[h], d.hops[h].slice);
      EXPECT_EQ(t.path[h + 1], g.name(d.hops[h].next));
    }
  }
}

TEST(ParseTrace, RejectsMalformed) {
  EXPECT_THROW(parse_trace(""), std::invalid_argument);
  EXPECT_THROW(parse_trace("WAT src=a dst=b path=a"), std::invalid_argument);
  EXPECT_THROW(parse_trace("DELIVERED src=a"), std::invalid_argument);
  EXPECT_THROW(parse_trace("DELIVERED src=a dst=b hops=2 slices=0 path=a-b"),
               std::invalid_argument);  // hop-count mismatch
  EXPECT_THROW(
      parse_trace("DELIVERED src=a dst=b hops=0 slices= path=a frob=1"),
      std::invalid_argument);
}

TEST(TraceLog, AccumulatesStatistics) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  TraceLog log(g);
  Rng rng(5);
  int sent = 0;
  for (NodeId src = 0; src < g.node_count(); ++src) {
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      if (src == dst) continue;
      const Delivery d =
          f.splicer.send(src, dst, f.splicer.make_random_header(rng));
      log.record(src, dst, d);
      ++sent;
    }
  }
  EXPECT_EQ(log.size(), static_cast<std::size_t>(sent));
  EXPECT_EQ(log.delivered(), sent);  // intact network
  EXPECT_EQ(log.dead_ends() + log.ttl_expired(), 0);
  EXPECT_GT(log.total_hops(), sent);  // multi-hop network
  const std::string rendered = log.render();
  EXPECT_NE(rendered.find("# traces="), std::string::npos);
  // Every line parses.
  std::size_t start = 0;
  int parsed = 0;
  while (start < rendered.size()) {
    const std::size_t end = rendered.find('\n', start);
    const std::string line = rendered.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NO_THROW(parse_trace(line));
      ++parsed;
    }
    start = end + 1;
  }
  EXPECT_EQ(parsed, sent);
}

/// Builds a syntactically valid Delivery from a random walk on `g` —
/// arbitrary outcome, slice labels and deflection patterns, so the
/// round-trip test covers combinations the simulator reaches rarely.
Delivery random_walk_delivery(const Graph& g, NodeId src, int max_hops,
                              ForwardOutcome outcome, Rng& rng) {
  Delivery d;
  d.outcome = outcome;
  NodeId at = src;
  for (int h = 0; h < max_hops; ++h) {
    const auto& inc = g.neighbors(at);
    if (inc.empty()) break;
    const Incidence& step =
        inc[static_cast<std::size_t>(rng.below(inc.size()))];
    HopRecord hop;
    hop.node = at;
    hop.next = step.neighbor;
    hop.edge = step.edge;
    hop.slice = static_cast<SliceId>(rng.below(5));
    hop.deflected = rng.below(3) == 0;
    d.hops.push_back(hop);
    at = step.neighbor;
  }
  return d;
}

void expect_exact_round_trip(const Graph& g, NodeId src, NodeId dst,
                             const Delivery& d) {
  const std::string line = format_trace(g, src, dst, d);
  const ParsedTrace t = parse_trace(line);
  EXPECT_EQ(t.outcome, d.outcome);
  EXPECT_EQ(t.hops, d.hop_count());
  // Cost round-trips bit for bit: format_trace writes the shortest
  // representation that parses back to the exact double.
  EXPECT_EQ(t.cost, trace_cost(g, d)) << line;
  auto label = [&](NodeId v) {
    return g.name(v).empty() ? std::to_string(v) : g.name(v);
  };
  EXPECT_EQ(t.src, label(src));
  EXPECT_EQ(t.dst, label(dst));
  ASSERT_EQ(t.path.size(), d.hops.size() + 1);
  EXPECT_EQ(t.path[0], label(src));
  std::vector<int> expect_deflected;
  for (std::size_t h = 0; h < d.hops.size(); ++h) {
    EXPECT_EQ(t.slices[h], d.hops[h].slice);
    EXPECT_EQ(t.path[h + 1], label(d.hops[h].next));
    if (d.hops[h].deflected) expect_deflected.push_back(static_cast<int>(h));
  }
  EXPECT_EQ(t.deflected_hops, expect_deflected);
}

TEST(ParseTrace, ExactRoundTripRandomizedAllOutcomes) {
  // Fractional weights make trace costs non-representable sums — the case
  // the old 6-significant-digit cost formatting truncated.
  Graph named;
  for (int i = 0; i < 8; ++i) named.add_node("n" + std::to_string(i));
  Graph unnamed(8);
  Rng wrng(3);
  for (Graph* g : {&named, &unnamed}) {
    for (NodeId u = 0; u < 8; ++u) {
      for (NodeId v = u + 1; v < 8; ++v) {
        if (wrng.below(2) == 0) {
          g->add_edge(u, v, 0.1 + 0.3 * static_cast<double>(wrng.below(10)));
        }
      }
    }
  }
  constexpr ForwardOutcome kOutcomes[] = {ForwardOutcome::kDelivered,
                                          ForwardOutcome::kDeadEnd,
                                          ForwardOutcome::kTtlExpired};
  Rng rng(17);
  for (const Graph* g : {&named, &unnamed}) {
    for (int i = 0; i < 200; ++i) {
      const auto src = static_cast<NodeId>(rng.below(8));
      const auto dst = static_cast<NodeId>(rng.below(8));
      const ForwardOutcome outcome = kOutcomes[rng.below(3)];
      const int max_hops = static_cast<int>(rng.below(6));
      expect_exact_round_trip(*g, src, dst,
                              random_walk_delivery(*g, src, max_hops,
                                                   outcome, rng));
    }
  }
}

TEST(ParseTrace, ZeroHopDeliveryRoundTrips) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  Delivery d;
  d.outcome = ForwardOutcome::kDelivered;
  expect_exact_round_trip(g, 2, 2, d);
  const ParsedTrace t = parse_trace(format_trace(g, 2, 2, d));
  EXPECT_EQ(t.hops, 0);
  EXPECT_EQ(t.cost, 0.0);
  EXPECT_TRUE(t.slices.empty());
  EXPECT_TRUE(t.deflected_hops.empty());
}

TEST(TraceLog, RecordFeedsMetricsRegistry) {
  obs::MetricsRegistry::set_enabled(true);
  obs::MetricsRegistry::global().reset();

  TraceFixture f;
  const Graph& g = f.splicer.graph();
  // Mixed outcomes: sends on the intact network, then toward an isolated
  // node.
  TraceLog log(g);
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const auto src = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(g.node_count())));
    auto dst = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(g.node_count())));
    if (src == dst) dst = (dst + 1) % g.node_count();
    log.record(src, dst, f.splicer.send(src, dst, f.splicer.make_random_header(rng)));
  }
  for (const Incidence& inc : g.neighbors(5)) {
    f.splicer.network().set_link_state(inc.edge, false);
  }
  for (NodeId src = 0; src < g.node_count(); ++src) {
    if (src == 5) continue;
    log.record(src, 5, f.splicer.send(src, 5, f.splicer.make_pinned_header(0)));
  }

  // Registry mirrors the summary counters exactly — they are fed from the
  // same record() call, so they cannot drift apart.
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.counter("dataplane.trace.records").value(),
            static_cast<long long>(log.size()));
  EXPECT_EQ(reg.counter("dataplane.trace.delivered").value(),
            log.delivered());
  EXPECT_EQ(reg.counter("dataplane.trace.dead_end").value(), log.dead_ends());
  EXPECT_EQ(reg.counter("dataplane.trace.ttl_expired").value(),
            log.ttl_expired());
  EXPECT_EQ(reg.counter("dataplane.trace.hops").value(), log.total_hops());
  EXPECT_EQ(reg.counter("dataplane.trace.deflections").value(),
            log.deflections());
  const Histogram hops_hist =
      reg.histogram("dataplane.trace.hops_hist", 0.0, 256.0, 64).merged();
  EXPECT_EQ(hops_hist.total(), static_cast<long long>(log.size()));
  EXPECT_EQ(hops_hist.sum(), static_cast<double>(log.total_hops()));

  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::set_enabled(false);
}

TEST(TraceLog, CountsDeadEndsUnderFailures) {
  TraceFixture f;
  const Graph& g = f.splicer.graph();
  // Isolate a node: all sends toward it dead-end.
  for (const Incidence& inc : g.neighbors(5)) {
    f.splicer.network().set_link_state(inc.edge, false);
  }
  TraceLog log(g);
  for (NodeId src = 0; src < g.node_count(); ++src) {
    if (src == 5) continue;
    log.record(src, 5, f.splicer.send(src, 5, f.splicer.make_pinned_header(0)));
  }
  EXPECT_EQ(log.delivered(), 0);
  EXPECT_EQ(log.dead_ends(), g.node_count() - 1);
}

}  // namespace
}  // namespace splice
