// Dijkstra tests, cross-checked against Bellman–Ford on random graphs
// (property-style TEST_P sweep), plus weight overrides and failure masks.
#include <gtest/gtest.h>

#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace splice {
namespace {

Graph line_graph() {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  return g;
}

TEST(Dijkstra, LineGraphDistances) {
  const Graph g = line_graph();
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(sp.dist[3], 6.0);
}

TEST(Dijkstra, ParentsFormPathToSource) {
  const Graph g = line_graph();
  const ShortestPaths sp = dijkstra(g, 0);
  const auto path = sp.path_to(3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
}

TEST(Dijkstra, PathToUnreachableIsEmpty) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_FALSE(sp.reached(2));
  EXPECT_TRUE(sp.path_to(2).empty());
  EXPECT_EQ(sp.dist[2], kInfiniteWeight);
}

TEST(Dijkstra, PicksCheaperOfTwoRoutes) {
  Graph g(3);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
  EXPECT_EQ(sp.parent[2], 1);
}

TEST(Dijkstra, WeightOverrideChangesRoute) {
  Graph g(3);
  const EdgeId direct = g.add_edge(0, 2, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  // Make the direct edge expensive via override only.
  std::vector<Weight> w = g.weights();
  w[static_cast<std::size_t>(direct)] = 100.0;
  DijkstraOptions opts;
  opts.weight_override = w;
  const ShortestPaths sp = dijkstra(g, 0, opts);
  EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
  // Original graph untouched.
  EXPECT_DOUBLE_EQ(g.edge(direct).weight, 1.0);
}

TEST(Dijkstra, FailedEdgeMaskExcludesEdges) {
  Graph g(3);
  const EdgeId direct = g.add_edge(0, 2, 1.0);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 5.0);
  std::vector<char> alive(3, 1);
  alive[static_cast<std::size_t>(direct)] = 0;
  DijkstraOptions opts;
  opts.edge_alive = alive;
  const ShortestPaths sp = dijkstra(g, 0, opts);
  EXPECT_DOUBLE_EQ(sp.dist[2], 10.0);
}

TEST(Dijkstra, MaskCanDisconnect) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  std::vector<char> alive{0};
  DijkstraOptions opts;
  opts.edge_alive = alive;
  const ShortestPaths sp = dijkstra(g, 0, opts);
  EXPECT_FALSE(sp.reached(1));
}

TEST(Dijkstra, SingleNodeGraph) {
  Graph g(1);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  const auto path = sp.path_to(0);
  ASSERT_EQ(path.size(), 1u);
}

TEST(Dijkstra, ParallelEdgesUseCheapest) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  const EdgeId cheap = g.add_edge(0, 1, 2.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 2.0);
  EXPECT_EQ(sp.parent_edge[1], cheap);
}

TEST(ShortestDistance, Convenience) {
  const Graph g = line_graph();
  EXPECT_DOUBLE_EQ(shortest_distance(g, 0, 3), 6.0);
  EXPECT_DOUBLE_EQ(shortest_distance(g, 3, 0), 6.0);
}

TEST(BellmanFord, MatchesHandComputed) {
  const Graph g = line_graph();
  const auto dist = bellman_ford_distances(g, 0);
  EXPECT_DOUBLE_EQ(dist[3], 6.0);
}

// Property: Dijkstra == Bellman–Ford on random graphs, with and without
// weight overrides and failure masks.
struct SweepParam {
  NodeId n;
  double edge_p;
  std::uint64_t seed;
};

class ShortestPathAgreement : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ShortestPathAgreement, DijkstraMatchesBellmanFord) {
  const auto [n, edge_p, seed] = GetParam();
  Graph g = erdos_renyi(n, edge_p, seed);
  Rng rng(seed ^ 0xabcdULL);
  // Random positive weights.
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    g.set_weight(e, rng.uniform(0.5, 10.0));

  for (NodeId src = 0; src < std::min<NodeId>(n, 5); ++src) {
    const ShortestPaths sp = dijkstra(g, src);
    const auto bf = bellman_ford_distances(g, src);
    for (NodeId v = 0; v < n; ++v) {
      if (bf[static_cast<std::size_t>(v)] == kInfiniteWeight) {
        EXPECT_EQ(sp.dist[static_cast<std::size_t>(v)], kInfiniteWeight);
      } else {
        EXPECT_NEAR(sp.dist[static_cast<std::size_t>(v)],
                    bf[static_cast<std::size_t>(v)], 1e-9);
      }
    }
  }
}

TEST_P(ShortestPathAgreement, AgreesUnderOverridesAndMasks) {
  const auto [n, edge_p, seed] = GetParam();
  const Graph g = erdos_renyi(n, edge_p, seed);
  if (g.edge_count() == 0) GTEST_SKIP();
  Rng rng(seed ^ 0x9999ULL);
  std::vector<Weight> override_w(static_cast<std::size_t>(g.edge_count()));
  std::vector<char> alive(static_cast<std::size_t>(g.edge_count()));
  for (std::size_t e = 0; e < override_w.size(); ++e) {
    override_w[e] = rng.uniform(0.1, 5.0);
    alive[e] = rng.bernoulli(0.8) ? 1 : 0;
  }
  DijkstraOptions opts;
  opts.weight_override = override_w;
  opts.edge_alive = alive;
  const ShortestPaths sp = dijkstra(g, 0, opts);
  const auto bf = bellman_ford_distances(g, 0, override_w, alive);
  for (NodeId v = 0; v < n; ++v) {
    if (bf[static_cast<std::size_t>(v)] == kInfiniteWeight) {
      EXPECT_EQ(sp.dist[static_cast<std::size_t>(v)], kInfiniteWeight);
    } else {
      EXPECT_NEAR(sp.dist[static_cast<std::size_t>(v)],
                  bf[static_cast<std::size_t>(v)], 1e-9);
    }
  }
}

TEST_P(ShortestPathAgreement, PathCostsMatchDistances) {
  const auto [n, edge_p, seed] = GetParam();
  const Graph g = erdos_renyi(n, edge_p, seed);
  const ShortestPaths sp = dijkstra(g, 0);
  for (NodeId v = 1; v < n; ++v) {
    if (!sp.reached(v)) continue;
    const auto path = sp.path_to(v);
    Weight cost = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      cost += g.edge(sp.parent_edge[static_cast<std::size_t>(path[i])]).weight;
    }
    EXPECT_NEAR(cost, sp.dist[static_cast<std::size_t>(v)], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ShortestPathAgreement,
    ::testing::Values(SweepParam{8, 0.3, 1}, SweepParam{8, 0.3, 2},
                      SweepParam{16, 0.2, 3}, SweepParam{16, 0.4, 4},
                      SweepParam{32, 0.15, 5}, SweepParam{32, 0.3, 6},
                      SweepParam{48, 0.1, 7}, SweepParam{64, 0.08, 8}));

}  // namespace
}  // namespace splice
