// util/json reader tests: grammar coverage, exact-integer preservation
// (u64-as-string round trips through the telemetry emitters), member order,
// and error reporting.
#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace splice {
namespace {

TEST(UtilJsonTest, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").value.is_null());
  EXPECT_TRUE(parse_json("true").value.as_bool());
  EXPECT_FALSE(parse_json("false").value.as_bool());
  EXPECT_EQ(parse_json("42").value.as_int(), 42);
  EXPECT_EQ(parse_json("-17").value.as_int(), -17);
  EXPECT_DOUBLE_EQ(parse_json("2.5e3").value.as_double(), 2500.0);
  EXPECT_EQ(parse_json("\"hi\"").value.as_string(), "hi");
}

TEST(UtilJsonTest, IntegerLiteralsKeepExactValues) {
  // 2^63 - 1 does not round-trip through a double; the integer view must.
  const JsonParseResult r = parse_json("9223372036854775807");
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.value.is_integer());
  EXPECT_EQ(r.value.as_int(), 9223372036854775807LL);
  // A fractional literal is a plain number.
  EXPECT_FALSE(parse_json("1.5").value.is_integer());
  EXPECT_FALSE(parse_json("1e3").value.is_integer());
}

TEST(UtilJsonTest, ParsesNestedStructures) {
  const JsonParseResult r = parse_json(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": -0.5})");
  ASSERT_TRUE(r.ok) << r.error;
  const JsonValue& v = r.value;
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[0].as_int(), 1);
  EXPECT_EQ(a->as_array()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(v.find("d")->find("e")->is_null());
  EXPECT_DOUBLE_EQ(v.find("f")->as_double(), -0.5);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(UtilJsonTest, PreservesMemberOrder) {
  const JsonParseResult r = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(r.ok);
  const JsonObject& obj = r.value.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(UtilJsonTest, DecodesStringEscapes) {
  const JsonParseResult r =
      parse_json(R"("line\nbreak \"quoted\" back\\slash A")");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.as_string(), "line\nbreak \"quoted\" back\\slash A");
}

TEST(UtilJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("").ok);
  EXPECT_FALSE(parse_json("{").ok);
  EXPECT_FALSE(parse_json("[1, 2,]").ok);
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok);
  EXPECT_FALSE(parse_json("\"unterminated").ok);
  EXPECT_FALSE(parse_json("{} trailing").ok);
  EXPECT_FALSE(parse_json("nul").ok);
  // Errors carry a position.
  const JsonParseResult r = parse_json("{\"a\": }");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("offset"), std::string::npos);
}

TEST(UtilJsonTest, U64StringsSurviveTheRoundTrip) {
  // The trace exporter writes 64-bit values as decimal strings precisely
  // because 2^53-plus values do not survive a double. Make sure a seed-
  // sized value comes back byte-for-byte.
  const std::string doc = R"({"seed": "18446744073709551615"})";
  const JsonParseResult r = parse_json(doc);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value.find("seed")->as_string(), "18446744073709551615");
}

TEST(UtilJsonTest, ParseFileReportsIoFailure) {
  const JsonParseResult r = parse_json_file("/nonexistent/telemetry.json");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

}  // namespace
}  // namespace splice
