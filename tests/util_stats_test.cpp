// Tests for OnlineStats (Welford), percentiles and summaries.
#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace splice {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(1);
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(OnlineStats, Ci95ShrinksWithSamples) {
  Rng rng(2);
  OnlineStats small;
  OnlineStats large;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    if (i < 100) small.add(x);
    large.add(x);
  }
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 7.0);
}

TEST(Percentile, EndpointsAreMinMax) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, MedianInterpolates) {
  const std::vector<double> odd{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(odd, 50.0), 2.0);
  const std::vector<double> even{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(even, 50.0), 2.5);
}

TEST(Percentile, DoesNotMutateInput) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  (void)percentile(v, 50.0);
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 1.0);
}

TEST(MeanOf, Basic) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Summarize, MatchesComponents) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const SampleSummary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, ToStringContainsFields) {
  const std::vector<double> v{1.0, 2.0};
  const std::string str = to_string(summarize(v));
  EXPECT_NE(str.find("n=2"), std::string::npos);
  EXPECT_NE(str.find("mean="), std::string::npos);
}

// Property-style sweep: p99 >= p95 >= p50 >= min for random samples.
class PercentileOrderTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileOrderTest, QuantilesAreMonotone) {
  Rng rng(GetParam());
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.uniform(0.0, 100.0));
  const SampleSummary s = summarize(v);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileOrderTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace splice
