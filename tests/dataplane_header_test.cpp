// Splicing shim header tests: bit packing, Algorithm 1 pop/shift semantics,
// mutation schemes, loop-avoiding generators, counter encoding.
#include "dataplane/splice_header.h"

#include <gtest/gtest.h>

#include <set>

namespace splice {
namespace {

TEST(BitsPerHop, PowersAndNonPowers) {
  EXPECT_EQ(bits_per_hop(1), 0);
  EXPECT_EQ(bits_per_hop(2), 1);
  EXPECT_EQ(bits_per_hop(3), 2);
  EXPECT_EQ(bits_per_hop(4), 2);
  EXPECT_EQ(bits_per_hop(5), 3);
  EXPECT_EQ(bits_per_hop(8), 3);
  EXPECT_EQ(bits_per_hop(9), 4);
  EXPECT_EQ(bits_per_hop(16), 4);
  EXPECT_EQ(bits_per_hop(64), 6);
}

TEST(BitStream, SetAndPeek) {
  BitStream b;
  b.set_slot(0, 3, 5);
  EXPECT_EQ(b.peek(3), 5u);
  b.set_slot(1, 3, 2);
  EXPECT_EQ(b.peek(3), 5u);  // slot 0 still first
  b.shift(3);
  EXPECT_EQ(b.peek(3), 2u);
}

TEST(BitStream, PopIsPeekPlusShift) {
  BitStream b;
  b.set_slot(0, 2, 3);
  b.set_slot(1, 2, 1);
  EXPECT_EQ(b.pop(2), 3u);
  EXPECT_EQ(b.pop(2), 1u);
  EXPECT_TRUE(b.all_zero());
}

TEST(BitStream, CrossesWordBoundary) {
  BitStream b;
  // 3-bit slots: slot 21 occupies bits 63..65, straddling the u64 boundary.
  b.set_slot(21, 3, 0b101);
  for (int i = 0; i < 21; ++i) b.shift(3);
  EXPECT_EQ(b.peek(3), 0b101u);
}

TEST(BitStream, HighWordSlots) {
  BitStream b;
  b.set_slot(30, 4, 0xA);  // bits 120..123
  for (int i = 0; i < 30; ++i) b.shift(4);
  EXPECT_EQ(b.pop(4), 0xAu);
}

TEST(BitStream, OverwriteSlot) {
  BitStream b;
  b.set_slot(2, 4, 0xF);
  b.set_slot(2, 4, 0x3);
  b.shift(8);
  EXPECT_EQ(b.peek(4), 0x3u);
}

TEST(BitStream, Shift64) {
  BitStream b;
  b.set_slot(20, 3, 7);  // bit 60..62
  b.shift(64);
  EXPECT_TRUE(b.all_zero());
  BitStream c;
  c.set_slot(16, 4, 9);  // bits 64..67 (hi word)
  c.shift(64);
  EXPECT_EQ(c.peek(4), 9u);
}

TEST(SpliceHeader, EmptyHeaderPopsNothing) {
  SpliceHeader h;
  EXPECT_FALSE(h.pop().has_value());
  EXPECT_FALSE(h.has_bits());
  EXPECT_EQ(h.bit_size(), 0);
}

TEST(SpliceHeader, SingleSliceHeaderHasNoBits) {
  SpliceHeader h(1, 20);
  EXPECT_EQ(h.bit_size(), 0);
  EXPECT_FALSE(h.pop().has_value());
}

TEST(SpliceHeader, FromSlicesRoundTrip) {
  const std::vector<SliceId> seq{0, 3, 1, 2, 2, 0, 3, 1};
  SpliceHeader h = SpliceHeader::from_slices(4, seq);
  EXPECT_EQ(h.slices(), seq);
  for (SliceId expected : seq) {
    const auto got = h.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(h.pop().has_value());
}

TEST(SpliceHeader, PopConsumesExactlyHops) {
  Rng rng(1);
  SpliceHeader h = SpliceHeader::random(4, 20, rng);
  EXPECT_EQ(h.remaining_hops(), 20);
  int pops = 0;
  while (h.pop().has_value()) ++pops;
  EXPECT_EQ(pops, 20);
}

TEST(SpliceHeader, RandomValuesAreInRange) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    SpliceHeader h = SpliceHeader::random(5, 20, rng);
    for (SliceId s : h.slices()) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 5);
    }
  }
}

TEST(SpliceHeader, RandomCoversAllSlices) {
  Rng rng(3);
  std::set<SliceId> seen;
  for (int trial = 0; trial < 20; ++trial) {
    for (SliceId s : SpliceHeader::random(6, 20, rng).slices()) seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(SpliceHeader, BitSizeMatchesGeometry) {
  EXPECT_EQ(SpliceHeader(4, 20).bit_size(), 40);  // 2 bits x 20 hops
  EXPECT_EQ(SpliceHeader(5, 20).bit_size(), 60);  // 3 bits x 20 hops
  EXPECT_EQ(SpliceHeader(2, 20).bit_size(), 20);
}

TEST(SpliceHeader, CoinFlipMutationFlipsAboutHalf) {
  Rng rng(4);
  const SpliceHeader base = SpliceHeader::from_slices(
      4, std::vector<SliceId>(20, 0));
  int flipped = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const SpliceHeader mutated = base.mutate_coinflip(rng, 0.5);
    for (SliceId s : mutated.slices()) flipped += s != 0 ? 1 : 0;
  }
  const double rate = static_cast<double>(flipped) / (trials * 20);
  EXPECT_NEAR(rate, 0.5, 0.03);
}

TEST(SpliceHeader, CoinFlipAlwaysPicksDifferentSlice) {
  Rng rng(5);
  const SpliceHeader base =
      SpliceHeader::from_slices(3, std::vector<SliceId>(20, 2));
  const SpliceHeader mutated = base.mutate_coinflip(rng, 1.0);
  for (SliceId s : mutated.slices()) EXPECT_NE(s, 2);
}

TEST(SpliceHeader, CoinFlipZeroProbabilityIsIdentity) {
  Rng rng(6);
  const SpliceHeader base =
      SpliceHeader::from_slices(4, std::vector<SliceId>{1, 2, 3, 0, 1});
  EXPECT_EQ(base.mutate_coinflip(rng, 0.0), base);
}

TEST(SpliceHeader, CoinFlipWithOneSliceIsIdentity) {
  Rng rng(7);
  const SpliceHeader base = SpliceHeader(1, 20);
  EXPECT_EQ(base.mutate_coinflip(rng, 1.0), base);
}

TEST(SpliceHeader, FirstHopBiasedFlipsEarlyHopsMore) {
  Rng rng(8);
  const SpliceHeader base =
      SpliceHeader::from_slices(4, std::vector<SliceId>(20, 0));
  int first_flips = 0;
  int last_flips = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto seq = base.mutate_first_hop_biased(rng).slices();
    first_flips += seq.front() != 0 ? 1 : 0;
    last_flips += seq.back() != 0 ? 1 : 0;
  }
  EXPECT_GT(first_flips, 4 * last_flips);
}

TEST(SpliceHeader, NoRevisitNeverReturnsToLeftSlice) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const auto seq = SpliceHeader::random_no_revisit(5, 20, rng).slices();
    std::set<SliceId> left;
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (seq[i] != seq[i - 1]) {
        left.insert(seq[i - 1]);
        EXPECT_FALSE(left.contains(seq[i]))
            << "revisited slice " << seq[i] << " at hop " << i;
      }
    }
  }
}

TEST(SpliceHeader, BoundedSwitchesRespectsBudget) {
  Rng rng(10);
  for (int budget : {0, 1, 2, 3}) {
    for (int trial = 0; trial < 100; ++trial) {
      const auto seq =
          SpliceHeader::random_bounded_switches(4, 20, budget, rng).slices();
      int switches = 0;
      for (std::size_t i = 1; i < seq.size(); ++i)
        switches += seq[i] != seq[i - 1] ? 1 : 0;
      EXPECT_LE(switches, budget);
    }
  }
}

TEST(CounterHeader, InactiveByDefault) {
  CounterHeader c;
  EXPECT_FALSE(c.active());
  EXPECT_EQ(c.deflect(2, 5), 2);  // no-op when zero
}

TEST(CounterHeader, DeflectsAndDecrements) {
  CounterHeader c(3);
  const SliceId s = c.deflect(0, 4);
  EXPECT_NE(s, 0);
  EXPECT_EQ(c.value(), 2u);
}

TEST(CounterHeader, DrainsToInactive) {
  CounterHeader c(2);
  (void)c.deflect(0, 4);
  (void)c.deflect(1, 4);
  EXPECT_FALSE(c.active());
  EXPECT_EQ(c.deflect(1, 4), 1);
}

TEST(CounterHeader, SingleSliceNoDeflection) {
  CounterHeader c(5);
  EXPECT_EQ(c.deflect(0, 1), 0);
}

// Property: header geometry x slice-count sweep — encode/decode identity.
struct GeomParam {
  SliceId k;
  int hops;
  std::uint64_t seed;
};

class HeaderRoundTrip : public ::testing::TestWithParam<GeomParam> {};

TEST_P(HeaderRoundTrip, EncodeDecodeIdentity) {
  const auto [k, hops, seed] = GetParam();
  Rng rng(seed);
  std::vector<SliceId> seq(static_cast<std::size_t>(hops));
  for (auto& s : seq)
    s = static_cast<SliceId>(rng.below(static_cast<std::uint64_t>(k)));
  SpliceHeader h = SpliceHeader::from_slices(k, seq);
  EXPECT_EQ(h.slices(), seq);
  for (SliceId expected : seq) {
    auto got = h.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HeaderRoundTrip,
    ::testing::Values(GeomParam{2, 20, 1}, GeomParam{3, 20, 2},
                      GeomParam{4, 20, 3}, GeomParam{5, 20, 4},
                      GeomParam{8, 20, 5}, GeomParam{10, 20, 6},
                      GeomParam{16, 20, 7}, GeomParam{32, 20, 8},
                      GeomParam{64, 21, 9}, GeomParam{2, 128, 10},
                      GeomParam{4, 64, 11}, GeomParam{16, 32, 12}));

}  // namespace
}  // namespace splice
