// Data-plane forwarding engine tests: Algorithm 1 semantics, link failures,
// exhaust policies, network-based deflection, trace metrics.
#include "dataplane/network.h"

#include <gtest/gtest.h>

#include "routing/multi_instance.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

// Square topology where slice geometry is easy to reason about:
//   0 -1- 1
//   |     |
//   3 -.- 2     all unit weights except where overridden per slice.
struct SquareFixture {
  SquareFixture() {
    g.add_nodes(4);
    e01 = g.add_edge(0, 1, 1.0);
    e12 = g.add_edge(1, 2, 1.0);
    e03 = g.add_edge(0, 3, 1.0);
    e32 = g.add_edge(3, 2, 1.0);
  }

  /// Two hand-built slices: slice 0 routes 0->2 via 1; slice 1 via 3.
  FibSet make_fibs() const {
    FibSet fibs(2, 4);
    // Destination 2, slice 0: go clockwise (0->1->2).
    fibs.set(0, 0, 2, {1, e01});
    fibs.set(0, 1, 2, {2, e12});
    fibs.set(0, 3, 2, {2, e32});
    // Destination 2, slice 1: go counter-clockwise (0->3->2).
    fibs.set(1, 0, 2, {3, e03});
    fibs.set(1, 1, 2, {2, e12});
    fibs.set(1, 3, 2, {2, e32});
    // Destination 0 entries for reverse traffic.
    fibs.set(0, 1, 0, {0, e01});
    fibs.set(0, 2, 0, {1, e12});
    fibs.set(0, 3, 0, {0, e03});
    fibs.set(1, 1, 0, {0, e01});
    fibs.set(1, 2, 0, {3, e32});
    fibs.set(1, 3, 0, {0, e03});
    return fibs;
  }

  Graph g;
  EdgeId e01, e12, e03, e32;
};

TEST(Network, DeliversToSelfImmediately) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  const DataPlaneNetwork net(f.g, fibs);
  Packet p;
  p.src = p.dst = 1;
  const Delivery d = net.forward(p);
  EXPECT_TRUE(d.delivered());
  EXPECT_EQ(d.hop_count(), 0);
}

TEST(Network, FollowsSliceZero) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  const DataPlaneNetwork net(f.g, fibs);
  Packet p;
  p.src = 0;
  p.dst = 2;
  p.header = SpliceHeader::from_slices(2, std::vector<SliceId>{0, 0, 0});
  const Delivery d = net.forward(p);
  ASSERT_TRUE(d.delivered());
  ASSERT_EQ(d.hop_count(), 2);
  EXPECT_EQ(d.hops[0].next, 1);
  EXPECT_EQ(d.hops[1].next, 2);
}

TEST(Network, HeaderSelectsAlternateSlice) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  const DataPlaneNetwork net(f.g, fibs);
  Packet p;
  p.src = 0;
  p.dst = 2;
  p.header = SpliceHeader::from_slices(2, std::vector<SliceId>{1, 1, 1});
  const Delivery d = net.forward(p);
  ASSERT_TRUE(d.delivered());
  EXPECT_EQ(d.hops[0].next, 3);
  EXPECT_EQ(d.hops[0].slice, 1);
}

TEST(Network, PerHopSliceSwitching) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  const DataPlaneNetwork net(f.g, fibs);
  Packet p;
  p.src = 0;
  p.dst = 2;
  // First hop slice 1 (go to 3), then slice 0 at node 3 (still to 2).
  p.header = SpliceHeader::from_slices(2, std::vector<SliceId>{1, 0});
  const Delivery d = net.forward(p);
  ASSERT_TRUE(d.delivered());
  EXPECT_EQ(d.hops[0].slice, 1);
  EXPECT_EQ(d.hops[1].slice, 0);
}

TEST(Network, DeadEndOnFailedLinkWithoutRecovery) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  DataPlaneNetwork net(f.g, fibs);
  net.set_link_state(f.e01, false);
  Packet p;
  p.src = 0;
  p.dst = 2;
  p.header = SpliceHeader::from_slices(2, std::vector<SliceId>{0, 0, 0});
  const Delivery d = net.forward(p);
  EXPECT_EQ(d.outcome, ForwardOutcome::kDeadEnd);
}

TEST(Network, DeflectionRecoversLocally) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  DataPlaneNetwork net(f.g, fibs);
  net.set_link_state(f.e01, false);
  Packet p;
  p.src = 0;
  p.dst = 2;
  p.header = SpliceHeader::from_slices(2, std::vector<SliceId>{0, 0, 0});
  ForwardingPolicy policy;
  policy.local_recovery = LocalRecovery::kDeflect;
  const Delivery d = net.forward(p, policy);
  ASSERT_TRUE(d.delivered());
  EXPECT_TRUE(d.hops[0].deflected);
  EXPECT_EQ(d.hops[0].slice, 1);
  EXPECT_EQ(d.hops[0].next, 3);
}

TEST(Network, DeflectionDeadEndsWhenNoSliceWorks) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  DataPlaneNetwork net(f.g, fibs);
  net.set_link_state(f.e01, false);
  net.set_link_state(f.e03, false);
  Packet p;
  p.src = 0;
  p.dst = 2;
  ForwardingPolicy policy;
  policy.local_recovery = LocalRecovery::kDeflect;
  const Delivery d = net.forward(p, policy);
  EXPECT_EQ(d.outcome, ForwardOutcome::kDeadEnd);
}

TEST(Network, RestoreAllLinks) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  DataPlaneNetwork net(f.g, fibs);
  net.set_link_state(f.e01, false);
  EXPECT_FALSE(net.link_alive(f.e01));
  net.restore_all_links();
  EXPECT_TRUE(net.link_alive(f.e01));
}

TEST(Network, SetLinkMask) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  DataPlaneNetwork net(f.g, fibs);
  std::vector<char> mask{1, 0, 1, 1};
  net.set_link_mask(mask);
  EXPECT_TRUE(net.link_alive(0));
  EXPECT_FALSE(net.link_alive(1));
}

TEST(Network, DefaultSliceIsStablePerFlow) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  const DataPlaneNetwork net(f.g, fibs);
  const SliceId s1 = net.default_slice(0, 2);
  const SliceId s2 = net.default_slice(0, 2);
  EXPECT_EQ(s1, s2);
  EXPECT_GE(s1, 0);
  EXPECT_LT(s1, 2);
}

TEST(Network, DefaultSliceSpreadsAcrossFlows) {
  // Algorithm 1's Hash(src, dst) should not map every flow to one slice.
  const Graph g = topo::sprint();
  ControlPlaneConfig cfg;
  cfg.slices = 4;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  const MultiInstanceRouting mir(g, cfg);
  const FibSet fibs = mir.build_fibs();
  const DataPlaneNetwork net(g, fibs);
  std::vector<int> counts(4, 0);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s != t) ++counts[static_cast<std::size_t>(net.default_slice(s, t))];
    }
  }
  for (int c : counts) EXPECT_GT(c, 400);  // ~663 expected per slice
}

TEST(Network, TtlExpiryOnForwardingLoop) {
  // Adversarial FIB with a loop: 0 -> 1 -> 0 for destination 2.
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  FibSet fibs(1, 3);
  fibs.set(0, 0, 2, {1, e01});
  fibs.set(0, 1, 2, {0, e01});
  const DataPlaneNetwork net(g, fibs);
  Packet p;
  p.src = 0;
  p.dst = 2;
  p.ttl = 16;
  const Delivery d = net.forward(p);
  EXPECT_EQ(d.outcome, ForwardOutcome::kTtlExpired);
  EXPECT_EQ(d.hop_count(), 16);
}

TEST(Network, ExhaustStayInCurrentKeepsLastSlice) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  const DataPlaneNetwork net(f.g, fibs);
  Packet p;
  p.src = 0;
  p.dst = 2;
  // One-hop header pinning slice 1; second hop has no bits.
  p.header = SpliceHeader::from_slices(2, std::vector<SliceId>{1});
  ForwardingPolicy policy;
  policy.exhaust = ExhaustPolicy::kStayInCurrent;
  const Delivery d = net.forward(p, policy);
  ASSERT_TRUE(d.delivered());
  ASSERT_EQ(d.hop_count(), 2);
  EXPECT_EQ(d.hops[1].slice, 1);  // stayed in slice 1
}

TEST(Network, ExhaustHashDefaultRederives) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  const DataPlaneNetwork net(f.g, fibs);
  Packet p;
  p.src = 0;
  p.dst = 2;
  p.header = SpliceHeader::from_slices(2, std::vector<SliceId>{1});
  ForwardingPolicy policy;
  policy.exhaust = ExhaustPolicy::kHashDefault;
  const Delivery d = net.forward(p, policy);
  ASSERT_TRUE(d.delivered());
  EXPECT_EQ(d.hops[1].slice, net.default_slice(0, 2));
}

TEST(Network, CounterHeaderDeflectsFirstHops) {
  SquareFixture f;
  const FibSet fibs = f.make_fibs();
  const DataPlaneNetwork net(f.g, fibs);
  Packet p;
  p.src = 0;
  p.dst = 2;
  p.header = SpliceHeader::from_slices(2, std::vector<SliceId>{0, 0, 0});
  p.counter = CounterHeader(1);
  const Delivery d = net.forward(p);
  ASSERT_TRUE(d.delivered());
  // Counter flipped the first hop from slice 0 to slice 1 (k=2).
  EXPECT_EQ(d.hops[0].slice, 1);
  EXPECT_EQ(d.hops[1].slice, 0);
}

TEST(TraceMetrics, CostAndLoops) {
  SquareFixture f;
  Delivery d;
  d.outcome = ForwardOutcome::kDelivered;
  d.hops.push_back({0, 1, f.e01, 0, false});
  d.hops.push_back({1, 0, f.e01, 1, false});
  d.hops.push_back({0, 3, f.e03, 1, false});
  d.hops.push_back({3, 2, f.e32, 1, false});
  EXPECT_DOUBLE_EQ(trace_cost(f.g, d), 4.0);
  EXPECT_TRUE(has_two_hop_loop(d));
  EXPECT_EQ(count_node_revisits(d), 1);  // node 0 revisited once
}

TEST(TraceMetrics, CleanPathHasNoLoops) {
  SquareFixture f;
  Delivery d;
  d.outcome = ForwardOutcome::kDelivered;
  d.hops.push_back({0, 1, f.e01, 0, false});
  d.hops.push_back({1, 2, f.e12, 0, false});
  EXPECT_FALSE(has_two_hop_loop(d));
  EXPECT_EQ(count_node_revisits(d), 0);
}

// End-to-end sweep on a real control plane: every random header delivers on
// an intact network (a spliced path always exists when no links fail).
class IntactNetworkDelivery : public ::testing::TestWithParam<SliceId> {};

TEST_P(IntactNetworkDelivery, RandomHeadersAlwaysDeliver) {
  const SliceId k = GetParam();
  const Graph g = topo::geant();
  ControlPlaneConfig cfg;
  cfg.slices = k;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  const MultiInstanceRouting mir(g, cfg);
  const FibSet fibs = mir.build_fibs();
  const DataPlaneNetwork net(g, fibs);
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    Packet p;
    p.src = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(g.node_count())));
    p.dst = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(g.node_count())));
    if (p.src == p.dst) continue;
    p.header = SpliceHeader::random(k, 20, rng);
    const Delivery d = net.forward(p);
    EXPECT_TRUE(d.delivered())
        << "k=" << k << " src=" << p.src << " dst=" << p.dst;
  }
}

INSTANTIATE_TEST_SUITE_P(SliceCounts, IntactNetworkDelivery,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace splice
