// Rolling time-series tests: bucket expiry against a brute-force oracle,
// ring wraparound across many windows, large-gap staleness, count
// saturation, and the bit-identity contract — snapshots taken at a fixed
// clock reading are byte-equal no matter how many writer threads fed them.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include "obs/clock.h"

#include <map>
#include <thread>
#include <vector>

#include "util/histogram.h"
#include "util/rng.h"

namespace splice::obs {
namespace {

/// Splits `items` across `threads` round-robin — the writer pattern the
/// packed-cell CAS must keep commutative.
template <typename Fn>
void run_threaded(int items, int threads, Fn fn) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = t; i < items; i += threads) fn(i);
    });
  }
  for (auto& th : pool) th.join();
}

TEST(ObsTimeseriesTest, ExpiryMatchesBruteForceOracle) {
  // Monotone writer (the determinism discipline all producers follow):
  // time only moves forward, queries run at the latest write time. The
  // oracle keeps every bucket's exact sum; the window total must equal the
  // oracle's sum over the in-window buckets — expired buckets drop out the
  // moment the window slides past them, stale ring slots read as zero.
  WindowConfig cfg;
  cfg.bucket_ns = 100;
  cfg.buckets = 4;
  RollingCounter series;
  series.configure(cfg);

  Rng rng(0x715e);
  std::map<std::uint64_t, std::uint64_t> oracle;  // bucket -> sum
  std::uint64_t now = 0;
  for (int step = 0; step < 2000; ++step) {
    now += rng.below(250);  // 0..2.5 buckets forward per step
    const std::uint64_t v = 1 + rng.below(9);
    series.add(now, v);
    oracle[now / cfg.bucket_ns] += v;

    const std::uint64_t abs_now = now / cfg.bucket_ns;
    const std::uint64_t start =
        abs_now >= static_cast<std::uint64_t>(cfg.buckets - 1)
            ? abs_now - static_cast<std::uint64_t>(cfg.buckets - 1)
            : 0;
    std::uint64_t want = 0;
    for (std::uint64_t b = start; b <= abs_now; ++b) {
      const auto it = oracle.find(b);
      if (it != oracle.end()) want += it->second;
    }
    ASSERT_EQ(series.total(now), want) << "step " << step << " now " << now;
  }
}

TEST(ObsTimeseriesTest, SampleMatchesOraclePerBucket) {
  WindowConfig cfg;
  cfg.bucket_ns = 50;
  cfg.buckets = 6;
  RollingCounter series;
  series.configure(cfg);

  Rng rng(0xabcd);
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::uint64_t now = 0;
  std::vector<std::uint64_t> got;
  for (int step = 0; step < 500; ++step) {
    now += rng.below(120);
    const std::uint64_t v = 1 + rng.below(5);
    series.add(now, v);
    oracle[now / cfg.bucket_ns] += v;

    series.sample(now, got);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(cfg.buckets));
    const std::uint64_t abs_now = now / cfg.bucket_ns;
    for (int s = 0; s < cfg.buckets; ++s) {
      // got[] is oldest-first: slot buckets-1 is the current bucket.
      const std::uint64_t age =
          static_cast<std::uint64_t>(cfg.buckets - 1 - s);
      if (age > abs_now) {
        ASSERT_EQ(got[static_cast<std::size_t>(s)], 0u);  // before epoch
        continue;
      }
      const auto it = oracle.find(abs_now - age);
      const std::uint64_t want = it == oracle.end() ? 0 : it->second;
      ASSERT_EQ(got[static_cast<std::size_t>(s)], want)
          << "step " << step << " slot " << s;
    }
  }
}

TEST(ObsTimeseriesTest, WraparoundAcrossManyWindows) {
  // One add per bucket for 64 full ring laps: every slot gets re-tagged
  // hundreds of times and the window total must stay exactly `buckets`.
  WindowConfig cfg;
  cfg.bucket_ns = 10;
  cfg.buckets = 8;
  RollingCounter series;
  series.configure(cfg);

  for (std::uint64_t bucket = 0; bucket < 64 * 8; ++bucket) {
    const std::uint64_t now = bucket * cfg.bucket_ns;
    series.add(now, 1);
    const std::uint64_t in_window =
        std::min<std::uint64_t>(bucket + 1,
                                static_cast<std::uint64_t>(cfg.buckets));
    ASSERT_EQ(series.total(now), in_window) << "bucket " << bucket;
  }
}

TEST(ObsTimeseriesTest, LargeGapExpiresEverything) {
  WindowConfig cfg;
  cfg.bucket_ns = 100;
  cfg.buckets = 8;
  RollingCounter series;
  series.configure(cfg);

  series.add(0, 41);
  series.add(250, 17);
  EXPECT_EQ(series.total(250), 58u);
  // A jump of 1000 windows: every ring slot holds a stale tag and must
  // read as zero without any sweeper having run.
  const std::uint64_t far = 1000 * cfg.bucket_ns *
                            static_cast<std::uint64_t>(cfg.buckets);
  EXPECT_EQ(series.total(far), 0u);
  series.add(far, 5);
  EXPECT_EQ(series.total(far), 5u);
}

TEST(ObsTimeseriesTest, CountSaturatesInsteadOfOverflowing) {
  // Per-(bucket) counts are 32-bit; overflow must clamp, never carry into
  // the tag word (which would corrupt expiry).
  WindowConfig cfg;
  cfg.bucket_ns = 100;
  cfg.buckets = 2;
  RollingCounter series;
  series.configure(cfg);
  const std::uint64_t kMax = 0xffffffffu;
  series.add(0, kMax);
  series.add(0, kMax);
  EXPECT_EQ(series.total(0), kMax);
  // The saturated bucket still expires normally.
  EXPECT_EQ(series.total(5 * cfg.bucket_ns), 0u);
}

TEST(ObsTimeseriesTest, ArraySnapshotBitIdenticalAcrossThreadCounts) {
  // The determinism contract: the same multiset of (series, time, value)
  // writes produces byte-identical samples at 1, 2 and 8 writer threads.
  constexpr std::size_t kSeries = 32;
  constexpr int kOps = 20000;
  WindowConfig cfg;
  cfg.bucket_ns = 100;
  cfg.buckets = 8;
  const std::uint64_t now = 7 * cfg.bucket_ns + 3;

  // Fixed op list: all times within the queried window (quiescent-point
  // discipline — writers never race the window edge).
  struct Op {
    std::size_t series;
    std::uint64_t t;
    std::uint64_t v;
  };
  std::vector<Op> ops;
  Rng rng(0x5eed);
  ops.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    ops.push_back({rng.below(kSeries), rng.below(now + 1), 1 + rng.below(7)});
  }

  std::vector<std::vector<std::uint64_t>> reference;
  for (const int threads : {1, 2, 8}) {
    RollingSeriesArray arr;
    arr.configure(kSeries, cfg);
    run_threaded(kOps, threads, [&](int i) {
      const Op& op = ops[static_cast<std::size_t>(i)];
      arr.add(op.series, op.t, op.v);
    });
    std::vector<std::vector<std::uint64_t>> got(kSeries);
    for (std::size_t s = 0; s < kSeries; ++s) {
      arr.sample(s, now, got[s]);
    }
    if (reference.empty()) {
      reference = std::move(got);
    } else {
      ASSERT_EQ(got, reference) << "threads=" << threads;
    }
  }
}

TEST(ObsTimeseriesTest, RegressingClockDoesNotDestroyNewerBuckets) {
  // A backwards clock step (an injectable ManualClock jumped back, or a
  // cross-thread wall-clock skew) maps a sample to an absolute bucket
  // OLDER than what its ring slot currently holds. The slot must keep the
  // newer bucket's tally and drop the stale sample — before the ordinal
  // tag compare, the old-tag path reseeded the slot and the future
  // bucket's count was destroyed.
  WindowConfig cfg;
  cfg.bucket_ns = 100;
  cfg.buckets = 8;
  RollingCounter series;
  series.configure(cfg);

  ManualClock clock;
  clock.set_ns(1050);  // abs bucket 10 -> ring slot 2
  series.add(clock.now_ns(), 7);
  const std::uint64_t t_future = clock.now_ns();
  ASSERT_EQ(series.total(t_future), 7u);

  // Regress a full ring below: abs bucket 2 shares slot 2 with bucket 10.
  clock.set_ns(250);
  series.add(clock.now_ns(), 5);

  // The future bucket survives untouched; the stale write vanished (it is
  // outside the window ending at t_future anyway, but the slot must not
  // have been reseeded to bucket 2's tally either).
  EXPECT_EQ(series.total(t_future), 7u);
  std::vector<std::uint64_t> buckets;
  series.sample(t_future, buckets);
  EXPECT_EQ(buckets.back(), 7u);

  // A stale write to an *empty* slot is seeded (ordinal compare accepts
  // any tag on a fresh slot): bucket 1 (slot 1) takes the 9, but it sits
  // below the window [3, 10] ending at t_future, so the total is unchanged.
  clock.set_ns(150);
  series.add(clock.now_ns(), 9);
  EXPECT_EQ(series.total(t_future), 7u);

  // Time resumes forward: the same slot accepts the genuinely newer bucket.
  clock.set_ns(1850);  // abs bucket 18 -> slot 2 again
  series.add(clock.now_ns(), 3);
  EXPECT_EQ(series.total(clock.now_ns()), 3u);
}

TEST(ObsTimeseriesTest, RollingHistogramMergesWindowOnly) {
  WindowConfig cfg;
  cfg.bucket_ns = 100;
  cfg.buckets = 4;
  RollingHistogram rh;
  rh.configure(cfg, 0.0, 100.0, 10);

  // Out-of-window observation, then three in-window ones.
  rh.observe(0, 55.0);
  const std::uint64_t now = 10 * cfg.bucket_ns;
  rh.observe(now - 2 * cfg.bucket_ns, 15.0);
  rh.observe(now - cfg.bucket_ns, 15.0);
  rh.observe(now, 95.0);

  const Histogram h = rh.merged(now);
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.count(1), 2);  // the two 15s
  EXPECT_EQ(h.count(9), 1);  // the 95
  EXPECT_EQ(h.count(5), 0);  // the expired 55
}

TEST(ObsTimeseriesTest, HistogramBitIdenticalAcrossThreadCounts) {
  constexpr int kOps = 20000;
  WindowConfig cfg;
  cfg.bucket_ns = 100;
  cfg.buckets = 8;
  const std::uint64_t now = 9 * cfg.bucket_ns;

  std::vector<std::pair<std::uint64_t, double>> ops;
  Rng rng(0x900d);
  ops.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    ops.emplace_back(now - rng.below(cfg.bucket_ns * 8),
                     static_cast<double>(rng.below(1000)) / 10.0);
  }

  std::vector<long long> reference;
  for (const int threads : {1, 2, 8}) {
    RollingHistogram rh;
    rh.configure(cfg, 0.0, 100.0, 32);
    run_threaded(kOps, threads, [&](int i) {
      const auto& [t, x] = ops[static_cast<std::size_t>(i)];
      rh.observe(t, x);
    });
    const Histogram h = rh.merged(now);
    std::vector<long long> counts;
    for (int b = 0; b < h.bins(); ++b) counts.push_back(h.count(b));
    if (reference.empty()) {
      reference = std::move(counts);
    } else {
      ASSERT_EQ(counts, reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace splice::obs
