// Tests for the extension experiments: Definition 2.2 connectivity curve
// and the §6 reconvergence study.
#include "sim/extensions.h"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.h"
#include "topo/datasets.h"

namespace splice {
namespace {

ConnectivityCurveConfig curve_cfg() {
  ConnectivityCurveConfig cfg;
  cfg.k_values = {1, 3};
  cfg.p_values = {0.0, 0.02, 0.05};
  cfg.trials = 60;
  return cfg;
}

TEST(ConnectivityCurve, GridShape) {
  const auto points = run_connectivity_curve(topo::geant(), curve_cfg());
  // (1 graph row + 2 k rows) per p value.
  EXPECT_EQ(points.size(), 9u);
}

TEST(ConnectivityCurve, PerfectAtZeroFailure) {
  const auto points = run_connectivity_curve(topo::geant(), curve_cfg());
  for (const auto& pt : points) {
    if (pt.p == 0.0) {
      EXPECT_DOUBLE_EQ(pt.reliability, 1.0);
    }
  }
}

TEST(ConnectivityCurve, BoundedByUnderlyingGraph) {
  // R_spliced(p) <= R_graph(p): the spliced union is a subgraph construct.
  const auto points = run_connectivity_curve(topo::sprint(), curve_cfg());
  std::map<double, double> graph_r;
  for (const auto& pt : points) {
    if (pt.k == 0) graph_r[pt.p] = pt.reliability;
  }
  for (const auto& pt : points) {
    if (pt.k != 0) {
      EXPECT_LE(pt.reliability, graph_r[pt.p] + 1e-12);
    }
  }
}

TEST(ConnectivityCurve, MonotoneInKAndP) {
  const auto points = run_connectivity_curve(topo::sprint(), curve_cfg());
  std::map<double, std::map<SliceId, double>> by_p;
  for (const auto& pt : points) by_p[pt.p][pt.k] = pt.reliability;
  // More slices -> at least as reliable (shared failure sets).
  for (auto& [p, by_k] : by_p) {
    EXPECT_LE(by_k[1], by_k[3] + 1e-12) << "p=" << p;
  }
  // Higher p -> less reliable for the graph curve.
  EXPECT_GE(by_p[0.0][0], by_p[0.05][0]);
}

ReconvergenceConfig reconv_cfg() {
  ReconvergenceConfig cfg;
  cfg.k = 4;
  cfg.p_values = {0.03, 0.08};
  cfg.trials = 6;
  return cfg;
}

TEST(Reconvergence, CoherentFractions) {
  const auto points = run_reconvergence_experiment(topo::sprint(), reconv_cfg());
  ASSERT_EQ(points.size(), 2u);
  for (const auto& pt : points) {
    EXPECT_GE(pt.frac_broken, 0.0);
    EXPECT_LE(pt.frac_broken, 1.0);
    // Splicing cannot fix pairs that reconvergence (= physical
    // connectivity) cannot.
    EXPECT_LE(pt.splicing_fixes, pt.reconvergence_fixes + 1e-12);
    EXPECT_GE(pt.coverage_of_reconvergence, 0.0);
    EXPECT_LE(pt.coverage_of_reconvergence, 1.0 + 1e-12);
  }
}

TEST(Reconvergence, SplicingCoversSubstantialReconvergenceShare) {
  // The §6 claim: splicing alone repairs a substantial share of what a full
  // reconvergence would repair — and strictly more with slices than
  // without. (The ceiling counts pairs that are merely *physically*
  // connected; the directed spliced union is strictly smaller, so coverage
  // is well below 1 on sparse backbones.)
  ReconvergenceConfig cfg = reconv_cfg();
  cfg.p_values = {0.04};
  cfg.trials = 10;
  const auto with_slices = run_reconvergence_experiment(topo::sprint(), cfg);
  ASSERT_EQ(with_slices.size(), 1u);
  EXPECT_GT(with_slices[0].coverage_of_reconvergence, 0.25);

  cfg.k = 1;
  const auto no_slices = run_reconvergence_experiment(topo::sprint(), cfg);
  // With one slice there is nothing to splice to; coverage collapses.
  EXPECT_GT(with_slices[0].coverage_of_reconvergence,
            no_slices[0].coverage_of_reconvergence + 0.15);
}

TEST(Reconvergence, BrokenGrowsWithP) {
  const auto points = run_reconvergence_experiment(topo::sprint(), reconv_cfg());
  EXPECT_LT(points[0].frac_broken, points[1].frac_broken);
}

TEST(Throughput, RatioBoundsAndMonotonicity) {
  ThroughputConfig cfg;
  cfg.k_values = {1, 3, 8};
  cfg.pair_sample = 60;
  const auto points = run_throughput_experiment(topo::sprint(), cfg);
  ASSERT_EQ(points.size(), 3u);
  double prev = 0.0;
  for (const auto& pt : points) {
    EXPECT_GT(pt.mean_capacity_ratio, 0.0);
    EXPECT_LE(pt.mean_capacity_ratio, 1.0 + 1e-12);
    EXPECT_LE(pt.mean_spliced_capacity, pt.mean_graph_capacity + 1e-12);
    EXPECT_GE(pt.mean_capacity_ratio, prev - 1e-12);  // grows with k
    prev = pt.mean_capacity_ratio;
  }
  // More slices should add real capacity on a meshy backbone.
  EXPECT_GT(points[2].mean_spliced_capacity,
            points[0].mean_spliced_capacity);
}

TEST(Throughput, SingleSliceIsOnePath) {
  ThroughputConfig cfg;
  cfg.k_values = {1};
  cfg.pair_sample = 40;
  const auto points = run_throughput_experiment(topo::geant(), cfg);
  ASSERT_EQ(points.size(), 1u);
  // One tree: exactly one path per pair.
  EXPECT_NEAR(points[0].mean_spliced_capacity, 1.0, 1e-9);
}

TEST(Throughput, CompleteGraphCapacityGrowsSeveralFold) {
  // On K6 every pair has capacity 5 but a single tree exposes 1 path;
  // slices must multiply the usable capacity several-fold.
  ThroughputConfig cfg;
  cfg.k_values = {1, 8};
  cfg.pair_sample = 0;  // all pairs of a small graph
  cfg.perturbation = {PerturbationKind::kUniform, 0.0, 3.0};
  const auto points = run_throughput_experiment(complete(6), cfg);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_NEAR(points[0].mean_spliced_capacity, 1.0, 1e-9);
  EXPECT_GT(points[1].mean_spliced_capacity,
            1.8 * points[0].mean_spliced_capacity);
}

TEST(Reconvergence, Deterministic) {
  const auto a = run_reconvergence_experiment(topo::geant(), reconv_cfg());
  const auto b = run_reconvergence_experiment(topo::geant(), reconv_cfg());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].splicing_fixes, b[i].splicing_fixes);
    EXPECT_DOUBLE_EQ(a[i].frac_broken, b[i].frac_broken);
  }
}

}  // namespace
}  // namespace splice
