// Event-queue and recovery-timing tests.
#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include <vector>

#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5.0, [&](SimTime) { order.push_back(2); });
  q.schedule(1.0, [&](SimTime) { order.push_back(1); });
  q.schedule(9.0, [&](SimTime) { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&](SimTime) { order.push_back(1); });
  q.schedule(2.0, [&](SimTime) { order.push_back(2); });
  q.schedule(2.0, [&](SimTime) { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](SimTime now) {
    ++fired;
    q.schedule(now + 1.0, [&](SimTime) { ++fired; });
  });
  const SimTime end = q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(end, 2.0);
}

TEST(EventQueue, HorizonStopsExecution) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](SimTime) { ++fired; });
  q.schedule(100.0, [&](SimTime) { ++fired; });
  q.run(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueDeath, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(5.0, [&](SimTime now) {
    // Scheduling before `now` must trip the precondition.
    q.schedule(now - 1.0, [](SimTime) {});
  });
  EXPECT_DEATH(q.run(), "Precondition");
}

struct TimingFixture {
  TimingFixture()
      : g(topo::sprint()),
        mir(g, ControlPlaneConfig{
                   5, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 3, false}),
        fibs(mir.build_fibs()),
        net(g, fibs) {}

  Graph g;
  MultiInstanceRouting mir;
  FibSet fibs;
  DataPlaneNetwork net;
  Rng rng{11};
};

TEST(RecoveryTiming, IntactPathIsOneRtt) {
  TimingFixture f;
  const NodeId src = f.g.find_node("Atlanta");
  const NodeId dst = f.g.find_node("Seattle");
  const RecoveryTiming t =
      simulate_recovery_timing(f.net, src, dst, TimingConfig{}, f.rng);
  EXPECT_TRUE(t.initially_connected);
  EXPECT_TRUE(t.recovered);
  EXPECT_EQ(t.packets_sent, 1);
  // Completion = round trip of the slice-0 path.
  const auto path_cost = f.mir.slice(0).path_cost_original(f.g, src, dst);
  EXPECT_NEAR(t.completion_ms, 2.0 * path_cost, 1e-9);
}

TEST(RecoveryTiming, SerialRecoveryPaysRtoPerFailure) {
  TimingFixture f;
  const NodeId src = f.g.find_node("Atlanta");
  const NodeId dst = f.g.find_node("Seattle");
  const EdgeId first = f.mir.slice(0).next_hop_edge(src, dst);
  f.net.set_link_state(first, false);
  TimingConfig cfg;
  cfg.rto_ms = 100.0;
  int successes = 0;
  for (int i = 0; i < 30; ++i) {
    const RecoveryTiming t =
        simulate_recovery_timing(f.net, src, dst, cfg, f.rng);
    EXPECT_FALSE(t.initially_connected);
    if (t.recovered) {
      ++successes;
      // At least one RTO elapsed before the successful retry.
      EXPECT_GE(t.completion_ms, cfg.rto_ms);
      EXPECT_GE(t.packets_sent, 2);
    }
  }
  EXPECT_GT(successes, 20);
}

TEST(RecoveryTiming, ParallelBurstBeatsSerialOnAverage) {
  TimingFixture f;
  Rng mask_rng(21);
  const auto alive = sample_alive_mask(f.g.edge_count(), 0.08, mask_rng);
  f.net.set_link_mask(alive);

  TimingConfig serial;
  serial.strategy = RecoveryStrategy::kSerial;
  TimingConfig burst;
  burst.strategy = RecoveryStrategy::kParallelBurst;

  double serial_total = 0.0;
  double burst_total = 0.0;
  int recovered_both = 0;
  Rng rng_a(31);
  Rng rng_b(31);
  for (NodeId src = 0; src < f.g.node_count(); src += 3) {
    for (NodeId dst = 0; dst < f.g.node_count(); dst += 4) {
      if (src == dst) continue;
      const RecoveryTiming ts =
          simulate_recovery_timing(f.net, src, dst, serial, rng_a);
      const RecoveryTiming tb =
          simulate_recovery_timing(f.net, src, dst, burst, rng_b);
      if (ts.initially_connected || !ts.recovered || !tb.recovered) continue;
      serial_total += ts.completion_ms;
      burst_total += tb.completion_ms;
      ++recovered_both;
      // Burst completion is bounded by one RTO + one (worst) RTT.
      EXPECT_LE(tb.completion_ms, burst.rto_ms + 2.0 * 1000.0);
    }
  }
  ASSERT_GT(recovered_both, 5);
  EXPECT_LT(burst_total, serial_total);
}

TEST(RecoveryTiming, NetworkDeflectionNeedsNoRetries) {
  TimingFixture f;
  const NodeId src = f.g.find_node("Atlanta");
  const NodeId dst = f.g.find_node("Seattle");
  const EdgeId first = f.mir.slice(0).next_hop_edge(src, dst);
  f.net.set_link_state(first, false);
  TimingConfig cfg;
  cfg.strategy = RecoveryStrategy::kNetworkDeflection;
  const RecoveryTiming t =
      simulate_recovery_timing(f.net, src, dst, cfg, f.rng);
  EXPECT_TRUE(t.recovered);
  EXPECT_FALSE(t.initially_connected);
  EXPECT_EQ(t.packets_sent, 1);
  // Faster than any sender-timeout scheme could possibly be.
  EXPECT_LT(t.completion_ms, cfg.rto_ms);
}

TEST(RecoveryTiming, UnrecoverableReportsFailure) {
  TimingFixture f;
  const NodeId dst = 7;
  for (const Incidence& inc : f.g.neighbors(dst)) {
    f.net.set_link_state(inc.edge, false);
  }
  for (auto strategy :
       {RecoveryStrategy::kSerial, RecoveryStrategy::kParallelBurst,
        RecoveryStrategy::kNetworkDeflection}) {
    TimingConfig cfg;
    cfg.strategy = strategy;
    const RecoveryTiming t =
        simulate_recovery_timing(f.net, 0, dst, cfg, f.rng);
    EXPECT_FALSE(t.recovered);
    EXPECT_FALSE(t.initially_connected);
  }
}

TEST(RecoveryTiming, TraceDelayMatchesWeights) {
  TimingFixture f;
  Packet p;
  p.src = 0;
  p.dst = 10;
  const Delivery d = f.net.forward(p);
  ASSERT_TRUE(d.delivered());
  SimTime expect = 0.0;
  for (const HopRecord& hop : d.hops) expect += f.g.edge(hop.edge).weight;
  EXPECT_DOUBLE_EQ(trace_delay_ms(f.g, d), expect);
}

}  // namespace
}  // namespace splice
