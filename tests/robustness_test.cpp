// Robustness and cross-validation properties:
//  * topology parser survives arbitrary garbage (throws, never crashes),
//  * forwarding traces are always internally consistent, for any header,
//    any failure mask, any slice count,
//  * the reliability analyzer agrees with a brute-force union construction
//    on random graphs (not just the embedded topologies),
//  * recovery never reports success without a genuinely delivered trace.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "splicing/recovery.h"
#include "splicing/reliability.h"
#include "splicing/splicer.h"
#include "util/rng.h"

namespace splice {
namespace {

// ---------------------------------------------------------------------------
// Parser fuzz: random token soup must parse or throw TopologyParseError.
// ---------------------------------------------------------------------------

std::string random_garbage(Rng& rng, int lines) {
  static const char* tokens[] = {"node",  "edge", "0",    "1",   "-3",
                                 "9999",  "a",    "b",    "#x",  "edge edge",
                                 "1.5",   "-0.1", "nan",  "",    "\t",
                                 "node a"};
  std::string out;
  for (int i = 0; i < lines; ++i) {
    const int parts = static_cast<int>(rng.below(5));
    for (int j = 0; j < parts; ++j) {
      out += tokens[rng.below(std::size(tokens))];
      out += ' ';
    }
    out += '\n';
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, NeverCrashes) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const std::string text = random_garbage(rng, 1 + static_cast<int>(rng.below(8)));
    try {
      const Graph g = parse_topology(text);
      // If it parsed, the result must be internally consistent.
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        EXPECT_TRUE(g.valid_node(g.edge(e).u));
        EXPECT_TRUE(g.valid_node(g.edge(e).v));
        EXPECT_GT(g.edge(e).weight, 0.0);
      }
    } catch (const TopologyParseError&) {
      // Expected for malformed inputs.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Forwarding trace invariants under arbitrary headers and failures.
// ---------------------------------------------------------------------------

struct TraceParam {
  SliceId k;
  double fail_p;
  std::uint64_t seed;
};

class TraceInvariants : public ::testing::TestWithParam<TraceParam> {};

TEST_P(TraceInvariants, TracesAreAlwaysConsistent) {
  const auto [k, fail_p, seed] = GetParam();
  Graph g = erdos_renyi(24, 0.18, seed);
  make_connected(g, seed + 1);
  SplicerConfig cfg;
  cfg.slices = k;
  cfg.seed = seed;
  Splicer splicer(std::move(g), cfg);
  const Graph& graph = splicer.graph();

  Rng rng(seed ^ 0xf00d);
  const auto alive = sample_alive_mask(graph.edge_count(), fail_p, rng);
  splicer.network().set_link_mask(alive);

  for (int trial = 0; trial < 300; ++trial) {
    Packet p;
    p.src = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(graph.node_count())));
    p.dst = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(graph.node_count())));
    p.header = SpliceHeader::random(k, 20, rng);
    p.ttl = 1 + static_cast<int>(rng.below(300));
    ForwardingPolicy policy;
    policy.exhaust = rng.coin() ? ExhaustPolicy::kStayInCurrent
                                : ExhaustPolicy::kHashDefault;
    policy.local_recovery =
        rng.coin() ? LocalRecovery::kDeflect : LocalRecovery::kNone;
    const Delivery d = splicer.network().forward(p, policy);

    // Invariants that must hold for EVERY outcome:
    NodeId cursor = p.src;
    for (const HopRecord& hop : d.hops) {
      EXPECT_EQ(hop.node, cursor) << "trace not contiguous";
      const Edge& edge = graph.edge(hop.edge);
      EXPECT_TRUE((edge.u == hop.node && edge.v == hop.next) ||
                  (edge.v == hop.node && edge.u == hop.next))
          << "hop uses a link not joining its endpoints";
      EXPECT_TRUE(splicer.network().link_alive(hop.edge))
          << "hop crossed a dead link";
      EXPECT_GE(hop.slice, 0);
      EXPECT_LT(hop.slice, k);
      cursor = hop.next;
    }
    switch (d.outcome) {
      case ForwardOutcome::kDelivered:
        EXPECT_EQ(cursor, p.dst);
        break;
      case ForwardOutcome::kTtlExpired:
        EXPECT_EQ(d.hop_count(), p.ttl);
        break;
      case ForwardOutcome::kDeadEnd:
        EXPECT_NE(cursor, p.dst);
        break;
    }
    EXPECT_LE(d.hop_count(), p.ttl);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceInvariants,
    ::testing::Values(TraceParam{1, 0.0, 1}, TraceParam{2, 0.1, 2},
                      TraceParam{3, 0.2, 3}, TraceParam{4, 0.05, 4},
                      TraceParam{5, 0.3, 5}, TraceParam{8, 0.15, 6},
                      TraceParam{16, 0.1, 7}, TraceParam{2, 0.5, 8}));

// ---------------------------------------------------------------------------
// Analyzer vs brute-force union reachability on random graphs.
// ---------------------------------------------------------------------------

class AnalyzerAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzerAgreement, MatchesBruteForceOnRandomGraphs) {
  const std::uint64_t seed = GetParam();
  Graph g = erdos_renyi(14, 0.25, seed);
  make_connected(g, seed + 7);
  const SliceId k_max = 3;
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{
             k_max, {PerturbationKind::kUniform, 0.0, 3.0}, seed, false});
  const SplicedReliabilityAnalyzer analyzer(g, mir);

  Rng rng(seed ^ 0xbf);
  for (int trial = 0; trial < 10; ++trial) {
    const auto alive = sample_alive_mask(g.edge_count(), 0.25, rng);
    for (SliceId k = 1; k <= k_max; ++k) {
      // Brute force: materialize the union digraph per destination.
      long long brute_directed = 0;
      long long brute_undirected = 0;
      for (NodeId dst = 0; dst < g.node_count(); ++dst) {
        Digraph u(g.node_count());
        Graph links;  // undirected view of surviving union links
        links.add_nodes(g.node_count());
        for (SliceId s = 0; s < k; ++s) {
          for (NodeId v = 0; v < g.node_count(); ++v) {
            if (v == dst) continue;
            const NodeId nh = mir.slice(s).next_hop(v, dst);
            if (nh == kInvalidNode) continue;
            const EdgeId e = mir.slice(s).next_hop_edge(v, dst);
            if (!alive[static_cast<std::size_t>(e)]) continue;
            u.add_arc_unique(v, nh);
            if (links.find_edge(v, nh) == kInvalidEdge)
              links.add_edge(v, nh, 1.0);
          }
        }
        const auto reach_undir = reachable_nodes(links, dst);
        for (NodeId src = 0; src < g.node_count(); ++src) {
          if (src == dst) continue;
          if (!has_directed_path(u, src, dst)) ++brute_directed;
          if (!reach_undir[static_cast<std::size_t>(src)])
            ++brute_undirected;
        }
      }
      EXPECT_EQ(analyzer.disconnected_pairs(
                    k, alive, UnionSemantics::kDirectedForwarding),
                brute_directed)
          << "k=" << k;
      EXPECT_EQ(analyzer.disconnected_pairs(
                    k, alive, UnionSemantics::kUndirectedLinks),
                brute_undirected)
          << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerAgreement,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Recovery soundness on random graphs.
// ---------------------------------------------------------------------------

class RecoverySoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoverySoundness, DeliveredMeansRealPath) {
  const std::uint64_t seed = GetParam();
  Graph g = waxman(20, 0.9, 0.3, seed);
  make_connected(g, seed + 3);
  SplicerConfig cfg;
  cfg.slices = 4;
  cfg.seed = seed;
  Splicer splicer(std::move(g), cfg);
  Rng rng(seed ^ 0x50f7);
  const auto alive =
      sample_alive_mask(splicer.graph().edge_count(), 0.2, rng);
  splicer.network().set_link_mask(alive);

  for (NodeId src = 0; src < splicer.graph().node_count(); src += 2) {
    for (NodeId dst = 0; dst < splicer.graph().node_count(); dst += 3) {
      if (src == dst) continue;
      const RecoveryResult r =
          attempt_recovery(splicer.network(), src, dst, RecoveryConfig{}, rng);
      if (!r.delivered) continue;
      // The returned trace must be a genuine alive path src -> dst.
      ASSERT_TRUE(r.delivery.delivered());
      if (r.delivery.hop_count() == 0) {
        EXPECT_EQ(src, dst);
        continue;
      }
      EXPECT_EQ(r.delivery.hops.front().node, src);
      EXPECT_EQ(r.delivery.hops.back().next, dst);
      for (const HopRecord& hop : r.delivery.hops) {
        EXPECT_TRUE(alive[static_cast<std::size_t>(hop.edge)]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverySoundness,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace splice
