// Splicer public-API tests: construction, unions, header helpers, the
// Figure 1 motivating example, and end-to-end sends.
#include "splicing/splicer.h"

#include <gtest/gtest.h>

#include "graph/maxflow.h"
#include "topo/datasets.h"

namespace splice {
namespace {

SplicerConfig cfg_k(SliceId k, std::uint64_t seed = 1) {
  SplicerConfig cfg;
  cfg.slices = k;
  cfg.seed = seed;
  return cfg;
}

TEST(Splicer, ConstructsWithDefaults) {
  const Splicer splicer(topo::geant(), SplicerConfig{});
  EXPECT_EQ(splicer.slice_count(), 5);
  EXPECT_EQ(splicer.graph().node_count(), 23);
  EXPECT_EQ(splicer.fibs().slice_count(), 5);
}

TEST(Splicer, SendDeliversOnIntactNetwork) {
  const Splicer splicer(topo::geant(), cfg_k(3));
  Rng rng(2);
  const Delivery d = splicer.send(0, 12, splicer.make_random_header(rng));
  EXPECT_TRUE(d.delivered());
}

TEST(Splicer, PinnedHeaderFollowsOneSlice) {
  const Splicer splicer(topo::geant(), cfg_k(4));
  const Delivery d = splicer.send(0, 12, splicer.make_pinned_header(0));
  ASSERT_TRUE(d.delivered());
  for (const HopRecord& hop : d.hops) EXPECT_EQ(hop.slice, 0);
  // Pinned slice 0 = normal shortest path routing.
  const auto expected = splicer.control_plane().slice(0).path(0, 12);
  ASSERT_EQ(d.hops.size() + 1, expected.size());
  for (std::size_t i = 0; i < d.hops.size(); ++i) {
    EXPECT_EQ(d.hops[i].next, expected[i + 1]);
  }
}

TEST(Splicer, UnionGrowsWithK) {
  const Splicer splicer(topo::sprint(), cfg_k(5));
  const NodeId dst = 10;
  std::size_t prev = 0;
  for (SliceId k = 1; k <= 5; ++k) {
    const Digraph u = splicer.spliced_union(dst, k);
    EXPECT_GE(u.arc_count(), prev);
    prev = u.arc_count();
  }
  // With 5 slices there must be real extra diversity over one tree.
  const Digraph u1 = splicer.spliced_union(dst, 1);
  const Digraph u5 = splicer.spliced_union(dst, 5);
  EXPECT_GT(u5.arc_count(), u1.arc_count());
}

TEST(Splicer, UnionWithK1IsATree) {
  const Splicer splicer(topo::sprint(), cfg_k(3));
  const Digraph u = splicer.spliced_union(7, 1);
  // Tree toward dst: every node except dst has out-degree exactly 1.
  for (NodeId v = 0; v < u.node_count(); ++v) {
    EXPECT_EQ(u.successors(v).size(), v == 7 ? 0u : 1u);
  }
}

TEST(Splicer, SplicedConnectedOnIntactGraph) {
  const Splicer splicer(topo::geant(), cfg_k(2));
  for (NodeId s = 0; s < splicer.graph().node_count(); s += 3) {
    for (NodeId t = 0; t < splicer.graph().node_count(); t += 5) {
      EXPECT_TRUE(splicer.spliced_connected(s, t, 2));
    }
  }
}

TEST(Splicer, SplicedConnectedRespectsMask) {
  // Figure 1 example: fail one link on each disjoint path. With a single
  // slice the pair disconnects; with both paths spliced it must survive
  // when the failed links are on *different* segments covered by slices.
  Graph g = topo::figure1();
  // Force the two slices onto the two disjoint paths by weight choice:
  // slice 0 (original weights) prefers path A; make path B attractive via
  // a dedicated slice using perturb_first_slice=false + seed search is
  // fragile here, so instead check the underlying-graph property that the
  // splicer exposes: masking edges of one path keeps connectivity.
  const Splicer splicer(std::move(g), cfg_k(2, 3));
  std::vector<char> alive(6, 1);
  // Edges 0..2 are path A (s-a1, a1-a2, a2-t); fail the middle of A.
  alive[1] = 0;
  // The spliced union may or may not contain path B arcs depending on the
  // perturbation draw; the *underlying* graph stays connected, and k=2
  // union connectivity must never exceed it.
  const bool connected2 = splicer.spliced_connected(0, 1, 2, alive);
  const bool connected1 = splicer.spliced_connected(0, 1, 1, alive);
  EXPECT_GE(connected2, connected1);  // monotone in k
}

TEST(Splicer, ConnectivityMonotoneInK) {
  const Splicer splicer(topo::sprint(), cfg_k(5, 4));
  std::vector<char> alive(84, 1);
  // Fail a batch of links.
  for (EdgeId e = 0; e < 84; e += 7) alive[static_cast<std::size_t>(e)] = 0;
  for (NodeId s = 0; s < 52; s += 9) {
    for (NodeId t = 0; t < 52; t += 11) {
      if (s == t) continue;
      bool prev = false;
      for (SliceId k = 1; k <= 5; ++k) {
        const bool now = splicer.spliced_connected(s, t, k, alive);
        EXPECT_GE(now, prev) << s << "->" << t << " k=" << k;
        prev = now;
      }
    }
  }
}

TEST(Splicer, Figure1SplicingBeatsSinglePath) {
  // The paper's headline intuition (Figure 1): with both disjoint paths
  // available through splicing, disconnection requires a full cut. Build a
  // control plane where slice 1's perturbation actually discovers path B:
  // we overweight path A so the perturbed slice flips to B.
  Graph g = topo::figure1();
  // Path A edges get weight 1.1 — slice 0 (original weights) deterministically
  // picks the lighter path B, while perturbed slices flip to A with high
  // probability. Then failing one B link leaves k=4 connected via A.
  g.set_weight(0, 1.1);  // s-a1
  g.set_weight(1, 1.1);  // a1-a2
  g.set_weight(2, 1.1);  // a2-t
  SplicerConfig cfg = cfg_k(4, 9);
  cfg.perturbation = {PerturbationKind::kUniform, 0.0, 3.0};
  const Splicer splicer(std::move(g), cfg);

  // Slice 0 routes s->t over path B (edges 3,4,5). Fail one path-B link.
  std::vector<char> alive(6, 1);
  alive[4] = 0;
  EXPECT_FALSE(splicer.spliced_connected(0, 1, 1, alive));
  // With enough slices the union contains both paths; A survives. (The
  // union of 4 perturbed trees on this 6-edge graph covers path A with
  // overwhelming probability; seed fixed for determinism.)
  EXPECT_TRUE(splicer.spliced_connected(0, 1, 4, alive));
}

TEST(Splicer, UnionConnectivityApproachesGraphConnectivity) {
  // Appendix A flavor: the (s,t) arc connectivity of the spliced union
  // grows toward the underlying graph's edge connectivity.
  const Graph g = topo::geant();
  const Splicer splicer(Graph(g), cfg_k(10, 5));
  const NodeId s = g.find_node("PT-Lisbon");
  const NodeId t = g.find_node("SE-Stockholm");
  ASSERT_NE(s, kInvalidNode);
  ASSERT_NE(t, kInvalidNode);
  const int graph_conn = pair_edge_connectivity(g, s, t);
  const Digraph u1 = splicer.spliced_union(t, 1);
  const Digraph u10 = splicer.spliced_union(t, 10);
  const int conn1 = pair_arc_connectivity(u1, s, t);
  const int conn10 = pair_arc_connectivity(u10, s, t);
  EXPECT_EQ(conn1, 1);  // a tree has exactly one path
  EXPECT_GT(conn10, conn1);
  EXPECT_LE(conn10, graph_conn);
}

TEST(SplicerDeath, RejectsZeroSlices) {
  SplicerConfig cfg;
  cfg.slices = 0;
  EXPECT_DEATH(Splicer(topo::figure1(), cfg), "Precondition");
}

TEST(SplicerDeath, RejectsOversizedHeader) {
  SplicerConfig cfg;
  cfg.slices = 64;       // 6 bits per hop
  cfg.header_hops = 40;  // 240 bits > 128
  EXPECT_DEATH(Splicer(topo::figure1(), cfg), "Precondition");
}

}  // namespace
}  // namespace splice
