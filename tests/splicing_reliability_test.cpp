// SplicedReliabilityAnalyzer tests: agreement with the Splicer's explicit
// union construction, monotonicity in k, and bounds against the underlying
// graph ("best possible") — the §4.2 relationships.
#include "splicing/reliability.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "sim/failure.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"

namespace splice {
namespace {

struct Harness {
  explicit Harness(Graph graph, SliceId k, std::uint64_t seed = 1)
      : g(std::move(graph)),
        mir(g, ControlPlaneConfig{
                   k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, seed, false}),
        analyzer(g, mir) {}

  Graph g;
  MultiInstanceRouting mir;
  SplicedReliabilityAnalyzer analyzer;
};

TEST(ReliabilityAnalyzer, IntactGraphFullyConnected) {
  Harness s(topo::geant(), 3);
  EXPECT_EQ(s.analyzer.disconnected_pairs(1), 0);
  EXPECT_EQ(s.analyzer.disconnected_pairs(3), 0);
  EXPECT_DOUBLE_EQ(s.analyzer.disconnected_fraction(3), 0.0);
}

TEST(ReliabilityAnalyzer, ConnectedPairQueries) {
  Harness s(topo::geant(), 2);
  EXPECT_TRUE(s.analyzer.connected(0, 5, 2));
  EXPECT_TRUE(s.analyzer.connected(3, 3, 1));  // self
}

TEST(ReliabilityAnalyzer, AllEdgesFailedDisconnectsEverything) {
  Harness s(topo::geant(), 2);
  const std::vector<char> alive(37, 0);
  EXPECT_EQ(s.analyzer.disconnected_pairs(2, alive), 23LL * 22);
  EXPECT_DOUBLE_EQ(s.analyzer.disconnected_fraction(2, alive), 1.0);
}

TEST(ReliabilityAnalyzer, MatchesSplicerUnionReachability) {
  // The analyzer's incremental reverse-BFS must agree exactly with
  // explicitly building the union digraph and running forward reachability.
  const std::uint64_t seed = 21;
  Harness s(topo::sprint(), 4, seed);
  SplicerConfig scfg;
  scfg.slices = 4;
  scfg.seed = seed;
  const Splicer splicer(Graph(s.g), scfg);

  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto alive = sample_alive_mask(s.g.edge_count(), 0.08, rng);
    for (SliceId k = 1; k <= 4; ++k) {
      long long mismatch = 0;
      for (NodeId dst = 0; dst < s.g.node_count(); dst += 5) {
        const auto reach = s.analyzer.reachable_sources(
            dst, k, alive, UnionSemantics::kDirectedForwarding);
        for (NodeId src = 0; src < s.g.node_count(); ++src) {
          if (src == dst) continue;
          const bool a = reach[static_cast<std::size_t>(src)] != 0;
          const bool b = splicer.spliced_connected(src, dst, k, alive);
          mismatch += a != b ? 1 : 0;
        }
      }
      EXPECT_EQ(mismatch, 0) << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(ReliabilityAnalyzer, DirectedIsStricterThanUndirected) {
  // Forwarding reachability (directed arcs) can never connect more pairs
  // than the paper's undirected union-graph construction.
  Harness s(topo::sprint(), 5);
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const auto alive = sample_alive_mask(s.g.edge_count(), 0.1, rng);
    for (SliceId k = 1; k <= 5; ++k) {
      EXPECT_GE(s.analyzer.disconnected_pairs(
                    k, alive, UnionSemantics::kDirectedForwarding),
                s.analyzer.disconnected_pairs(
                    k, alive, UnionSemantics::kUndirectedLinks));
    }
  }
}

TEST(ReliabilityAnalyzer, SemanticsAgreeForSingleSlice) {
  // One tree: the unique path toward the destination is directed toward it,
  // so both semantics coincide.
  Harness s(topo::sprint(), 1);
  Rng rng(32);
  for (int trial = 0; trial < 15; ++trial) {
    const auto alive = sample_alive_mask(s.g.edge_count(), 0.1, rng);
    EXPECT_EQ(s.analyzer.disconnected_pairs(
                  1, alive, UnionSemantics::kDirectedForwarding),
              s.analyzer.disconnected_pairs(
                  1, alive, UnionSemantics::kUndirectedLinks));
  }
}

TEST(ReliabilityAnalyzer, MonotoneInK) {
  Harness s(topo::sprint(), 5);
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto alive = sample_alive_mask(s.g.edge_count(), 0.1, rng);
    long long prev = 1LL << 60;
    for (SliceId k = 1; k <= 5; ++k) {
      const long long now = s.analyzer.disconnected_pairs(k, alive);
      EXPECT_LE(now, prev) << "k=" << k;
      prev = now;
    }
  }
}

TEST(ReliabilityAnalyzer, NeverBeatsUnderlyingGraph) {
  // Spliced connectivity is bounded by the underlying graph's connectivity
  // on the surviving edges (§2: the reliability shortfall is nonnegative).
  Harness s(topo::sprint(), 5);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto alive = sample_alive_mask(s.g.edge_count(), 0.08, rng);
    const long long best = disconnected_ordered_pairs(s.g, alive);
    for (SliceId k = 1; k <= 5; ++k) {
      EXPECT_GE(s.analyzer.disconnected_pairs(k, alive), best);
    }
  }
}

TEST(ReliabilityAnalyzer, SingleSliceEqualsTreeSurvival) {
  // With k=1 a pair is connected iff every edge of its slice-0 path toward
  // the destination survives.
  Harness s(topo::geant(), 1);
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const auto alive = sample_alive_mask(s.g.edge_count(), 0.1, rng);
    for (NodeId dst = 0; dst < s.g.node_count(); dst += 4) {
      const auto reach = s.analyzer.reachable_sources(dst, 1, alive);
      for (NodeId src = 0; src < s.g.node_count(); ++src) {
        if (src == dst) continue;
        bool path_alive = true;
        NodeId cur = src;
        while (cur != dst) {
          const EdgeId e = s.mir.slice(0).next_hop_edge(cur, dst);
          ASSERT_NE(e, kInvalidEdge);
          if (!alive[static_cast<std::size_t>(e)]) {
            path_alive = false;
            break;
          }
          cur = s.mir.slice(0).next_hop(cur, dst);
        }
        EXPECT_EQ(reach[static_cast<std::size_t>(src)] != 0, path_alive)
            << src << "->" << dst;
      }
    }
  }
}

TEST(ReliabilityAnalyzer, ReachableSourcesMarksDestination) {
  Harness s(topo::geant(), 2);
  const auto reach = s.analyzer.reachable_sources(7, 2);
  EXPECT_TRUE(reach[7]);
}

// Property sweep: splicing on the ring cannot beat the ring's own 2-edge
// connectivity — failing two edges always cuts some pair regardless of k.
class RingBound : public ::testing::TestWithParam<SliceId> {};

TEST_P(RingBound, TwoFailuresAlwaysCutThePingRing) {
  const SliceId k = GetParam();
  Graph ring_graph(6);
  for (NodeId v = 0; v < 6; ++v)
    ring_graph.add_edge(v, (v + 1) % 6, 1.0);
  Harness s(std::move(ring_graph), k, 13);
  std::vector<char> alive(6, 1);
  alive[0] = 0;
  alive[3] = 0;  // opposite edges: graph splits into two halves
  const long long best = disconnected_ordered_pairs(s.g, alive);
  EXPECT_GT(best, 0);
  EXPECT_GE(s.analyzer.disconnected_pairs(k, alive), best);
}

INSTANTIATE_TEST_SUITE_P(SliceCounts, RingBound, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace splice
