// Advisor tests: criticality ranking correctness and slice-budget search.
#include "analysis/advisor.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "topo/datasets.h"

namespace splice {
namespace {

MultiInstanceRouting make_mir(const Graph& g, SliceId k) {
  ControlPlaneConfig cfg;
  cfg.slices = k;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  cfg.seed = 17;
  return MultiInstanceRouting(g, cfg);
}

TEST(Criticality, CoversEveryLinkSortedByImpact) {
  const Graph g = topo::geant();
  const auto mir = make_mir(g, 4);
  const auto ranking = rank_link_criticality(g, mir, 4);
  ASSERT_EQ(ranking.size(), 37u);
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].pairs_cut_spliced,
              ranking[i].pairs_cut_spliced);
  }
  // Every edge appears exactly once.
  std::vector<char> seen(37, 0);
  for (const auto& c : ranking) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(c.edge)]);
    seen[static_cast<std::size_t>(c.edge)] = 1;
  }
}

TEST(Criticality, SplicingBetweenPhysicalAndSinglePath) {
  const Graph g = topo::sprint();
  const auto mir = make_mir(g, 5);
  for (const auto& c : rank_link_criticality(g, mir, 5)) {
    EXPECT_GE(c.pairs_cut_spliced, c.pairs_cut_physical);
    EXPECT_LE(c.pairs_cut_spliced, c.pairs_cut_single_path);
  }
}

TEST(Criticality, BridgeIsMostCritical) {
  // Two triangles joined by one bridge: the bridge cuts 3*3*2 = 18 ordered
  // pairs physically; no triangle edge cuts anything.
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(5, 3, 1.0);
  const EdgeId bridge = g.add_edge(2, 3, 1.0);
  const auto mir = make_mir(g, 3);
  const auto ranking = rank_link_criticality(g, mir, 3);
  EXPECT_EQ(ranking.front().edge, bridge);
  EXPECT_EQ(ranking.front().pairs_cut_physical, 18);
  EXPECT_EQ(ranking.front().pairs_cut_spliced, 18);
  // With 3 slices on a triangle, non-bridge failures are fully masked.
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_EQ(ranking[i].pairs_cut_physical, 0);
  }
}

TEST(Criticality, MoreSlicesNeverIncreaseImpact) {
  const Graph g = topo::sprint();
  const auto mir = make_mir(g, 5);
  const auto k2 = rank_link_criticality(g, mir, 2);
  const auto k5 = rank_link_criticality(g, mir, 5);
  // Compare per edge (re-index by edge id).
  std::vector<long long> cut2(84), cut5(84);
  for (const auto& c : k2) cut2[static_cast<std::size_t>(c.edge)] = c.pairs_cut_spliced;
  for (const auto& c : k5) cut5[static_cast<std::size_t>(c.edge)] = c.pairs_cut_spliced;
  for (std::size_t e = 0; e < 84; ++e) EXPECT_LE(cut5[e], cut2[e]);
}

TEST(Advisor, FindsBudgetOnSprint) {
  SliceBudgetConfig cfg;
  cfg.target_disconnected = 0.02;
  cfg.p = 0.03;
  cfg.trials = 120;
  cfg.max_k = 10;
  const SliceBudgetResult r = advise_slice_budget(topo::sprint(), cfg);
  ASSERT_EQ(r.per_k.size(), 10u);
  EXPECT_GE(r.k, 2);       // one slice is surely not enough at 2%
  EXPECT_LE(r.k, 10);      // ten surely suffice on Sprint at p=0.03
  EXPECT_LE(r.achieved, cfg.target_disconnected);
  EXPECT_GE(r.achieved, r.best_possible - 1e-12);
  // Budget curve is monotone nonincreasing.
  for (std::size_t i = 1; i < r.per_k.size(); ++i) {
    EXPECT_LE(r.per_k[i], r.per_k[i - 1] + 1e-12);
  }
}

TEST(Advisor, ImpossibleTargetReportsMaxKPlusOne) {
  SliceBudgetConfig cfg;
  cfg.target_disconnected = 0.0;  // below the physical floor at p>0
  cfg.p = 0.1;
  cfg.trials = 40;
  cfg.max_k = 4;
  const SliceBudgetResult r = advise_slice_budget(topo::geant(), cfg);
  EXPECT_EQ(r.k, 5);
  EXPECT_GT(r.best_possible, 0.0);
}

TEST(Advisor, TrivialTargetNeedsOneSlice) {
  SliceBudgetConfig cfg;
  cfg.target_disconnected = 1.0;
  cfg.p = 0.05;
  cfg.trials = 20;
  cfg.max_k = 4;
  const SliceBudgetResult r = advise_slice_budget(topo::geant(), cfg);
  EXPECT_EQ(r.k, 1);
}

TEST(Advisor, ThreadedMatchesSequential) {
  SliceBudgetConfig seq;
  seq.trials = 60;
  seq.max_k = 5;
  seq.threads = 1;
  SliceBudgetConfig par = seq;
  par.threads = 4;
  const auto a = advise_slice_budget(topo::geant(), seq);
  const auto b = advise_slice_budget(topo::geant(), par);
  EXPECT_EQ(a.k, b.k);
  for (std::size_t i = 0; i < a.per_k.size(); ++i) {
    EXPECT_NEAR(a.per_k[i], b.per_k[i], 1e-12);
  }
}

}  // namespace
}  // namespace splice
