// Tests for the CLI flag parser.
#include "util/flags.h"

#include <gtest/gtest.h>

namespace splice {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = make({"prog", "--k=5", "--p=0.05"});
  EXPECT_EQ(f.get_int("k", 0), 5);
  EXPECT_DOUBLE_EQ(f.get_double("p", 0.0), 0.05);
}

TEST(Flags, SpaceSyntax) {
  const Flags f = make({"prog", "--topo", "sprint"});
  EXPECT_EQ(f.get_string("topo", ""), "sprint");
}

TEST(Flags, BareBoolean) {
  const Flags f = make({"prog", "--verbose"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.get_bool("quiet"));
}

TEST(Flags, BooleanBeforeAnotherFlag) {
  const Flags f = make({"prog", "--verbose", "--k=2"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_int("k", 0), 2);
}

TEST(Flags, BoolSpellings) {
  EXPECT_TRUE(make({"p", "--x=true"}).get_bool("x"));
  EXPECT_TRUE(make({"p", "--x=1"}).get_bool("x"));
  EXPECT_TRUE(make({"p", "--x=yes"}).get_bool("x"));
  EXPECT_TRUE(make({"p", "--x=on"}).get_bool("x"));
  EXPECT_FALSE(make({"p", "--x=false"}).get_bool("x", true));
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags f = make({"prog"});
  EXPECT_EQ(f.get_int("k", 9), 9);
  EXPECT_DOUBLE_EQ(f.get_double("p", 0.5), 0.5);
  EXPECT_EQ(f.get_string("topo", "geant"), "geant");
  EXPECT_FALSE(f.get("missing").has_value());
}

TEST(Flags, PositionalArguments) {
  const Flags f = make({"prog", "input.txt", "--k=2", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, ProgramName) {
  const Flags f = make({"bench_fig3"});
  EXPECT_EQ(f.program(), "bench_fig3");
}

TEST(Flags, NegativeNumbersAsValues) {
  const Flags f = make({"prog", "--offset", "-3"});
  EXPECT_EQ(f.get_int("offset", 0), -3);
}

}  // namespace
}  // namespace splice
