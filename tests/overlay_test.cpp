// Overlay-substrate tests: construction, RON failure semantics, re-probing,
// and overlay splicing end-to-end.
#include "overlay/overlay.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "sim/failure.h"
#include "splicing/recovery.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(OverlayMembers, SpreadAndBounds) {
  const Graph g = topo::sprint();
  const auto members = pick_overlay_members(g, 10);
  EXPECT_EQ(members.size(), 10u);
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_GT(members[i], members[i - 1]);  // strictly spread
  }
  // Asking for more members than nodes caps at the node count.
  EXPECT_EQ(pick_overlay_members(g, 500).size(),
            static_cast<std::size_t>(g.node_count()));
}

TEST(OverlayBuild, CliqueOverMembersWithLatencyWeights) {
  const Graph underlay = topo::sprint();
  const auto mapping = build_overlay(underlay, pick_overlay_members(underlay, 8));
  EXPECT_EQ(mapping.overlay.node_count(), 8);
  // Connected underlay => full mesh: C(8,2) virtual links.
  EXPECT_EQ(mapping.overlay.edge_count(), 28);
  // Each virtual-link weight equals the underlay shortest-path latency.
  for (EdgeId e = 0; e < mapping.overlay.edge_count(); ++e) {
    const Edge& ve = mapping.overlay.edge(e);
    const NodeId u = mapping.members[static_cast<std::size_t>(ve.u)];
    const NodeId v = mapping.members[static_cast<std::size_t>(ve.v)];
    EXPECT_NEAR(ve.weight, shortest_distance(underlay, u, v), 1e-9);
    // Measured path endpoints match.
    const auto& path = mapping.measured_paths[static_cast<std::size_t>(e)];
    EXPECT_EQ(path.front(), u);
    EXPECT_EQ(path.back(), v);
  }
}

TEST(OverlayBuild, OverlayNamesComeFromUnderlay) {
  const Graph underlay = topo::geant();
  const auto mapping = build_overlay(underlay, {0, 5, 9});
  EXPECT_EQ(mapping.overlay.name(0), underlay.name(0));
  EXPECT_EQ(mapping.overlay.name(2), underlay.name(9));
}

TEST(VirtualLinkLiveness, IntactUnderlayKeepsAllLinks) {
  const Graph underlay = topo::sprint();
  const auto mapping = build_overlay(underlay, pick_overlay_members(underlay, 6));
  const std::vector<char> all_alive(
      static_cast<std::size_t>(underlay.edge_count()), 1);
  const auto alive = virtual_link_liveness(underlay, mapping, all_alive);
  for (char a : alive) EXPECT_TRUE(a);
}

TEST(VirtualLinkLiveness, BreaksExactlyMeasuredPaths) {
  const Graph underlay = topo::sprint();
  const auto mapping = build_overlay(underlay, pick_overlay_members(underlay, 6));
  // Fail one underlay link; exactly the vlinks whose measured path crosses
  // it must die.
  std::vector<char> underlay_alive(
      static_cast<std::size_t>(underlay.edge_count()), 1);
  const EdgeId cut = 1;
  underlay_alive[static_cast<std::size_t>(cut)] = 0;
  const auto alive = virtual_link_liveness(underlay, mapping, underlay_alive);
  for (EdgeId e = 0; e < mapping.overlay.edge_count(); ++e) {
    bool crosses = false;
    const auto& path = mapping.measured_paths[static_cast<std::size_t>(e)];
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      crosses |= underlay.find_edge(path[i], path[i + 1]) == cut;
    }
    EXPECT_EQ(alive[static_cast<std::size_t>(e)] == 0, crosses) << e;
  }
}

TEST(Reprobe, RestoresConnectivityAtHigherLatency) {
  const Graph underlay = topo::sprint();
  const auto mapping = build_overlay(underlay, pick_overlay_members(underlay, 6));
  Rng rng(5);
  const auto underlay_alive = sample_alive_mask(underlay.edge_count(), 0.1, rng);
  const auto reprobed = reprobe_overlay(underlay, mapping, underlay_alive);
  // Re-probed virtual links can only be fewer (some pairs disconnected)...
  EXPECT_LE(reprobed.overlay.edge_count(), mapping.overlay.edge_count());
  // ...and never faster than the intact measurement.
  for (EdgeId e = 0; e < reprobed.overlay.edge_count(); ++e) {
    const Edge& ve = reprobed.overlay.edge(e);
    const NodeId u = reprobed.members[static_cast<std::size_t>(ve.u)];
    const NodeId v = reprobed.members[static_cast<std::size_t>(ve.v)];
    EXPECT_GE(ve.weight, shortest_distance(underlay, u, v) - 1e-9);
  }
}

TEST(OverlaySplicing, RecoversInsideReprobeWindow) {
  // End-to-end §5 scenario as a library-level test: build overlay splicer,
  // kill underlay links, mark dead vlinks, verify splicing recovers pairs
  // whose direct vlink died but which remain overlay-connected.
  const Graph underlay = topo::sprint();
  auto mapping = build_overlay(underlay, pick_overlay_members(underlay, 10));
  SplicerConfig cfg;
  cfg.slices = 4;
  cfg.seed = 3;
  cfg.perturbation = {PerturbationKind::kUniform, 0.0, 6.0};
  Splicer splicer(Graph(mapping.overlay), cfg);

  Rng rng(7);
  const auto underlay_alive =
      sample_alive_mask(underlay.edge_count(), 0.08, rng);
  const auto vlink_alive =
      virtual_link_liveness(underlay, mapping, underlay_alive);
  splicer.network().set_link_mask(vlink_alive);

  int broken = 0;
  int recovered = 0;
  RecoveryConfig rcfg;
  rcfg.scheme = RecoveryScheme::kNetworkDeflection;
  for (NodeId s = 0; s < splicer.graph().node_count(); ++s) {
    for (NodeId t = 0; t < splicer.graph().node_count(); ++t) {
      if (s == t) continue;
      const RecoveryResult r =
          attempt_recovery(splicer.network(), s, t, rcfg, rng);
      if (!r.initially_connected) {
        ++broken;
        recovered += r.delivered ? 1 : 0;
      }
    }
  }
  if (broken > 0) {
    EXPECT_GT(recovered, broken / 2);
  }
}

}  // namespace
}  // namespace splice
