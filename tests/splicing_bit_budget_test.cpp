// Header bit-budget tests: exact small cases, bounds, cross-checks against
// brute-force enumeration of the header generators.
#include "splicing/bit_budget.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "dataplane/splice_header.h"
#include "util/rng.h"

namespace splice {
namespace {

TEST(BitBudget, FullHeaderMatchesGeometry) {
  EXPECT_EQ(full_header_bits(1, 20), 0);
  EXPECT_EQ(full_header_bits(2, 20), 20);
  EXPECT_EQ(full_header_bits(4, 20), 40);
  EXPECT_EQ(full_header_bits(5, 20), 60);
  EXPECT_NEAR(full_header_log2_paths(4, 20), 40.0, 1e-12);
  EXPECT_NEAR(full_header_log2_paths(1, 20), 0.0, 1e-12);
}

TEST(BitBudget, CounterBits) {
  EXPECT_EQ(counter_header_bits(0), 0);
  EXPECT_EQ(counter_header_bits(1), 1);
  EXPECT_EQ(counter_header_bits(5), 3);
  EXPECT_EQ(counter_header_bits(255), 8);
  EXPECT_EQ(counter_header_bits(256), 9);
}

// Brute-force count of no-revisit sequences for tiny (k, h).
long long brute_no_revisit(SliceId k, int hops) {
  long long count = 0;
  std::vector<SliceId> seq(static_cast<std::size_t>(hops));
  const auto total = static_cast<long long>(std::pow(k, hops));
  for (long long code = 0; code < total; ++code) {
    long long c = code;
    for (int i = 0; i < hops; ++i) {
      seq[static_cast<std::size_t>(i)] = static_cast<SliceId>(c % k);
      c /= k;
    }
    std::set<SliceId> left;
    bool ok = true;
    for (int i = 1; i < hops && ok; ++i) {
      if (seq[i] != seq[i - 1]) {
        left.insert(seq[i - 1]);
        ok = !left.contains(seq[i]);
      }
    }
    count += ok ? 1 : 0;
  }
  return count;
}

TEST(BitBudget, NoRevisitMatchesBruteForce) {
  for (SliceId k : {1, 2, 3, 4}) {
    for (int hops : {1, 2, 3, 5, 7}) {
      const double expect = std::log2(static_cast<double>(
          brute_no_revisit(k, hops)));
      EXPECT_NEAR(no_revisit_log2_sequences(k, hops), expect, 1e-9)
          << "k=" << k << " hops=" << hops;
    }
  }
}

// Brute-force count of bounded-switch sequences.
long long brute_bounded(SliceId k, int hops, int max_switches) {
  long long count = 0;
  std::vector<SliceId> seq(static_cast<std::size_t>(hops));
  const auto total = static_cast<long long>(std::pow(k, hops));
  for (long long code = 0; code < total; ++code) {
    long long c = code;
    for (int i = 0; i < hops; ++i) {
      seq[static_cast<std::size_t>(i)] = static_cast<SliceId>(c % k);
      c /= k;
    }
    int switches = 0;
    for (int i = 1; i < hops; ++i) switches += seq[i] != seq[i - 1] ? 1 : 0;
    count += switches <= max_switches ? 1 : 0;
  }
  return count;
}

TEST(BitBudget, BoundedSwitchMatchesBruteForce) {
  for (SliceId k : {2, 3}) {
    for (int hops : {2, 4, 6}) {
      for (int s : {0, 1, 2, 3}) {
        const double expect =
            std::log2(static_cast<double>(brute_bounded(k, hops, s)));
        EXPECT_NEAR(bounded_switch_log2_sequences(k, hops, s), expect, 1e-9)
            << "k=" << k << " h=" << hops << " s=" << s;
      }
    }
  }
}

TEST(BitBudget, RestrictedSchemesAreSmaller) {
  // The §4.4/§5 point: restricted header schemes need far fewer bits than
  // the general encoding at realistic parameters.
  const SliceId k = 5;
  const int hops = 20;
  const double full = full_header_log2_paths(k, hops);
  const double no_revisit = no_revisit_log2_sequences(k, hops);
  const double bounded = bounded_switch_log2_sequences(k, hops, 3);
  EXPECT_LT(no_revisit, full);
  EXPECT_LT(bounded, full);
  EXPECT_LT(counter_header_bits(5), full_header_bits(k, hops));
  // ... while still exponential (orders of magnitude more options than a
  // handful of precomputed backup paths).
  EXPECT_GT(no_revisit, 10.0);
  EXPECT_GT(bounded, 10.0);
}

TEST(BitBudget, GeneratedHeadersFitTheCountedSpaces) {
  // Every sequence the generators emit belongs to the space the counters
  // count: sanity coupling between the generators and the combinatorics.
  Rng rng(3);
  const SliceId k = 4;
  const int hops = 8;
  for (int trial = 0; trial < 200; ++trial) {
    const auto nr = SpliceHeader::random_no_revisit(k, hops, rng).slices();
    std::set<SliceId> left;
    for (std::size_t i = 1; i < nr.size(); ++i) {
      if (nr[i] != nr[i - 1]) {
        left.insert(nr[i - 1]);
        ASSERT_FALSE(left.contains(nr[i]));
      }
    }
    const auto bs =
        SpliceHeader::random_bounded_switches(k, hops, 3, rng).slices();
    int switches = 0;
    for (std::size_t i = 1; i < bs.size(); ++i)
      switches += bs[i] != bs[i - 1] ? 1 : 0;
    ASSERT_LE(switches, 3);
  }
}

}  // namespace
}  // namespace splice
