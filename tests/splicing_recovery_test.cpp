// Recovery-scheme tests (§4.3): end-system coin-flip, network deflection,
// loop-free variants, counter scheme; interplay with spliced connectivity.
#include "splicing/recovery.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "splicing/reliability.h"
#include "topo/datasets.h"

namespace splice {
namespace {

struct NetFixture {
  explicit NetFixture(Graph graph, SliceId k, std::uint64_t seed = 1)
      : g(std::move(graph)),
        mir(g, ControlPlaneConfig{
                   k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, seed, false}),
        fibs(mir.build_fibs()),
        net(g, fibs) {}

  Graph g;
  MultiInstanceRouting mir;
  FibSet fibs;
  DataPlaneNetwork net;
};

TEST(RecoverySchemeNames, RoundTrip) {
  for (auto scheme :
       {RecoveryScheme::kEndSystemCoinFlip, RecoveryScheme::kEndSystemFresh,
        RecoveryScheme::kEndSystemNoRevisit,
        RecoveryScheme::kEndSystemBoundedSwitches,
        RecoveryScheme::kEndSystemFirstHopBiased,
        RecoveryScheme::kEndSystemCounter,
        RecoveryScheme::kNetworkDeflection}) {
    EXPECT_EQ(parse_recovery_scheme(to_string(scheme)), scheme);
  }
  EXPECT_THROW(parse_recovery_scheme("psychic"), std::invalid_argument);
}

TEST(RecoverySchemeNames, ShortAliases) {
  EXPECT_EQ(parse_recovery_scheme("coinflip"),
            RecoveryScheme::kEndSystemCoinFlip);
  EXPECT_EQ(parse_recovery_scheme("network"),
            RecoveryScheme::kNetworkDeflection);
}

TEST(Recovery, IntactNetworkSucceedsImmediately) {
  NetFixture f(topo::geant(), 3);
  Rng rng(1);
  const RecoveryResult r = attempt_recovery(f.net, 0, 12, RecoveryConfig{}, rng);
  EXPECT_TRUE(r.initially_connected);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.trials_used, 0);
}

TEST(Recovery, SelfDeliveryTrivial) {
  NetFixture f(topo::geant(), 2);
  Rng rng(2);
  const RecoveryResult r = attempt_recovery(f.net, 4, 4, RecoveryConfig{}, rng);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.delivery.hop_count(), 0);
}

TEST(Recovery, CoinFlipRecoversFromSingleFailure) {
  // Fail the first link of the slice-0 path between a well-connected pair;
  // with several slices and 5 trials the coin-flip scheme should recover.
  NetFixture f(topo::sprint(), 5, 3);
  const NodeId src = f.g.find_node("Atlanta");
  const NodeId dst = f.g.find_node("Seattle");
  ASSERT_NE(src, kInvalidNode);
  ASSERT_NE(dst, kInvalidNode);
  const EdgeId first = f.mir.slice(0).next_hop_edge(src, dst);
  f.net.set_link_state(first, false);
  int recovered = 0;
  const int episodes = 50;
  Rng rng(4);
  for (int i = 0; i < episodes; ++i) {
    const RecoveryResult r =
        attempt_recovery(f.net, src, dst, RecoveryConfig{}, rng);
    EXPECT_FALSE(r.initially_connected);
    recovered += r.delivered ? 1 : 0;
    if (r.delivered) {
      EXPECT_GE(r.trials_used, 1);
      EXPECT_LE(r.trials_used, 5);
    }
  }
  EXPECT_GT(recovered, episodes * 8 / 10);
}

TEST(Recovery, NetworkDeflectionIsSingleShot) {
  NetFixture f(topo::sprint(), 5, 3);
  const NodeId src = f.g.find_node("Atlanta");
  const NodeId dst = f.g.find_node("Seattle");
  const EdgeId first = f.mir.slice(0).next_hop_edge(src, dst);
  f.net.set_link_state(first, false);
  RecoveryConfig cfg;
  cfg.scheme = RecoveryScheme::kNetworkDeflection;
  Rng rng(5);
  const RecoveryResult r = attempt_recovery(f.net, src, dst, cfg, rng);
  EXPECT_TRUE(r.delivered);
  EXPECT_FALSE(r.initially_connected);  // a deflection was required
  EXPECT_EQ(r.trials_used, 0);          // no sender retries
  bool any_deflect = false;
  for (const HopRecord& h : r.delivery.hops) any_deflect |= h.deflected;
  EXPECT_TRUE(any_deflect);
}

TEST(Recovery, NetworkDeflectionCleanPathCountsConnected) {
  NetFixture f(topo::geant(), 3);
  RecoveryConfig cfg;
  cfg.scheme = RecoveryScheme::kNetworkDeflection;
  Rng rng(6);
  const RecoveryResult r = attempt_recovery(f.net, 1, 9, cfg, rng);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.initially_connected);
}

TEST(Recovery, ImpossibleWhenNodeIsolated) {
  // Fail every link incident to the destination: nothing can recover.
  NetFixture f(topo::geant(), 4, 7);
  const NodeId dst = 3;
  for (const Incidence& inc : f.g.neighbors(dst))
    f.net.set_link_state(inc.edge, false);
  for (auto scheme :
       {RecoveryScheme::kEndSystemCoinFlip, RecoveryScheme::kEndSystemFresh,
        RecoveryScheme::kNetworkDeflection}) {
    RecoveryConfig cfg;
    cfg.scheme = scheme;
    Rng rng(8);
    const RecoveryResult r = attempt_recovery(f.net, 0, dst, cfg, rng);
    EXPECT_FALSE(r.delivered) << to_string(scheme);
  }
}

TEST(Recovery, TrialsNeverExceedBudget) {
  NetFixture f(topo::sprint(), 3, 9);
  Rng mask_rng(10);
  const auto alive = sample_alive_mask(f.g.edge_count(), 0.15, mask_rng);
  f.net.set_link_mask(alive);
  RecoveryConfig cfg;
  cfg.max_trials = 3;
  Rng rng(11);
  for (NodeId src = 0; src < f.g.node_count(); src += 5) {
    for (NodeId dst = 0; dst < f.g.node_count(); dst += 7) {
      if (src == dst) continue;
      const RecoveryResult r = attempt_recovery(f.net, src, dst, cfg, rng);
      EXPECT_LE(r.trials_used, 3);
    }
  }
}

TEST(Recovery, ZeroTrialBudgetMeansInitialOnly) {
  NetFixture f(topo::sprint(), 3, 9);
  const NodeId src = 0;
  const NodeId dst = 20;
  const EdgeId first = f.mir.slice(0).next_hop_edge(src, dst);
  f.net.set_link_state(first, false);
  RecoveryConfig cfg;
  cfg.max_trials = 0;
  Rng rng(12);
  const RecoveryResult r = attempt_recovery(f.net, src, dst, cfg, rng);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.trials_used, 0);
}

TEST(Recovery, NoRevisitSchemeDeliversLoopFreePaths) {
  NetFixture f(topo::sprint(), 5, 13);
  Rng mask_rng(14);
  const auto alive = sample_alive_mask(f.g.edge_count(), 0.1, mask_rng);
  f.net.set_link_mask(alive);
  RecoveryConfig cfg;
  cfg.scheme = RecoveryScheme::kEndSystemNoRevisit;
  Rng rng(15);
  for (NodeId src = 0; src < f.g.node_count(); src += 3) {
    for (NodeId dst = 0; dst < f.g.node_count(); dst += 9) {
      if (src == dst) continue;
      const RecoveryResult r = attempt_recovery(f.net, src, dst, cfg, rng);
      if (r.delivered && !r.initially_connected) {
        // No persistent loops: a trace may pass a node at most a bounded
        // number of times, and no two-hop ping-pong beyond slice switches.
        EXPECT_EQ(r.delivery.outcome, ForwardOutcome::kDelivered);
        EXPECT_LE(r.delivery.hop_count(), 2 * f.g.node_count());
      }
    }
  }
}

TEST(Recovery, CounterSchemeCanRecover) {
  NetFixture f(topo::sprint(), 5, 16);
  const NodeId src = f.g.find_node("Miami");
  const NodeId dst = f.g.find_node("Boston");
  const EdgeId first = f.mir.slice(0).next_hop_edge(src, dst);
  f.net.set_link_state(first, false);
  RecoveryConfig cfg;
  cfg.scheme = RecoveryScheme::kEndSystemCounter;
  Rng rng(17);
  int recovered = 0;
  for (int i = 0; i < 20; ++i) {
    recovered +=
        attempt_recovery(f.net, src, dst, cfg, rng).delivered ? 1 : 0;
  }
  EXPECT_GT(recovered, 0);
}

TEST(Recovery, RecoveryImpliesSplicedConnectivity) {
  // Soundness: whenever any end-system scheme recovers, the spliced union
  // must contain a surviving path (recovery cannot invent connectivity).
  NetFixture f(topo::sprint(), 4, 18);
  const SplicedReliabilityAnalyzer analyzer(f.g, f.mir);
  Rng mask_rng(19);
  Rng rng(20);
  for (int trial = 0; trial < 10; ++trial) {
    const auto alive = sample_alive_mask(f.g.edge_count(), 0.12, mask_rng);
    f.net.set_link_mask(alive);
    for (NodeId src = 0; src < f.g.node_count(); src += 7) {
      for (NodeId dst = 0; dst < f.g.node_count(); dst += 5) {
        if (src == dst) continue;
        const RecoveryResult r =
            attempt_recovery(f.net, src, dst, RecoveryConfig{}, rng);
        if (r.delivered) {
          EXPECT_TRUE(analyzer.connected(src, dst, 4, alive))
              << src << "->" << dst;
        }
      }
    }
  }
}

// Sweep: every scheme respects the trial budget and returns coherent state.
class SchemeSweep : public ::testing::TestWithParam<RecoveryScheme> {};

TEST_P(SchemeSweep, CoherentResults) {
  NetFixture f(topo::geant(), 4, 21);
  Rng mask_rng(22);
  const auto alive = sample_alive_mask(f.g.edge_count(), 0.15, mask_rng);
  f.net.set_link_mask(alive);
  RecoveryConfig cfg;
  cfg.scheme = GetParam();
  Rng rng(23);
  for (NodeId src = 0; src < f.g.node_count(); src += 2) {
    for (NodeId dst = 0; dst < f.g.node_count(); dst += 3) {
      if (src == dst) continue;
      const RecoveryResult r = attempt_recovery(f.net, src, dst, cfg, rng);
      if (r.initially_connected) {
        EXPECT_TRUE(r.delivered);
        EXPECT_EQ(r.trials_used, 0);
      }
      if (r.delivered) {
        EXPECT_EQ(r.delivery.outcome, ForwardOutcome::kDelivered);
        if (r.delivery.hop_count() > 0) {
          EXPECT_EQ(r.delivery.hops.back().next, dst);
          EXPECT_EQ(r.delivery.hops.front().node, src);
        }
      }
      EXPECT_LE(r.trials_used, cfg.max_trials);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweep,
    ::testing::Values(RecoveryScheme::kEndSystemCoinFlip,
                      RecoveryScheme::kEndSystemFresh,
                      RecoveryScheme::kEndSystemNoRevisit,
                      RecoveryScheme::kEndSystemBoundedSwitches,
                      RecoveryScheme::kEndSystemFirstHopBiased,
                      RecoveryScheme::kEndSystemCounter,
                      RecoveryScheme::kNetworkDeflection));

}  // namespace
}  // namespace splice
