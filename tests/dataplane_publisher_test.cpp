// Live-publication differential tests: every epoch the FibPublisher
// publishes must be bit-identical to a from-scratch control plane built at
// the same link state — at quiescent points with 1/2/8 concurrent reader
// threads, and after every single event when replayed serially. The
// incremental patch path (patch_destination / patch_fibs over the touched
// set apply_edge_weights reports) is checked against full build_fibs()
// rebuilds byte for byte and by forwarding equality across policies, and
// ShardPipeline::refresh_fib must leave the sharded pipeline bit-identical
// to the freshly published table across an epoch swap.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "dataplane/fib_publisher.h"
#include "dataplane/network.h"
#include "dataplane/shard_pipeline.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "routing/multi_instance.h"
#include "sim/batch_feed.h"
#include "sim/churn.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

ControlPlaneConfig make_cfg(SliceId k) {
  return ControlPlaneConfig{
      k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false};
}

/// From-scratch control plane at the live weight state of `mir` (the
/// differential oracle: repair + patch must equal rebuild, bit for bit).
MultiInstanceRouting rebuild_from_live(const Graph& g,
                                       const MultiInstanceRouting& mir) {
  std::vector<std::vector<Weight>> weights(
      static_cast<std::size_t>(mir.slice_count()));
  for (SliceId s = 0; s < mir.slice_count(); ++s) {
    const auto w = mir.slice(s).weights();
    weights[static_cast<std::size_t>(s)].assign(w.begin(), w.end());
  }
  return MultiInstanceRouting(g, std::move(weights), /*threads=*/1);
}

void expect_fibs_identical(const FibSet& got, const FibSet& want,
                           const char* what) {
  ASSERT_EQ(got.slice_count(), want.slice_count()) << what;
  ASSERT_EQ(got.node_count(), want.node_count()) << what;
  const auto a = got.data();
  const auto b = want.data();
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(FibEntry)), 0)
      << what;
}

void expect_summaries_equal(std::span<const ForwardSummary> got,
                            std::span<const ForwardSummary> want,
                            const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].outcome, want[i].outcome) << what << " packet " << i;
    ASSERT_EQ(got[i].hops, want[i].hops) << what << " packet " << i;
    ASSERT_EQ(got[i].cost, want[i].cost) << what << " packet " << i;
    ASSERT_EQ(got[i].deflected, want[i].deflected) << what << " packet " << i;
  }
}

// ---------------------------------------------------------------------------
// Quiescent-point differential under concurrent readers.
// ---------------------------------------------------------------------------

TEST(FibPublisher, QuiescentTableBitIdenticalAt1_2_8Readers) {
  const Graph g = topo::abilene();
  for (const int readers : {1, 2, 8}) {
    FibPublisher pub(g, make_cfg(3));
    std::atomic<bool> stop{false};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([&, r] {
        FibPublisher::Reader reader(pub);
        BatchFeedConfig feed;
        feed.header_k = 3;
        feed.packets_per_trial = 48;
        std::vector<char> mask;
        std::vector<Packet> packets;
        fill_trial_batch(g, feed, 0x9e000 + static_cast<std::uint64_t>(r), 0,
                         mask, packets);
        std::vector<ForwardSummary> out(packets.size());
        ForwardWorkspace ws;
        while (!stop.load(std::memory_order_acquire)) {
          const DataPlaneNetwork& net = reader.pin();
          net.forward_stats_batch(packets, {}, out, ws);
          reader.unpin();
        }
      });
    }

    ChurnConfig cfg;
    cfg.incidents = 40;
    cfg.seed = 11 + static_cast<std::uint64_t>(readers);
    const auto trace = generate_churn_trace(g, cfg);
    for (const LinkEvent& ev : trace) apply_churn_event(pub, ev);
    stop.store(true, std::memory_order_release);
    for (auto& t : pool) t.join();

    pub.quiesce();
    // The trace closes every window, so the live weights equal the
    // originals and every link is back up.
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_TRUE(pub.published_net().link_alive(e)) << "edge " << e;
    }
    MultiInstanceRouting fresh = rebuild_from_live(g, pub.control());
    const FibSet want = fresh.build_fibs();
    expect_fibs_identical(pub.published_fibs(), want, "quiescent");
  }
}

// ---------------------------------------------------------------------------
// Serial replay: every published epoch equals a from-scratch build.
// ---------------------------------------------------------------------------

TEST(FibPublisher, EveryPublishedEpochMatchesScratchRebuild) {
  Graph g = erdos_renyi(24, 0.18, 5);
  make_connected(g, 6);
  FibPublisher pub(g, make_cfg(3));
  ChurnConfig cfg;
  cfg.incidents = 24;
  cfg.seed = 3;
  const auto trace = generate_churn_trace(g, cfg);
  ASSERT_FALSE(trace.empty());

  std::uint64_t version = pub.published_version();
  for (const LinkEvent& ev : trace) {
    const PublishStats st = apply_churn_event(pub, ev);
    EXPECT_EQ(st.epoch, pub.epoch());
    EXPECT_EQ(pub.published_version(), version + 1);
    version = pub.published_version();
    // The epoch counter and the snapshot version advance in lockstep.
    EXPECT_EQ(pub.epoch(), version);
    EXPECT_GT(st.latency_ns, 0u);

    MultiInstanceRouting fresh = rebuild_from_live(g, pub.control());
    const FibSet want = fresh.build_fibs();
    expect_fibs_identical(pub.published_fibs(), want, "per-event");
  }
}

// ---------------------------------------------------------------------------
// Incremental patch vs full rebuild.
// ---------------------------------------------------------------------------

TEST(MultiInstanceRouting, PatchedFibsMatchFullRebuildAcrossEventKinds) {
  for (Graph& g : std::vector<Graph>{topo::abilene(), topo::geant()}) {
    MultiInstanceRouting mir(g, make_cfg(4));
    FibSet fibs = mir.build_fibs();
    const auto n = static_cast<std::size_t>(g.node_count());
    const std::vector<Weight> original = g.weights();
    Rng rng(17);

    for (int i = 0; i < 12; ++i) {
      const auto e = static_cast<EdgeId>(
          rng.below(static_cast<std::uint64_t>(g.edge_count())));
      Weight w;
      switch (rng.below(3)) {
        case 0:
          w = kInfiniteWeight;  // kill
          break;
        case 1:
          w = original[static_cast<std::size_t>(e)] * 7.0;  // cost-out
          break;
        default:
          w = original[static_cast<std::size_t>(e)];  // restore
          break;
      }
      std::vector<char> touched(n, 0);
      mir.apply_edge_event(e, w, &touched);
      const int patched = mir.patch_fibs(fibs, touched);
      EXPECT_GE(patched, 0);
      const FibSet want = mir.build_fibs();
      expect_fibs_identical(fibs, want, "patched-vs-rebuilt");
    }
  }
}

TEST(MultiInstanceRouting, PatchDestinationRestoresACorruptedColumn) {
  const Graph g = topo::abilene();
  MultiInstanceRouting mir(g, make_cfg(3));
  FibSet fibs = mir.build_fibs();
  const FibSet want = mir.build_fibs();

  const NodeId dst = 4;
  for (SliceId s = 0; s < mir.slice_count(); ++s) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      fibs.set(s, v, dst, FibEntry{0, 0});  // garbage, including (dst, dst)
    }
  }
  mir.patch_destination(fibs, dst);
  expect_fibs_identical(fibs, want, "column-restore");
  // The identity cell is reset to the invalid entry, like build_fibs().
  EXPECT_FALSE(fibs.lookup(0, dst, dst).valid());
}

TEST(MultiInstanceRouting, PatchedTablesForwardIdenticallyAcrossPolicies) {
  const Graph g = topo::geant();
  MultiInstanceRouting mir(g, make_cfg(4));
  FibSet patched = mir.build_fibs();

  // A couple of events, patched incrementally into `patched`.
  const auto n = static_cast<std::size_t>(g.node_count());
  for (const EdgeId e : {EdgeId{2}, EdgeId{9}}) {
    std::vector<char> touched(n, 0);
    mir.apply_edge_event(e, kInfiniteWeight, &touched);
    mir.patch_fibs(patched, touched);
  }
  const FibSet rebuilt = mir.build_fibs();

  DataPlaneNetwork net_patched(g, patched);
  DataPlaneNetwork net_rebuilt(g, rebuilt);
  net_patched.set_link_state(2, false);
  net_patched.set_link_state(9, false);
  net_rebuilt.set_link_state(2, false);
  net_rebuilt.set_link_state(9, false);

  BatchFeedConfig feed;
  feed.header_k = 4;
  feed.packets_per_trial = 256;
  feed.failure_p = 0.1;
  std::vector<char> mask;
  std::vector<Packet> packets;
  fill_trial_batch(g, feed, 0xbeef, 1, mask, packets);
  std::vector<ForwardSummary> got(packets.size());
  std::vector<ForwardSummary> want(packets.size());
  for (const ExhaustPolicy exhaust :
       {ExhaustPolicy::kStayInCurrent, ExhaustPolicy::kHashDefault}) {
    for (const LocalRecovery recovery :
         {LocalRecovery::kNone, LocalRecovery::kDeflect}) {
      const ForwardingPolicy policy{exhaust, recovery};
      net_patched.forward_stats_batch(packets, policy, got);
      net_rebuilt.forward_stats_batch(packets, policy, want);
      expect_summaries_equal(got, want, "policy-equivalence");
    }
  }
}

// ---------------------------------------------------------------------------
// Event-kind round trips through the publisher.
// ---------------------------------------------------------------------------

TEST(FibPublisher, DownRestoreRoundTripRecoversTheOriginalTable) {
  const Graph g = topo::abilene();
  FibPublisher pub(g, make_cfg(3));
  const FibSet before = pub.published_fibs();  // copy

  const EdgeId e = 1;
  pub.publish_link_down(e);
  EXPECT_FALSE(pub.published_net().link_alive(e));
  pub.publish_link_restore(e);
  EXPECT_TRUE(pub.published_net().link_alive(e));

  pub.quiesce();
  expect_fibs_identical(pub.published_fibs(), before, "down-restore");
  EXPECT_EQ(pub.published_version(), 3u);
}

TEST(FibPublisher, WeightScaleMatchesScratchAndScalesBack) {
  const Graph g = topo::abilene();
  FibPublisher pub(g, make_cfg(3));
  const FibSet before = pub.published_fibs();  // copy

  const EdgeId e = 5;
  pub.publish_weight_scale(e, 10.0);
  {
    MultiInstanceRouting fresh = rebuild_from_live(g, pub.control());
    const FibSet want = fresh.build_fibs();
    expect_fibs_identical(pub.published_fibs(), want, "scaled");
    // The scaled weight really is original x 10 in every slice.
    std::vector<Weight> originals;
    pub.original_weights(e, originals);
    for (SliceId s = 0; s < pub.control().slice_count(); ++s) {
      EXPECT_EQ(pub.control().slice(s).weights()[static_cast<std::size_t>(e)],
                originals[static_cast<std::size_t>(s)] * 10.0);
    }
  }
  pub.publish_weight_scale(e, 1.0);
  pub.quiesce();
  expect_fibs_identical(pub.published_fibs(), before, "scale-back");
}

// ---------------------------------------------------------------------------
// Sharded pipeline across an epoch swap.
// ---------------------------------------------------------------------------

TEST(ShardPipeline, RefreshFibBitIdenticalAcrossAnEpochSwap) {
  const Graph g = topo::geant();
  FibPublisher pub(g, make_cfg(4));

  BatchFeedConfig feed;
  feed.header_k = 4;
  feed.packets_per_trial = 192;
  std::vector<char> mask;
  std::vector<Packet> packets;
  fill_trial_batch(g, feed, 0x51ead, 0, mask, packets);
  std::vector<ForwardSummary> got(packets.size());
  std::vector<ForwardSummary> want(packets.size());
  const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                LocalRecovery::kDeflect};

  for (const int workers : {1, 3}) {
    FibPublisher::Reader reader(pub);
    const DataPlaneNetwork& net0 = reader.pin();
    ShardPipeline pipe(net0, workers);

    // Pre-swap: pipeline matches the published network.
    net0.forward_stats_batch(packets, policy, want);
    pipe.forward_stats_batch(packets, policy, got);
    expect_summaries_equal(got, want, "pre-swap");
    reader.unpin();

    // Two publishes (a failure and a cost-out) — an epoch swap per event.
    pub.publish_link_down(3);
    pub.publish_weight_scale(7, 5.0);

    // Adopt: repoint the pipeline at the newly published table + liveness.
    const DataPlaneNetwork& net1 = reader.pin();
    pipe.refresh_fib(net1.fib_view());
    pipe.set_link_mask(net1.link_mask());
    net1.forward_stats_batch(packets, policy, want);
    pipe.forward_stats_batch(packets, policy, got);
    expect_summaries_equal(got, want, "post-swap");
    reader.unpin();
  }
}

}  // namespace
}  // namespace splice
