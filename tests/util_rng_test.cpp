// Tests for the deterministic RNG layer: reproducibility, bounds,
// distribution sanity, forking independence.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace splice {
namespace {

TEST(SplitMix64, IsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(HashMix, IsStable) {
  EXPECT_EQ(hash_mix(1, 2, 3), hash_mix(1, 2, 3));
}

TEST(HashMix, DiffersAcrossArguments) {
  std::set<std::uint64_t> values;
  for (std::uint64_t a = 0; a < 10; ++a) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      values.insert(hash_mix(a, b));
    }
  }
  EXPECT_EQ(values.size(), 100u);  // no collisions on this tiny domain
}

TEST(HashMix, ArgumentOrderMatters) {
  EXPECT_NE(hash_mix(1, 2), hash_mix(2, 1));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(123);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRangeDegenerate) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(8);
  std::map<std::uint64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(6)];
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, n / 6, n / 60) << "value " << value;
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CoinIsFair) {
  Rng rng(12);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.fork(1);
  Rng parent2(13);
  (void)parent2.fork(1);
  // The child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += child() == parent() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDependsOnSalt) {
  Rng a(14);
  Rng b(14);
  Rng child_a = a.fork(1);
  Rng child_b = b.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += child_a() == child_b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace splice
