// Bit-for-bit determinism of every experiment harness: two runs with the
// same configuration must produce identical results. This is the property
// EXPERIMENTS.md promises and regression bisection depends on.
#include <gtest/gtest.h>

#include "analysis/advisor.h"
#include "sim/event_sim.h"
#include "sim/experiments.h"
#include "sim/extensions.h"
#include "topo/datasets.h"

namespace splice {
namespace {

TEST(Determinism, ReliabilityExperiment) {
  ReliabilityConfig cfg;
  cfg.k_values = {1, 3};
  cfg.p_values = {0.03, 0.08};
  cfg.trials = 50;
  const auto a = run_reliability_experiment(topo::geant(), cfg);
  const auto b = run_reliability_experiment(topo::geant(), cfg);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].mean_disconnected, b.points[i].mean_disconnected);
    EXPECT_EQ(a.points[i].ci95, b.points[i].ci95);
  }
  for (std::size_t i = 0; i < a.best_possible.size(); ++i) {
    EXPECT_EQ(a.best_possible[i].mean_disconnected,
              b.best_possible[i].mean_disconnected);
  }
}

TEST(Determinism, RecoveryExperiment) {
  RecoveryExperimentConfig cfg;
  cfg.k_values = {3};
  cfg.p_values = {0.05};
  cfg.trials = 6;
  cfg.pair_sample = 50;
  const auto a = run_recovery_experiment(topo::sprint(), cfg);
  const auto b = run_recovery_experiment(topo::sprint(), cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].frac_unrecovered, b[i].frac_unrecovered);
    EXPECT_EQ(a[i].mean_trials, b[i].mean_trials);
    EXPECT_EQ(a[i].mean_stretch, b[i].mean_stretch);
    EXPECT_EQ(a[i].two_hop_loop_rate, b[i].two_hop_loop_rate);
  }
}

TEST(Determinism, StretchCensus) {
  const auto a = run_slice_stretch_census(
      topo::geant(), 3, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 7);
  const auto b = run_slice_stretch_census(
      topo::geant(), 3, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stretch.mean, b[i].stretch.mean);
    EXPECT_EQ(a[i].stretch.p99, b[i].stretch.p99);
  }
}

TEST(Determinism, ScalingExperiment) {
  ScalingConfig cfg;
  cfg.sizes = {20, 30};
  cfg.trials = 8;
  cfg.max_k = 6;
  const auto a = run_scaling_experiment(cfg);
  const auto b = run_scaling_experiment(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].k_needed, b[i].k_needed);
    EXPECT_EQ(a[i].achieved, b[i].achieved);
    EXPECT_EQ(a[i].edges, b[i].edges);
  }
}

TEST(Determinism, StretchBound) {
  StretchBoundConfig cfg;
  cfg.path_samples = 40;
  cfg.perturbation_samples = 50;
  const auto a = run_stretch_bound_experiment(topo::geant(), cfg);
  const auto b = run_stretch_bound_experiment(topo::geant(), cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].empirical_violation, b[i].empirical_violation);
  }
}

TEST(Determinism, DiversityExperiment) {
  const auto a = run_diversity_experiment(
      topo::geant(), {1, 3}, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 5);
  const auto b = run_diversity_experiment(
      topo::geant(), {1, 3}, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean_union_arcs, b[i].mean_union_arcs);
    EXPECT_EQ(a[i].log10_paths, b[i].log10_paths);
  }
}

TEST(Determinism, ConnectivityCurveAndReconvergence) {
  ConnectivityCurveConfig ccfg;
  ccfg.k_values = {2};
  ccfg.p_values = {0.04};
  ccfg.trials = 30;
  const auto c1 = run_connectivity_curve(topo::geant(), ccfg);
  const auto c2 = run_connectivity_curve(topo::geant(), ccfg);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].reliability, c2[i].reliability);
  }
  ReconvergenceConfig rcfg;
  rcfg.k = 3;
  rcfg.p_values = {0.05};
  rcfg.trials = 4;
  const auto r1 = run_reconvergence_experiment(topo::geant(), rcfg);
  const auto r2 = run_reconvergence_experiment(topo::geant(), rcfg);
  EXPECT_EQ(r1[0].splicing_fixes, r2[0].splicing_fixes);
}

TEST(Determinism, ThroughputExperiment) {
  ThroughputConfig cfg;
  cfg.k_values = {2};
  cfg.pair_sample = 30;
  const auto a = run_throughput_experiment(topo::geant(), cfg);
  const auto b = run_throughput_experiment(topo::geant(), cfg);
  EXPECT_EQ(a[0].mean_capacity_ratio, b[0].mean_capacity_ratio);
  EXPECT_EQ(a[0].frac_full_capacity, b[0].frac_full_capacity);
}

TEST(Determinism, SliceBudgetAdvisor) {
  SliceBudgetConfig cfg;
  cfg.trials = 40;
  cfg.max_k = 5;
  const auto a = advise_slice_budget(topo::geant(), cfg);
  const auto b = advise_slice_budget(topo::geant(), cfg);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.per_k, b.per_k);
}

TEST(Determinism, ControlPlaneBuildIndependentOfThreadCount) {
  // The parallel (slice, destination) build writes disjoint table slots and
  // draws all weights sequentially, so FIBs and distance tables must be
  // byte-identical for every thread count.
  const Graph g = topo::geant();
  ControlPlaneConfig cfg;
  cfg.slices = 4;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  cfg.seed = 3;
  cfg.threads = 1;
  const MultiInstanceRouting seq(g, cfg);
  cfg.threads = 4;
  const MultiInstanceRouting par(g, cfg);

  const FibSet fib_seq = seq.build_fibs();
  const FibSet fib_par = par.build_fibs();
  for (SliceId s = 0; s < cfg.slices; ++s) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (NodeId dst = 0; dst < g.node_count(); ++dst) {
        ASSERT_EQ(fib_seq.lookup(s, v, dst).next_hop,
                  fib_par.lookup(s, v, dst).next_hop);
        ASSERT_EQ(fib_seq.lookup(s, v, dst).edge,
                  fib_par.lookup(s, v, dst).edge);
        // Bit-identical, not just close: same additions in the same order.
        ASSERT_EQ(seq.slice(s).distance(v, dst),
                  par.slice(s).distance(v, dst));
      }
    }
  }
}

TEST(Determinism, ExplicitWeightsBuildIndependentOfThreadCount) {
  const Graph g = topo::sprint();
  Rng rng(17);
  std::vector<std::vector<Weight>> slice_weights;
  slice_weights.push_back({});
  for (int s = 1; s < 3; ++s) {
    Rng fork = rng.fork(static_cast<std::uint64_t>(s));
    slice_weights.push_back(perturb_weights(
        g, {PerturbationKind::kUniform, 0.0, 2.0}, fork));
  }
  const MultiInstanceRouting seq(g, slice_weights, 1);
  const MultiInstanceRouting par(g, slice_weights, 4);
  for (SliceId s = 0; s < seq.slice_count(); ++s) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (NodeId dst = 0; dst < g.node_count(); ++dst) {
        ASSERT_EQ(seq.slice(s).next_hop(v, dst),
                  par.slice(s).next_hop(v, dst));
        ASSERT_EQ(seq.slice(s).distance(v, dst),
                  par.slice(s).distance(v, dst));
      }
    }
  }
}

TEST(Determinism, EdgeEventRepairIndependentOfThreadCount) {
  const Graph g = topo::geant();
  ControlPlaneConfig cfg;
  cfg.slices = 3;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  cfg.seed = 5;
  cfg.threads = 1;
  MultiInstanceRouting seq(g, cfg);
  cfg.threads = 4;
  MultiInstanceRouting par(g, cfg);
  seq.apply_edge_event(2, 1e18);
  par.apply_edge_event(2, 1e18);
  for (SliceId s = 0; s < cfg.slices; ++s) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (NodeId dst = 0; dst < g.node_count(); ++dst) {
        ASSERT_EQ(seq.slice(s).next_hop(v, dst),
                  par.slice(s).next_hop(v, dst));
        ASSERT_EQ(seq.slice(s).distance(v, dst),
                  par.slice(s).distance(v, dst));
      }
    }
  }
}

TEST(Determinism, RecoveryTimingSim) {
  const Graph g = topo::geant();
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{
             4, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 2, false});
  const FibSet fibs = mir.build_fibs();
  DataPlaneNetwork net(g, fibs);
  net.set_link_state(0, false);
  net.set_link_state(5, false);
  TimingConfig cfg;
  Rng a_rng(9);
  Rng b_rng(9);
  for (NodeId src = 0; src < g.node_count(); src += 4) {
    for (NodeId dst = 0; dst < g.node_count(); dst += 5) {
      if (src == dst) continue;
      const RecoveryTiming a =
          simulate_recovery_timing(net, src, dst, cfg, a_rng);
      const RecoveryTiming b =
          simulate_recovery_timing(net, src, dst, cfg, b_rng);
      EXPECT_EQ(a.recovered, b.recovered);
      EXPECT_EQ(a.completion_ms, b.completion_ms);
      EXPECT_EQ(a.packets_sent, b.packets_sent);
    }
  }
}

}  // namespace
}  // namespace splice
