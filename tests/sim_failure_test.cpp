// Failure-model tests.
#include "sim/failure.h"

#include <gtest/gtest.h>

#include "topo/datasets.h"
#include "util/stats.h"

namespace splice {
namespace {

TEST(FailureModel, ZeroProbabilityFailsNothing) {
  Rng rng(1);
  const auto alive = sample_alive_mask(100, 0.0, rng);
  EXPECT_EQ(failed_count(alive), 0);
}

TEST(FailureModel, OneProbabilityFailsEverything) {
  Rng rng(2);
  const auto alive = sample_alive_mask(100, 1.0, rng);
  EXPECT_EQ(failed_count(alive), 100);
}

TEST(FailureModel, MatchesExpectedRate) {
  Rng rng(3);
  long long failed = 0;
  const int trials = 200;
  const EdgeId edges = 500;
  for (int t = 0; t < trials; ++t) {
    failed += failed_count(sample_alive_mask(edges, 0.05, rng));
  }
  const double rate =
      static_cast<double>(failed) / (static_cast<double>(trials) * edges);
  EXPECT_NEAR(rate, 0.05, 0.005);
}

TEST(FailureModel, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(sample_alive_mask(50, 0.3, a), sample_alive_mask(50, 0.3, b));
}

TEST(FailureModel, MaskSizeMatchesEdges) {
  Rng rng(4);
  EXPECT_EQ(sample_alive_mask(37, 0.1, rng).size(), 37u);
  EXPECT_EQ(sample_alive_mask(0, 0.1, rng).size(), 0u);
}

TEST(FailRandomEdges, ExactCount) {
  Rng rng(5);
  for (int count : {0, 1, 5, 20}) {
    const auto alive = fail_random_edges(20, count, rng);
    EXPECT_EQ(failed_count(alive), count);
  }
}

TEST(FailRandomEdges, DistinctEdges) {
  Rng rng(6);
  const auto alive = fail_random_edges(10, 10, rng);
  EXPECT_EQ(failed_count(alive), 10);  // all failed exactly once
}

TEST(NodeFailures, ZeroProbabilityKeepsAllLinks) {
  const Graph g = topo::geant();
  Rng rng(1);
  const auto alive = sample_node_failure_mask(g, 0.0, rng);
  EXPECT_EQ(failed_count(alive), 0);
}

TEST(NodeFailures, FullProbabilityKillsAllLinks) {
  const Graph g = topo::geant();
  Rng rng(2);
  std::vector<char> dead;
  const auto alive = sample_node_failure_mask(g, 1.0, rng, &dead);
  EXPECT_EQ(failed_count(alive), g.edge_count());
  for (char d : dead) EXPECT_TRUE(d);
}

TEST(NodeFailures, DeadNodeKillsExactlyItsLinks) {
  const Graph g = topo::sprint();
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<char> dead;
    const auto alive = sample_node_failure_mask(g, 0.1, rng, &dead);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      const bool expect_dead = dead[static_cast<std::size_t>(edge.u)] ||
                               dead[static_cast<std::size_t>(edge.v)];
      EXPECT_EQ(alive[static_cast<std::size_t>(e)] == 0, expect_dead)
          << "edge " << e;
    }
  }
}

TEST(NodeFailures, MaskSizesMatchGraph) {
  const Graph g = topo::abilene();
  Rng rng(4);
  std::vector<char> dead;
  const auto alive = sample_node_failure_mask(g, 0.2, rng, &dead);
  EXPECT_EQ(alive.size(), static_cast<std::size_t>(g.edge_count()));
  EXPECT_EQ(dead.size(), static_cast<std::size_t>(g.node_count()));
}

TEST(Srlg, EndpointGroupsCoverHighDegreeNodes) {
  const Graph g = topo::sprint();
  const SrlgModel model = srlg_by_shared_endpoint(g);
  // One group per node with degree >= 2.
  int expected = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) expected += g.degree(v) >= 2;
  EXPECT_EQ(model.groups.size(), static_cast<std::size_t>(expected));
  for (const auto& group : model.groups) {
    EXPECT_GE(group.size(), 2u);
    for (EdgeId e : group) {
      EXPECT_GE(e, 0);
      EXPECT_LT(e, g.edge_count());
    }
  }
}

TEST(Srlg, GroupFailureKillsWholeGroup) {
  const Graph g = topo::geant();
  const SrlgModel model = srlg_by_shared_endpoint(g);
  Rng rng(4);
  const auto alive = sample_srlg_mask(g, model, 1.0, 0.0, rng);
  // Every group fails => every link in any group is dead.
  for (const auto& group : model.groups) {
    for (EdgeId e : group) {
      EXPECT_FALSE(alive[static_cast<std::size_t>(e)]);
    }
  }
}

TEST(Srlg, ZeroProbabilitiesKeepEverything) {
  const Graph g = topo::geant();
  const SrlgModel model = srlg_by_shared_endpoint(g);
  Rng rng(5);
  EXPECT_EQ(failed_count(sample_srlg_mask(g, model, 0.0, 0.0, rng)), 0);
}

TEST(Srlg, CorrelationFailsLinksInBursts) {
  // With only group failures, failed-link counts should be burstier than
  // an independent model of the same mean: measure the variance ratio.
  const Graph g = topo::sprint();
  const SrlgModel model = srlg_by_shared_endpoint(g);
  Rng rng(6);
  OnlineStats srlg_counts;
  for (int t = 0; t < 600; ++t) {
    srlg_counts.add(static_cast<double>(
        failed_count(sample_srlg_mask(g, model, 0.01, 0.0, rng))));
  }
  const double mean = srlg_counts.mean();
  OnlineStats indep_counts;
  const double p_equiv = mean / g.edge_count();
  for (int t = 0; t < 600; ++t) {
    indep_counts.add(static_cast<double>(
        failed_count(sample_alive_mask(g.edge_count(), p_equiv, rng))));
  }
  EXPECT_GT(srlg_counts.variance(), 2.0 * indep_counts.variance());
}

TEST(LengthWeighted, ZeroAndBounds) {
  const Graph g = topo::sprint();
  Rng rng(7);
  EXPECT_EQ(failed_count(sample_length_weighted_mask(g, 0.0, rng)), 0);
  const auto alive = sample_length_weighted_mask(g, 0.05, rng);
  EXPECT_EQ(alive.size(), static_cast<std::size_t>(g.edge_count()));
}

TEST(LengthWeighted, MeanRateMatchesTarget) {
  const Graph g = topo::sprint();
  Rng rng(8);
  long long failed = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    failed += failed_count(sample_length_weighted_mask(g, 0.05, rng));
  }
  const double rate = static_cast<double>(failed) /
                      (static_cast<double>(trials) * g.edge_count());
  // Clamping long links to p<=1 can only lower the realized mean slightly.
  EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST(LengthWeighted, LongLinksFailMoreOften) {
  const Graph g = topo::sprint();
  // Longest vs shortest link failure frequencies.
  EdgeId longest = 0;
  EdgeId shortest = 0;
  for (EdgeId e = 1; e < g.edge_count(); ++e) {
    if (g.edge(e).weight > g.edge(longest).weight) longest = e;
    if (g.edge(e).weight < g.edge(shortest).weight) shortest = e;
  }
  Rng rng(9);
  int long_fails = 0;
  int short_fails = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const auto alive = sample_length_weighted_mask(g, 0.03, rng);
    long_fails += alive[static_cast<std::size_t>(longest)] ? 0 : 1;
    short_fails += alive[static_cast<std::size_t>(shortest)] ? 0 : 1;
  }
  EXPECT_GT(long_fails, 5 * short_fails);
}

TEST(PaperGrid, MatchesFigureAxes) {
  const auto grid = paper_p_grid();
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 0.10);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i] - grid[i - 1], 0.01, 1e-12);
  }
}

}  // namespace
}  // namespace splice
