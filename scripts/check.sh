#!/usr/bin/env bash
# Repository check script: the tier-1 build + test gate, then a
# ThreadSanitizer pass over the concurrency-sensitive targets (the parallel
# control-plane build/repair and the parallel trial runner).
#
# Usage: scripts/check.sh [--no-tsan]
#   SPLICE_SANITIZE=thread|address  override the sanitizer for the second
#                                   pass (default thread; `address` swaps in
#                                   an ASan build of the same targets)
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: configure + build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "$run_tsan" != 1 ]]; then
  echo "==> sanitizer pass skipped (--no-tsan)"
  exit 0
fi

sanitizer="${SPLICE_SANITIZE:-thread}"
san_dir="build-${sanitizer}san"
san_tests=(util_parallel_test routing_multi_instance_test routing_repair_test
           determinism_test)

echo "==> ${sanitizer} sanitizer: configure + build"
cmake -B "$san_dir" -S . -DSPLICE_SANITIZE="$sanitizer" >/dev/null
cmake --build "$san_dir" -j --target "${san_tests[@]}"

echo "==> ${sanitizer} sanitizer: running ${san_tests[*]}"
for test in "${san_tests[@]}"; do
  "./$san_dir/tests/$test"
done

echo "==> all checks passed"
