#!/usr/bin/env bash
# Repository check script: the tier-1 build + test gate, then two sanitizer
# passes — ThreadSanitizer over the concurrency-sensitive targets (parallel
# control-plane build/repair, the parallel trial runner and the TrialEngine
# experiments) and AddressSanitizer over the data-plane/sim fast-path
# targets (raw-pointer FIB views, CSR adjacency, reused workspaces).
#
# Usage: scripts/check.sh [--no-tsan] [--no-asan]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: configure + build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

run_sanitizer() {
  local sanitizer="$1"
  shift
  local san_dir="build-${sanitizer}san"
  echo "==> ${sanitizer} sanitizer: configure + build"
  cmake -B "$san_dir" -S . -DSPLICE_SANITIZE="$sanitizer" >/dev/null
  cmake --build "$san_dir" -j --target "$@"
  echo "==> ${sanitizer} sanitizer: running $*"
  local test
  for test in "$@"; do
    "./$san_dir/tests/$test"
  done
}

if [[ "$run_tsan" == 1 ]]; then
  run_sanitizer thread \
    util_parallel_test routing_multi_instance_test routing_repair_test \
    determinism_test dataplane_fastpath_test
else
  echo "==> thread sanitizer pass skipped (--no-tsan)"
fi

if [[ "$run_asan" == 1 ]]; then
  run_sanitizer address \
    dataplane_fastpath_test dataplane_network_test splicing_reliability_test \
    splicing_recovery_test sim_experiments_test
else
  echo "==> address sanitizer pass skipped (--no-asan)"
fi

echo "==> all checks passed"
