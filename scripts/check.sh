#!/usr/bin/env bash
# Repository check script: the tier-1 build + test gate, then two sanitizer
# passes — ThreadSanitizer over the concurrency-sensitive targets (parallel
# control-plane build/repair, the parallel trial runner, the TrialEngine
# experiments and the sharded obs metrics registry) and AddressSanitizer
# over the data-plane/sim fast-path targets (raw-pointer FIB views, CSR
# adjacency, reused workspaces). A third leg rebuilds the data-plane suites
# with SPLICE_FORWARD_AVX2=OFF (plain -march=x86-64, no vector bodies) and
# reruns them, proving the scalar wavefront kernel is self-sufficient;
# --no-noavx2 skips it.
#
# --bench-smoke additionally runs the micro benches with small fixed
# parameters and gates the result against the committed bench/baselines/
# snapshots via scripts/perf_gate.py: checksums and counters must match
# exactly; speedup ratios may not regress by more than the gate tolerance.
# Wall-times are machine-dependent and are never gated here. After the
# gates pass, the per-bench tables are folded into the top-level
# BENCH_summary.json (name -> headline metrics + provenance) via
# scripts/bench_summary.py, so the perf trajectory across PRs is
# machine-readable from one file; commit the diff alongside a rebaseline.
# --rebaseline regenerates the committed baselines (run on the reference
# machine after an intentional perf change, then commit the diff).
#
# --trace-smoke exercises the flight-recorder pipeline end to end: runs the
# loop-frequency bench with and without --trace, validates the trace with
# splice_inspect, replays a recorded anomaly (--check), requires the traced
# and untraced --json outputs to be bit-identical on every exact metric, and
# gates the traced wall-time against the untraced run (tracing overhead must
# stay inside the perf-gate tolerance).
#
# --profile-smoke exercises the resource-attribution profiler end to end:
# runs the dataplane micro bench with --profile (native tier: perf counters
# when the container allows perf_event_open, rusage otherwise), validates
# the folded stacks and per-span resource columns with `splice_inspect
# profile`, re-runs with SPLICE_RESPROF_TIER=rusage to prove the
# graceful-degradation ladder (the forced tier must land in RunReport
# provenance), requires profiled bench output to match the unprofiled run
# on every exact metric, gates the per-span allocation counts against the
# committed bench/baselines/METRICS_micro_dataplane_profiled.json snapshot
# (the zero-alloc contract: counts gate exactly; --rebaseline regenerates
# it on the reference machine — span alloc counts include main-thread
# worker spawning, so the snapshot is thread-count specific), and gates
# profiling overhead like --trace-smoke gates tracing overhead. It also
# runs the forwarding-throughput bench under forced-rusage profiling and
# gates the per-implementation span resources (fwd_bench.*) against
# bench/baselines/METRICS_forwarding_throughput_profiled.json — exact
# alloc counts (the sweeps are zero-alloc in steady state) plus, on perf-
# capable machines, the per-span IPC / cache-miss budget.
#
# --bench-deep runs bench_forwarding_throughput in its headline regime — a
# 10k-node expander whose k FIB tables (~4 GB) dwarf any cache hierarchy —
# and gates the wavefront kernels' speedup-vs-legacy ratios against the
# committed baseline. This is the ≥2x acceptance configuration for the SIMD
# gather rework; expect several minutes (the 50k-SSSP control-plane build
# dominates). --rebaseline combined with --bench-deep regenerates its
# baseline too.
#
# --health-smoke exercises the route-health telemetry stack end to end:
# runs the live-churn bench with --health + --health-snapshot, renders the
# snapshot with `splice_top --once` and validates the --json digest schema,
# requires the health-on and health-off bench outputs to be bit-identical on
# every exact metric (fib checksums, event counts — scoring must observe,
# never perturb), and gates the health-on wall-time against the plain run
# (the <2% scoring budget hides far inside the gate tolerance; tighten with
# HEALTH_TOL on a quiet reference machine). It also gates the health-on
# BENCH table against bench/baselines/BENCH_live_churn_health.json;
# --rebaseline regenerates that snapshot too.
#
# --attrib-smoke exercises the per-link attribution + root-cause stack end
# to end: runs the live-churn bench with --links + --links-snapshot +
# --trace, renders the snapshot with `splice_top links` and validates the
# --json heatmap digest schema, requires the attribution-on and -off bench
# outputs to be bit-identical on every exact metric (the hooks observe,
# never perturb) with the wall-time inside the gate tolerance
# (--gate-time), resolves a recorded anomaly to its causing churn publish
# with `splice_inspect why` and replays it (--check), validates the
# `splice_inspect epochs --json` surface (including the clean empty-ledger
# exit), follows the links snapshot across atomic rewrites (torn reads
# would surface as unparseable ticks), and gates the attribution-on BENCH
# table against bench/baselines/BENCH_live_churn_attrib.json; --rebaseline
# regenerates that snapshot too.
#
# --live-smoke exercises the live telemetry plane end to end: starts the
# live-churn bench with --telemetry=shm:...,tcp:0 (in-process agent thread
# publishing into the shared-memory segment and serving the Prometheus
# exposition on an ephemeral loopback port) plus a --hold-ms quiet window,
# attaches `splice_top attach --json --follow` to the *running* process and
# validates the live ticks (generation monotonically increasing, heartbeat
# age under one agent period at least once, writer alive, never stale),
# pulls one exposition with `splice_inspect scrape` (linted with the same
# conformance rules obs_export_test enforces), then requires the
# telemetry-on and telemetry-off bench outputs to be bit-identical on
# every exact metric (the agent observes, never perturbs) with the
# wall-time inside the gate tolerance (--gate-time; tighten with LIVE_TOL
# on a quiet reference machine). The telemetry-off baseline runs with the
# same --hold-ms so the wall-time gate compares like with like.
#
# Usage: scripts/check.sh [--no-tsan] [--no-asan] [--no-noavx2]
#                         [--bench-smoke] [--bench-deep] [--rebaseline]
#                         [--trace-smoke] [--profile-smoke] [--health-smoke]
#                         [--attrib-smoke] [--live-smoke]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
run_noavx2=1
bench_smoke=0
bench_deep=0
rebaseline=0
trace_smoke=0
profile_smoke=0
health_smoke=0
attrib_smoke=0
live_smoke=0
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    --no-noavx2) run_noavx2=0 ;;
    --bench-smoke) bench_smoke=1 ;;
    --bench-deep) bench_deep=1 ;;
    --rebaseline) bench_smoke=1; rebaseline=1 ;;
    --trace-smoke) trace_smoke=1 ;;
    --profile-smoke) profile_smoke=1 ;;
    --health-smoke) health_smoke=1 ;;
    --attrib-smoke) attrib_smoke=1 ;;
    --live-smoke) live_smoke=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: configure + build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

run_sanitizer() {
  local sanitizer="$1"
  shift
  local san_dir="build-${sanitizer}san"
  echo "==> ${sanitizer} sanitizer: configure + build"
  cmake -B "$san_dir" -S . -DSPLICE_SANITIZE="$sanitizer" >/dev/null
  cmake --build "$san_dir" -j --target "$@"
  echo "==> ${sanitizer} sanitizer: running $*"
  local test
  for test in "$@"; do
    "./$san_dir/tests/$test"
  done
}

if [[ "$run_tsan" == 1 ]]; then
  run_sanitizer thread \
    util_parallel_test routing_multi_instance_test routing_repair_test \
    determinism_test dataplane_fastpath_test obs_metrics_test \
    obs_flight_recorder_test sim_replay_test dataplane_epoch_test \
    dataplane_publisher_test obs_timeseries_test obs_health_test \
    obs_linkstats_test obs_causal_test obs_shm_test obs_agent_test
else
  echo "==> thread sanitizer pass skipped (--no-tsan)"
fi

if [[ "$run_asan" == 1 ]]; then
  run_sanitizer address \
    dataplane_fastpath_test dataplane_network_test splicing_reliability_test \
    splicing_recovery_test sim_experiments_test
else
  echo "==> address sanitizer pass skipped (--no-asan)"
fi

# The scalar kernel must be self-sufficient: build the data-plane targets
# with the AVX2 bodies compiled out entirely (plain -march=x86-64 TU, no
# immintrin) and rerun the fast-path suite — the differential tests then
# exercise the scalar sweep as the only kernel, proving runtime dispatch
# never silently depends on the vector path existing.
if [[ "$run_noavx2" == 1 ]]; then
  echo "==> no-AVX2 leg: configure + build (SPLICE_FORWARD_AVX2=OFF)"
  cmake -B build-noavx2 -S . -DSPLICE_FORWARD_AVX2=OFF >/dev/null
  cmake --build build-noavx2 -j --target \
    dataplane_fastpath_test dataplane_network_test
  echo "==> no-AVX2 leg: running fast-path + network suites"
  ./build-noavx2/tests/dataplane_fastpath_test
  ./build-noavx2/tests/dataplane_network_test
else
  echo "==> no-AVX2 leg skipped (--no-noavx2)"
fi

if [[ "$bench_smoke" == 1 ]]; then
  echo "==> perf gate: self-test"
  python3 scripts/perf_gate.py --self-test

  # Fixed small parameters: the smoke run must finish in seconds and its
  # row keys / checksums / counters must be reproducible on any machine.
  smoke_dir="build/bench-smoke"
  mkdir -p "$smoke_dir" bench/baselines
  declare -A smoke_cmd=(
    [micro_control]="./build/bench/bench_micro_control --json=$smoke_dir/BENCH_micro_control.json --reps=5 --k=8 --seed=7"
    [micro_dataplane]="./build/bench/bench_micro_dataplane --json=$smoke_dir/BENCH_micro_dataplane.json --packets=2000 --reps=10 --trials=24 --large_n=300 --large_packets=6000 --seed=5"
    [forwarding_throughput]="./build/bench/bench_forwarding_throughput --json=$smoke_dir/BENCH_forwarding_throughput.json --packets=2048 --trials=6 --reps=3 --expander_n=900 --seed=5"
  )
  declare -A smoke_metrics=(
    [micro_control]="--metrics=$smoke_dir/METRICS_micro_control.json"
    [micro_dataplane]="--metrics=$smoke_dir/METRICS_micro_dataplane.json"
    [forwarding_throughput]="--metrics=$smoke_dir/METRICS_forwarding_throughput.json"
  )
  gate_failed=0
  for name in micro_control micro_dataplane forwarding_throughput; do
    echo "==> bench smoke: $name"
    ${smoke_cmd[$name]} ${smoke_metrics[$name]} >/dev/null
    for kind in BENCH METRICS; do
      current="$smoke_dir/${kind}_${name}.json"
      baseline="bench/baselines/${kind}_${name}.json"
      if [[ "$rebaseline" == 1 ]]; then
        cp "$current" "$baseline"
        echo "    rebaselined $baseline"
      elif [[ -f "$baseline" ]]; then
        # Checksums/counters/histogram bins gate exactly at any tolerance;
        # the tolerance only loosens the speedup/throughput ratio gate.
        # Observed run-to-run swings on sub-ms phases reach ~60% on a
        # shared single-core machine, so the default (75%) only catches
        # order-of-magnitude collapses (a broken fast path); tighten with
        # SMOKE_TOL=0.1 on a quiet reference machine.
        python3 scripts/perf_gate.py "$baseline" "$current" --quiet \
          --tolerance="${SMOKE_TOL:-0.75}" || gate_failed=1
      else
        echo "    no baseline $baseline (run --rebaseline)" >&2
        gate_failed=1
      fi
    done
  done
  # Live-churn smoke gates the BENCH table only: the quiescent fib_checksum
  # and event counts are exact, the throughput/speedup ratios gate at the
  # smoke tolerance, and the reconvergence-latency columns are TIME (never
  # gated here — grace waits are scheduler-bound). No METRICS gate: the
  # reader-side counters are wall-clock dependent by construction.
  echo "==> bench smoke: live_churn"
  ./build/bench/bench_live_churn --json="$smoke_dir/BENCH_live_churn.json" \
    --events=40 --packets=256 --readers=2 --expander_n=240 --seed=7 >/dev/null
  live_baseline="bench/baselines/BENCH_live_churn.json"
  if [[ "$rebaseline" == 1 ]]; then
    cp "$smoke_dir/BENCH_live_churn.json" "$live_baseline"
    echo "    rebaselined $live_baseline"
  elif [[ -f "$live_baseline" ]]; then
    python3 scripts/perf_gate.py "$live_baseline" \
      "$smoke_dir/BENCH_live_churn.json" --quiet \
      --tolerance="${SMOKE_TOL:-0.75}" || gate_failed=1
  else
    echo "    no baseline $live_baseline (run --rebaseline)" >&2
    gate_failed=1
  fi

  if [[ "$gate_failed" == 1 ]]; then
    echo "==> bench smoke FAILED" >&2
    exit 1
  fi

  # Fold the per-bench tables into the committed top-level summary: fresh
  # smoke results first, committed baselines as fallback for benches this
  # leg does not run (the deep expander regime, health/attrib variants).
  echo "==> bench smoke: aggregate BENCH_summary.json"
  python3 scripts/bench_summary.py --out BENCH_summary.json \
    "$smoke_dir" bench/baselines
  echo "==> bench smoke passed"
fi

if [[ "$bench_deep" == 1 ]]; then
  deep_dir="build/bench-deep"
  mkdir -p "$deep_dir" bench/baselines
  deep_baseline="bench/baselines/BENCH_forwarding_throughput_expander10k.json"
  # The headline memory-bound regime: k=5 tables over a 10k-node expander
  # (~4 GB of FIB) so every primary hop load is a DRAM access. Checksums
  # gate exactly; the speedup columns (wavefront kernels vs the in-process
  # legacy AoS oracle) are within-run ratios, so they gate meaningfully
  # even on shared machines — the committed baseline records the scalar
  # wavefront and the sharded pipeline clearing the 2x acceptance bar.
  echo "==> bench deep: forwarding throughput, 10k-node expander (~minutes)"
  ./build/bench/bench_forwarding_throughput \
    --json="$deep_dir/BENCH_forwarding_throughput_expander10k.json" \
    --topo=none --expander_n=10000 --packets=8192 --trials=64 --reps=1 \
    --seed=5 >/dev/null
  if [[ "$rebaseline" == 1 || ! -f "$deep_baseline" ]]; then
    cp "$deep_dir/BENCH_forwarding_throughput_expander10k.json" "$deep_baseline"
    echo "    rebaselined $deep_baseline"
  else
    python3 scripts/perf_gate.py "$deep_baseline" \
      "$deep_dir/BENCH_forwarding_throughput_expander10k.json" --quiet \
      --tolerance="${SMOKE_TOL:-0.75}"
  fi
  echo "==> bench deep passed"
fi

if [[ "$trace_smoke" == 1 ]]; then
  trace_dir="build/trace-smoke"
  mkdir -p "$trace_dir"
  trace_bench="./build/bench/bench_loop_frequency --topo=abilene --trials=30 --p=0.05 --seed=1"

  echo "==> trace smoke: untraced baseline run"
  $trace_bench --json="$trace_dir/plain.json" >/dev/null

  echo "==> trace smoke: traced run"
  $trace_bench --json="$trace_dir/traced.json" \
    --trace="$trace_dir/trace.json" --trace-sample=16 >/dev/null

  echo "==> trace smoke: splice_inspect validate"
  ./build/tools/splice_inspect validate "$trace_dir/trace.json"

  echo "==> trace smoke: splice_inspect anomalies (replay check)"
  ./build/tools/splice_inspect anomalies "$trace_dir/trace.json" --n=3 --check

  # The recorder/ledger must not perturb results: every exact metric in the
  # bench output (loop rates, recovery counts, checksums) has to be
  # bit-identical with tracing on. Wall-times are excluded by default.
  echo "==> trace smoke: traced vs untraced results bit-identical"
  ./build/tools/splice_inspect diff "$trace_dir/plain.json" "$trace_dir/traced.json"

  # Overhead gate: with --gate-time the wall_ms rows are compared too. The
  # recorder budget is "well under the gate tolerance"; the loose default
  # absorbs shared-machine noise, tighten with TRACE_TOL on a quiet box.
  echo "==> trace smoke: tracing overhead within tolerance"
  ./build/tools/splice_inspect diff "$trace_dir/plain.json" "$trace_dir/traced.json" \
    --tolerance="${TRACE_TOL:-0.75}" --gate-time

  echo "==> trace smoke passed"
fi

if [[ "$profile_smoke" == 1 ]]; then
  prof_dir="build/profile-smoke"
  mkdir -p "$prof_dir" bench/baselines
  prof_bench="./build/bench/bench_micro_dataplane --packets=2000 --reps=10 --trials=24 --large_n=300 --large_packets=6000 --seed=5"

  echo "==> profile smoke: unprofiled baseline run"
  $prof_bench --json="$prof_dir/plain.json" >/dev/null

  echo "==> profile smoke: profiled run (native tier)"
  $prof_bench --json="$prof_dir/profiled.json" \
    --profile="$prof_dir/profile.folded" --profile-hz=197 \
    --metrics="$prof_dir/METRICS_profiled.json" >/dev/null

  echo "==> profile smoke: splice_inspect profile (spans + folded stacks)"
  ./build/tools/splice_inspect profile "$prof_dir/METRICS_profiled.json" \
    --folded="$prof_dir/profile.folded" --n=5

  # Profiling must not perturb results: checksums, outcome counts and hop
  # totals in the bench table have to be bit-identical with profiling on
  # (exact metrics gate exactly at any tolerance; the loose tolerance only
  # covers the machine-dependent throughput ratios, as in --bench-smoke).
  echo "==> profile smoke: profiled vs unprofiled results bit-identical"
  ./build/tools/splice_inspect diff "$prof_dir/plain.json" \
    "$prof_dir/profiled.json" --tolerance="${SMOKE_TOL:-0.75}"

  # Graceful degradation: a denied perf_event_open must not error — force
  # the rusage tier and require the run to succeed, record its tier in the
  # RunReport provenance, and still match the unprofiled results. Sampler
  # off (--profile-hz=0) so the span allocation columns are deterministic
  # for the baseline gate below.
  echo "==> profile smoke: forced rusage fallback (perf denied)"
  SPLICE_RESPROF_TIER=rusage $prof_bench --json="$prof_dir/fallback.json" \
    --profile="$prof_dir/fallback.folded" --profile-hz=0 \
    --metrics="$prof_dir/METRICS_fallback.json" >/dev/null
  grep -q '"resource_tier": "rusage"' "$prof_dir/METRICS_fallback.json" || {
    echo "    forced rusage tier missing from RunReport provenance" >&2
    exit 1
  }
  ./build/tools/splice_inspect diff "$prof_dir/plain.json" \
    "$prof_dir/fallback.json" --tolerance="${SMOKE_TOL:-0.75}"

  # Zero-alloc contract gate: per-span allocation counts must match the
  # committed snapshot exactly; byte totals / rusage rows get the NOISY
  # tolerance band.
  prof_baseline="bench/baselines/METRICS_micro_dataplane_profiled.json"
  if [[ "$rebaseline" == 1 ]]; then
    cp "$prof_dir/METRICS_fallback.json" "$prof_baseline"
    echo "    rebaselined $prof_baseline"
  elif [[ -f "$prof_baseline" ]]; then
    echo "==> profile smoke: span alloc counts vs baseline"
    python3 scripts/perf_gate.py "$prof_baseline" \
      "$prof_dir/METRICS_fallback.json" --quiet \
      --tolerance="${SMOKE_TOL:-0.75}"
  else
    echo "    no baseline $prof_baseline (run --profile-smoke --rebaseline)" >&2
    exit 1
  fi

  # Overhead gate: profiled wall-times vs the unprofiled run. Loose by
  # default for shared machines; tighten with PROFILE_TOL on a quiet box.
  echo "==> profile smoke: profiling overhead within tolerance"
  ./build/tools/splice_inspect diff "$prof_dir/plain.json" \
    "$prof_dir/profiled.json" --tolerance="${PROFILE_TOL:-0.75}" --gate-time

  # Forwarding-kernel resource budget: the throughput bench runs each
  # implementation's sweep under its own span (fwd_bench.*), so the
  # profiled metrics carry per-impl resource columns. Alloc counts gate
  # exactly — the wavefront sweeps must stay zero-alloc in steady state —
  # and on machines where the perf tier is available the per-span IPC /
  # cache-miss columns gate inside the NOISY band: with a deterministic
  # workload (fixed hop totals) that is a per-hop cache-miss/IPC budget,
  # which is what keeps the pre-scan's table-size gate honest. The
  # committed baseline is recorded on the forced-rusage tier so it stays
  # reproducible in containers without perf_event_open.
  echo "==> profile smoke: forwarding kernel span budget"
  fwd_bench="./build/bench/bench_forwarding_throughput --packets=2048 --trials=6 --reps=3 --expander_n=900 --seed=5"
  SPLICE_RESPROF_TIER=rusage $fwd_bench \
    --json="$prof_dir/fwd_profiled.json" \
    --profile="$prof_dir/fwd_profile.folded" --profile-hz=0 \
    --metrics="$prof_dir/METRICS_fwd_profiled.json" >/dev/null
  fwd_baseline="bench/baselines/METRICS_forwarding_throughput_profiled.json"
  if [[ "$rebaseline" == 1 ]]; then
    cp "$prof_dir/METRICS_fwd_profiled.json" "$fwd_baseline"
    echo "    rebaselined $fwd_baseline"
  elif [[ -f "$fwd_baseline" ]]; then
    python3 scripts/perf_gate.py "$fwd_baseline" \
      "$prof_dir/METRICS_fwd_profiled.json" --quiet \
      --tolerance="${SMOKE_TOL:-0.75}"
  else
    echo "    no baseline $fwd_baseline (run --profile-smoke --rebaseline)" >&2
    exit 1
  fi

  echo "==> profile smoke passed"
fi

if [[ "$health_smoke" == 1 ]]; then
  health_dir="build/health-smoke"
  mkdir -p "$health_dir" bench/baselines
  health_bench="./build/bench/bench_live_churn --events=40 --packets=256 --readers=2 --expander_n=240 --topo=none --seed=7"

  echo "==> health smoke: plain baseline run"
  $health_bench --json="$health_dir/plain.json" >/dev/null

  echo "==> health smoke: health-on run (+snapshot)"
  $health_bench --json="$health_dir/health.json" --health \
    --health-snapshot="$health_dir/snapshot.json" >/dev/null

  echo "==> health smoke: splice_top renders the snapshot"
  ./build/tools/splice_top "$health_dir/snapshot.json" --once >/dev/null

  # The --json digest is the machine-readable surface downstream dashboards
  # consume; its schema is a contract, so validate it field by field.
  echo "==> health smoke: splice_top --json digest schema"
  ./build/tools/splice_top "$health_dir/snapshot.json" --once --json \
    >"$health_dir/digest.json"
  python3 - "$health_dir/digest.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
def need(obj, key, kinds, where):
    assert key in obj, f"{where}: missing key {key!r}"
    assert isinstance(obj[key], kinds), \
        f"{where}.{key}: {type(obj[key]).__name__}, want {kinds}"
need(d, "now_ns", str, "digest")
need(d, "window", dict, "digest")
need(d["window"], "bucket_ns", int, "window")
need(d["window"], "buckets", int, "window")
need(d, "publishes", int, "digest")
need(d, "active_dsts", int, "digest")
need(d, "reconv_latency_us", dict, "digest")
for q in ("p50", "p99", "p999"):
    need(d["reconv_latency_us"], q, (int, float), "reconv_latency_us")
need(d, "slos", list, "digest")
assert d["slos"], "digest.slos: empty — the two default SLOs must be present"
for s in d["slos"]:
    for k, t in (("name", str), ("state", str), ("fast_burn", (int, float)),
                 ("slow_burn", (int, float)),
                 ("budget_remaining", (int, float))):
        need(s, k, t, f"slo {s.get('name', '?')}")
    assert s["state"] in ("ok", "warn", "page"), s["state"]
need(d, "top", list, "digest")
assert d["top"], "digest.top: empty — the churn replay must leave active dsts"
for row in d["top"]:
    for k in ("dst", "score", "sent", "delivered", "anomalies", "churn"):
        need(row, k, int, "top row")
    assert 0 <= row["score"] <= 100, row
print(f"    digest ok: {len(d['top'])} dsts, {len(d['slos'])} slos, "
      f"{d['publishes']} publishes in window")
PY

  # Scoring must observe, never perturb: every exact metric in the bench
  # table (quiescent fib checksums, event/publish counts) has to be
  # bit-identical with health scoring on. The loose tolerance only covers
  # the machine-dependent reader-throughput ratios (exact metrics gate
  # exactly at any tolerance, as in --profile-smoke).
  echo "==> health smoke: health-on vs health-off results bit-identical"
  ./build/tools/splice_inspect diff "$health_dir/plain.json" \
    "$health_dir/health.json" --tolerance="${SMOKE_TOL:-0.75}"

  # Overhead gate: with --gate-time the wall_ms rows are compared too. The
  # scoring budget is <2% of publish latency — far inside the loose default
  # that absorbs shared-machine noise; tighten with HEALTH_TOL on a quiet
  # box.
  echo "==> health smoke: scoring overhead within tolerance"
  ./build/tools/splice_inspect diff "$health_dir/plain.json" \
    "$health_dir/health.json" --tolerance="${HEALTH_TOL:-0.75}" --gate-time

  # Committed baseline for the health-on run: checksums and counters gate
  # exactly, ratios at the smoke tolerance (as in --bench-smoke).
  health_baseline="bench/baselines/BENCH_live_churn_health.json"
  if [[ "$rebaseline" == 1 ]]; then
    cp "$health_dir/health.json" "$health_baseline"
    echo "    rebaselined $health_baseline"
  elif [[ -f "$health_baseline" ]]; then
    echo "==> health smoke: health-on BENCH table vs baseline"
    python3 scripts/perf_gate.py "$health_baseline" \
      "$health_dir/health.json" --quiet --tolerance="${SMOKE_TOL:-0.75}"
  else
    echo "    no baseline $health_baseline (run --health-smoke --rebaseline)" >&2
    exit 1
  fi

  echo "==> health smoke passed"
fi

if [[ "$attrib_smoke" == 1 ]]; then
  attrib_dir="build/attrib-smoke"
  mkdir -p "$attrib_dir" bench/baselines
  attrib_bench="./build/bench/bench_live_churn --events=40 --packets=256 --readers=2 --expander_n=240 --topo=none --seed=7"

  echo "==> attrib smoke: plain baseline run"
  $attrib_bench --json="$attrib_dir/plain.json" >/dev/null

  echo "==> attrib smoke: attribution-on run (+links snapshot, trace)"
  $attrib_bench --json="$attrib_dir/attrib.json" --links \
    --links-snapshot="$attrib_dir/links.json" \
    --trace="$attrib_dir/trace.json" >/dev/null

  echo "==> attrib smoke: splice_top renders the links heatmap"
  ./build/tools/splice_top "$attrib_dir/links.json" links --once >/dev/null

  # The links --json digest is the dashboard surface; its schema is a
  # contract, so validate it field by field.
  echo "==> attrib smoke: splice_top links --json digest schema"
  ./build/tools/splice_top "$attrib_dir/links.json" links --once --json \
    >"$attrib_dir/links_digest.json"
  python3 - "$attrib_dir/links_digest.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
def need(obj, key, kinds, where):
    assert key in obj, f"{where}: missing key {key!r}"
    assert isinstance(obj[key], kinds), \
        f"{where}.{key}: {type(obj[key]).__name__}, want {kinds}"
need(d, "now_ns", str, "digest")
need(d, "window", dict, "digest")
need(d["window"], "bucket_ns", int, "window")
need(d["window"], "buckets", int, "window")
for key in ("k", "links_total", "links_active"):
    need(d, key, int, "digest")
need(d, "totals", dict, "digest")
for key in ("traversals", "deflections", "drops"):
    need(d["totals"], key, int, "totals")
assert d["totals"]["traversals"] > 0, "no traversals attributed"
need(d, "hot", list, "digest")
assert d["hot"], "digest.hot: empty — the churn run must traverse links"
for row in d["hot"]:
    for key in ("edge", "src", "dst", "traversals", "deflections", "drops"):
        need(row, key, int, "hot row")
    need(row, "cost", (int, float), "hot row")
    need(row, "slice_traversals", list, "hot row")
    assert len(row["slice_traversals"]) == d["k"], row
need(d, "lossy", list, "digest")
print(f"    links digest ok: {d['links_active']}/{d['links_total']} links "
      f"active, {d['totals']['traversals']} traversals")
PY

  # Attribution must observe, never perturb: every exact metric in the
  # bench table (quiescent fib checksums, event/publish counts) has to be
  # bit-identical with the hooks armed; --gate-time additionally holds the
  # attribution-on wall-time inside the gate tolerance (tighten with
  # ATTRIB_TOL on a quiet reference machine).
  echo "==> attrib smoke: attribution-on vs -off results bit-identical"
  ./build/tools/splice_inspect diff "$attrib_dir/plain.json" \
    "$attrib_dir/attrib.json" --tolerance="${SMOKE_TOL:-0.75}"
  echo "==> attrib smoke: attribution overhead within tolerance"
  ./build/tools/splice_inspect diff "$attrib_dir/plain.json" \
    "$attrib_dir/attrib.json" --tolerance="${ATTRIB_TOL:-0.75}" --gate-time

  # Root-cause engine: the trace must contain at least one anomaly that
  # resolves to its causing churn publish, and the replay command the tool
  # prints must reproduce the anomaly from first principles.
  echo "==> attrib smoke: splice_inspect why resolves a root cause"
  why_out="$(./build/tools/splice_inspect why "$attrib_dir/trace.json")"
  printf '%s\n' "$why_out" | sed 's/^/    /'
  why_idx="$(printf '%s\n' "$why_out" |
    sed -n 's/^[[:space:]]*replay: splice_inspect why .* \([0-9][0-9]*\) --check$/\1/p')"
  if [[ -z "$why_idx" ]]; then
    echo "    why output carried no replay command" >&2
    exit 1
  fi
  echo "==> attrib smoke: replaying anomaly $why_idx (--check)"
  ./build/tools/splice_inspect why "$attrib_dir/trace.json" "$why_idx" --check

  # Epoch ledger surfaces: populated --json from the trace, and the clean
  # zero-count exit on a document with no spliceEpochs section.
  echo "==> attrib smoke: splice_inspect epochs --json"
  ./build/tools/splice_inspect epochs "$attrib_dir/trace.json" --json \
    >"$attrib_dir/epochs.json"
  ./build/tools/splice_inspect epochs "$attrib_dir/plain.json" --json \
    >"$attrib_dir/epochs_empty.json"
  python3 - "$attrib_dir/epochs.json" "$attrib_dir/epochs_empty.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["count"] == len(d["epochs"]) > 0, "trace carried no epoch rows"
for row in d["epochs"]:
    assert "epoch" in row, row
empty = json.load(open(sys.argv[2]))
assert empty["count"] == 0 and empty["epochs"] == [], empty
print(f"    epochs ok: {d['count']} rows; empty ledger exits clean")
PY

  # Follow mode across atomic rewrites: a reader polling the snapshot while
  # the producer rewrites it must never observe a torn document — every
  # rendered tick has to parse. (write_file_atomic stages to a temp file
  # and rename(2)s it into place; a plain write here would fail this.)
  echo "==> attrib smoke: follow mode over atomic rewrites"
  ./build/tools/splice_top "$attrib_dir/links.json" links --follow --json \
    --interval-ms=40 --ticks=60 >"$attrib_dir/follow.jsonl" &
  follow_pid=$!
  for i in 1 2; do
    $attrib_bench --json="$attrib_dir/rewrite$i.json" --links \
      --links-snapshot="$attrib_dir/links.json" >/dev/null
  done
  wait "$follow_pid"
  python3 - "$attrib_dir/follow.jsonl" <<'PY'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "follow mode rendered nothing"
for i, line in enumerate(lines):
    d = json.loads(line)  # a torn read would surface as a parse failure
    assert "totals" in d and "hot" in d, f"tick {i}: not a links digest"
print(f"    follow ok: {len(lines)} ticks, all parseable")
PY

  # Committed baseline for the attribution-on run: checksums and counters
  # gate exactly, ratios at the smoke tolerance (as in --bench-smoke).
  attrib_baseline="bench/baselines/BENCH_live_churn_attrib.json"
  if [[ "$rebaseline" == 1 ]]; then
    cp "$attrib_dir/attrib.json" "$attrib_baseline"
    echo "    rebaselined $attrib_baseline"
  elif [[ -f "$attrib_baseline" ]]; then
    echo "==> attrib smoke: attribution-on BENCH table vs baseline"
    python3 scripts/perf_gate.py "$attrib_baseline" \
      "$attrib_dir/attrib.json" --quiet --tolerance="${SMOKE_TOL:-0.75}"
  else
    echo "    no baseline $attrib_baseline (run --attrib-smoke --rebaseline)" >&2
    exit 1
  fi

  echo "==> attrib smoke passed"
fi

if [[ "$live_smoke" == 1 ]]; then
  live_dir="build/live-smoke"
  mkdir -p "$live_dir"
  # Same smoke configuration as --health-smoke/--attrib-smoke, plus a
  # --hold-ms quiet window after churn so the attach happens against a
  # steady, heartbeat-only writer too (both runs get the hold so the
  # --gate-time comparison is like with like).
  # --health --links on BOTH runs so the segment carries live health/SLO
  # and link-heatmap sections (the full operator surface) and the diff
  # below compares like with like — the only delta is the agent itself.
  live_bench="./build/bench/bench_live_churn --events=40 --packets=256 --readers=2 --expander_n=240 --topo=none --seed=7 --hold-ms=2500 --health --links"
  live_seg="$live_dir/live.tel"

  echo "==> live smoke: telemetry-off baseline run"
  $live_bench --json="$live_dir/plain.json" >/dev/null

  echo "==> live smoke: bench with live telemetry plane (backgrounded)"
  rm -f "$live_seg"
  $live_bench --json="$live_dir/telemetry.json" \
    --telemetry="shm:$live_seg,tcp:0" --telemetry-period-ms=50 \
    >"$live_dir/bench.log" 2>&1 &
  live_pid=$!

  # Wait for the agent to come up: the segment file plus the advertised
  # ephemeral scrape port in the bench log.
  live_ready=0
  for _ in $(seq 1 200); do
    if [[ -s "$live_seg" ]] &&
       grep -q "scrape endpoint http://127.0.0.1:" "$live_dir/bench.log"; then
      live_ready=1
      break
    fi
    if ! kill -0 "$live_pid" 2>/dev/null; then
      break
    fi
    sleep 0.05
  done
  if [[ "$live_ready" != 1 ]]; then
    echo "    bench never advertised its telemetry plane" >&2
    cat "$live_dir/bench.log" >&2
    kill "$live_pid" 2>/dev/null || true
    wait "$live_pid" 2>/dev/null || true
    exit 1
  fi
  live_port="$(sed -n \
    's,.*scrape endpoint http://127\.0\.0\.1:\([0-9][0-9]*\)/metrics.*,\1,p' \
    "$live_dir/bench.log" | head -n1)"

  # Zero-copy live attach against the RUNNING process: every tick must be a
  # parseable digest carrying a segment status block; generations must be
  # monotone and actually advance (the agent is publishing underneath us);
  # the writer must report alive and never stale; and at least one tick
  # must observe a heartbeat younger than one agent period — the end-to-end
  # freshness bound of the acceptance criteria.
  echo "==> live smoke: splice_top attach --json live ticks"
  ./build/tools/splice_top attach "$live_seg" --follow --json \
    --interval-ms=60 --ticks=12 >"$live_dir/attach.jsonl"
  python3 - "$live_dir/attach.jsonl" <<'PY'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) >= 2, f"attach rendered {len(lines)} ticks, want >= 2"
gens, fresh = [], 0
for i, line in enumerate(lines):
    d = json.loads(line)  # a torn segment read would fail to parse
    assert "top" in d and "slos" in d, f"tick {i}: not a health digest"
    seg = d.get("segment")
    assert seg, f"tick {i}: no segment status block"
    assert seg["writer_alive"] is True, f"tick {i}: writer not alive"
    assert seg["stale"] is False, f"tick {i}: segment reported stale"
    assert seg["period_ns"] > 0, f"tick {i}: agent period not advertised"
    gens.append(seg["generation"])
    fresh += seg["heartbeat_age_ns"] < seg["period_ns"]
assert gens == sorted(gens), f"generations went backwards: {gens}"
assert gens[-1] > gens[0], f"no live updates observed: {gens}"
assert fresh > 0, "no tick saw a heartbeat younger than one agent period"
assert any(len(json.loads(l)["top"]) > 0 for l in lines), \
    "no tick carried live per-destination health rows"
print(f"    attach ok: {len(lines)} ticks, gen {gens[0]} -> {gens[-1]}, "
      f"{fresh} tick(s) under one period")
PY

  # The same segment also serves the link-heatmap view live.
  echo "==> live smoke: splice_top attach links --json live ticks"
  ./build/tools/splice_top attach "$live_seg" links --follow --json \
    --interval-ms=60 --ticks=4 >"$live_dir/attach_links.jsonl"
  python3 - "$live_dir/attach_links.jsonl" <<'PY'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "links attach rendered nothing"
last = json.loads(lines[-1])
assert last["totals"]["traversals"] > 0, "no live traversals attributed"
assert last["hot"], "links digest carried no hot rows"
seg = last["segment"]
assert seg["writer_alive"] is True and seg["stale"] is False, seg
print(f"    links attach ok: {len(lines)} ticks, "
      f"{last['totals']['traversals']} traversals live")
PY

  # One exposition pulled over loopback from the running process.
  # splice_inspect scrape lints the body with the same conformance rules
  # obs_export_test enforces (prometheus_lint) before reporting success.
  echo "==> live smoke: splice_inspect scrape (port $live_port)"
  ./build/tools/splice_inspect scrape "http://127.0.0.1:$live_port/metrics" \
    --out="$live_dir/exposition.txt"
  if [[ "$(grep -c '^# TYPE' "$live_dir/exposition.txt")" -lt 2 ]]; then
    echo "    exposition missing the link-stats families" >&2
    exit 1
  fi

  wait "$live_pid"
  grep -q "\[telemetry\] agent stopped" "$live_dir/bench.log" || {
    echo "    bench exited without stopping the agent cleanly" >&2
    exit 1
  }

  # The agent observes, never perturbs: every exact metric in the bench
  # table (quiescent fib checksums, event/publish counts) must be
  # bit-identical with the telemetry plane on, and --gate-time holds the
  # telemetry-on wall-time inside the gate tolerance (tighten with
  # LIVE_TOL on a quiet reference machine).
  echo "==> live smoke: telemetry-on vs -off results bit-identical"
  ./build/tools/splice_inspect diff "$live_dir/plain.json" \
    "$live_dir/telemetry.json" --tolerance="${SMOKE_TOL:-0.75}"
  echo "==> live smoke: telemetry overhead within tolerance"
  ./build/tools/splice_inspect diff "$live_dir/plain.json" \
    "$live_dir/telemetry.json" --tolerance="${LIVE_TOL:-0.75}" --gate-time

  echo "==> live smoke passed"
fi

echo "==> all checks passed"
