#!/usr/bin/env python3
"""Perf-regression gate: diff two bench JSON files with per-metric tolerances.

Accepts both telemetry formats this repo emits:

  * bench tables   -- {bench, topo, params, rows: [{col: val}, ...], wall_ms}
                      written by the bench binaries' --json flag;
  * run reports    -- {report, params, counters, gauges, histograms, spans}
                      written by --metrics (obs::RunReport::to_json).

Metrics are classified by column/metric name:

  HIGHER_BETTER  name contains speedup / mhops / throughput / per_s
                 -> fail if current < baseline * (1 - tolerance)
  NOISY          name contains alloc_bytes / heap_peak / rss / ipc /
                 cache_miss / branch_miss / cycles / instruction / fault /
                 cpu_user / cpu_sys (resource-profiler output; checked
                 before TIME so cpu_user_seconds doesn't read as TIME)
                 -> fail if current drifts outside baseline * (1 +/- tol);
                    two-sided because a large drop means the workload
                    changed, not that it got better
  EXACT          allocation *counts* (allocs / frees — the zero-alloc
                 paths must stay zero-alloc) and everything else
                 (checksums, outcome counts, hop totals, registry
                 counters, histogram bins...) -> any mismatch fails
  TIME           name contains ms / _ns / _us / wall / seconds
                 -> gated only with --gate-time (wall time is machine-
                    dependent); then fail if current > baseline * (1 + tol)

Bench-table rows are keyed by their string-valued cells (phase, impl,
checksum columns emit as strings), so rows match across runs regardless of
row order; a baseline row with no matching current row is a failure.

Usage:
  perf_gate.py BASELINE CURRENT [--tolerance=0.10] [--gate-time] [--quiet]
  perf_gate.py --self-test

Exit status: 0 = pass, 1 = regression or format error.
"""

from __future__ import annotations

import json
import sys

ALLOC_EXACT_MARKERS = ("allocs", "frees")
HIGHER_BETTER_MARKERS = ("speedup", "mhops", "throughput", "per_s")
NOISY_MARKERS = ("alloc_bytes", "heap_peak", "rss", "ipc", "cache_miss",
                 "branch_miss", "cycles", "instruction", "fault",
                 "cpu_user", "cpu_sys")
TIME_MARKERS = ("ms", "_ns", "_us", "wall", "seconds")


def classify(name: str) -> str:
    low = name.lower()
    # Order matters: "Mhops_s" contains "hops" and "_s"; higher-better
    # markers win over everything else, and NOISY must precede TIME
    # ("cpu_user_seconds" carries a TIME marker).
    if any(m in low for m in ALLOC_EXACT_MARKERS):
        return "exact"
    if any(m in low for m in HIGHER_BETTER_MARKERS):
        return "higher_better"
    if any(m in low for m in NOISY_MARKERS):
        return "noisy"
    if any(m in low for m in TIME_MARKERS):
        return "time"
    return "exact"


def is_run_report(doc: dict) -> bool:
    return "counters" in doc or "report" in doc


def flatten_run_report(doc: dict) -> dict:
    """RunReport -> {metric_key: (class, value)}."""
    out = {}
    for name, value in doc.get("counters", {}).items():
        out[f"counter:{name}"] = ("exact", value)
    for name, value in doc.get("gauges", {}).items():
        out[f"gauge:{name}"] = (classify(name), value)
    for name, hist in doc.get("histograms", {}).items():
        out[f"hist:{name}:total"] = ("exact", hist.get("total"))
        out[f"hist:{name}:sum"] = (classify(name), hist.get("sum"))
        for i, c in enumerate(hist.get("counts", [])):
            out[f"hist:{name}:bin{i}"] = ("exact", c)
    # Span counts vary with worker count (per-worker scratch construction)
    # and span times are wall-clock: only total_ns is diffable, as TIME.
    # Resource deltas from --profile runs are diffable too: alloc/free
    # counts exactly (the zero-alloc contract), bytes and hardware
    # counters as NOISY — classify() sorts them out by field name.
    for span in doc.get("spans", []):
        out[f"span:{span['path']}:total_ns"] = ("time", span.get("total_ns"))
        for field in ("allocs", "frees", "alloc_bytes", "heap_peak_bytes",
                      "cycles", "instructions", "cache_misses",
                      "branch_misses", "ipc"):
            if field in span:
                out[f"span:{span['path']}:{field}"] = (classify(field),
                                                       span[field])
    # Process rusage summary: numeric rows diff as NOISY; string rows
    # (tier, alloc_hooks) are environment annotations, skipped.
    for name, value in doc.get("resources", {}).items():
        try:
            out[f"res:{name}"] = ("noisy", float(value))
        except (TypeError, ValueError):
            pass
    return out


def flatten_bench_rows(doc: dict) -> dict:
    """Bench table -> {metric_key: (class, value)}. Row key = string cells."""
    out = {}
    seen = {}
    for row in doc.get("rows", []):
        key_cells = [str(v) for v in row.values() if isinstance(v, str) and v]
        key = "|".join(key_cells) or "row"
        n = seen.get(key, 0)
        seen[key] = n + 1
        if n:
            key = f"{key}#{n}"
        for col, value in row.items():
            if isinstance(value, str):
                continue  # part of the key
            out[f"{key}:{col}"] = (classify(col), value)
    out["wall_ms"] = ("time", doc.get("wall_ms"))
    return out


def flatten(doc: dict) -> dict:
    return flatten_run_report(doc) if is_run_report(doc) else flatten_bench_rows(doc)


def compare(base: dict, cur: dict, tolerance: float, gate_time: bool,
            quiet: bool = False) -> list[str]:
    """Returns a list of failure messages (empty = gate passes)."""
    failures = []
    base_m = flatten(base)
    cur_m = flatten(cur)
    for key in sorted(base_m):
        cls, bv = base_m[key]
        if key not in cur_m:
            failures.append(f"MISSING  {key} (present in baseline)")
            continue
        cv = cur_m[key][1]
        if bv is None or cv is None:
            continue
        if cls == "exact":
            if bv != cv:
                failures.append(f"CHANGED  {key}: {bv} -> {cv}")
            continue
        if not isinstance(bv, (int, float)) or not isinstance(cv, (int, float)):
            if bv != cv:
                failures.append(f"CHANGED  {key}: {bv} -> {cv}")
            continue
        if cls == "time":
            if not gate_time:
                continue
            if bv > 0 and cv > bv * (1.0 + tolerance):
                failures.append(
                    f"SLOWER   {key}: {bv:g} -> {cv:g} "
                    f"(+{(cv / bv - 1) * 100:.1f}% > {tolerance * 100:.0f}%)")
            continue
        if cls == "noisy":
            if bv > 0 and not (bv * (1.0 - tolerance) <= cv
                               <= bv * (1.0 + tolerance)):
                failures.append(
                    f"DRIFTED  {key}: {bv:g} -> {cv:g} "
                    f"({(cv / bv - 1) * 100:+.1f}% vs "
                    f"±{tolerance * 100:.0f}%)")
            continue
        # higher_better
        if bv > 0 and cv < bv * (1.0 - tolerance):
            failures.append(
                f"REGRESSED {key}: {bv:g} -> {cv:g} "
                f"(-{(1 - cv / bv) * 100:.1f}% > {tolerance * 100:.0f}%)")
    for key in sorted(set(cur_m) - set(base_m)):
        if not quiet:
            print(f"note: new metric not in baseline: {key}")
    return failures


def self_test() -> int:
    """Synthetic fixtures: the gate must flag a 20% regression and pass an
    identical pair; exact mismatches must always fail."""
    baseline = {
        "bench": "fixture",
        "topo": "sprint",
        "params": "k=8",
        "rows": [
            {"phase": "forward", "impl": "fast", "threads": 1,
             "ms": 10.0, "Mhops_s": 50.0, "speedup": 2.0,
             "checksum": "xdeadbeef"},
            {"phase": "trial_batch", "impl": "engine", "threads": "hw",
             "ms": 5.0, "Mhops_s": 100.0, "speedup": 4.0,
             "checksum": "xfeedface"},
        ],
        "wall_ms": 100.0,
    }
    same = json.loads(json.dumps(baseline))
    if compare(baseline, same, 0.10, gate_time=True, quiet=True):
        print("self-test FAILED: identical runs did not pass")
        return 1

    # 20% speedup regression on one row must be flagged at 10% tolerance.
    regressed = json.loads(json.dumps(baseline))
    regressed["rows"][1]["speedup"] = 3.2     # 4.0 -> 3.2 = -20%
    regressed["rows"][1]["Mhops_s"] = 80.0    # -20%
    fails = compare(baseline, regressed, 0.10, gate_time=False, quiet=True)
    if len(fails) != 2 or not all(f.startswith("REGRESSED") for f in fails):
        print(f"self-test FAILED: 20% regression not flagged: {fails}")
        return 1

    # ...and must pass at 25% tolerance.
    if compare(baseline, regressed, 0.25, gate_time=False, quiet=True):
        print("self-test FAILED: 20% regression flagged at 25% tolerance")
        return 1

    # A checksum flip is an exact failure at any tolerance.
    corrupt = json.loads(json.dumps(baseline))
    corrupt["rows"][0]["checksum"] = "x0bad0bad"
    fails = compare(baseline, corrupt, 1e9, gate_time=False, quiet=True)
    if not any(f.startswith("MISSING") for f in fails):
        print(f"self-test FAILED: checksum flip not caught: {fails}")
        return 1

    # Time gating: +20% wall only fails with --gate-time.
    slower = json.loads(json.dumps(baseline))
    slower["rows"][0]["ms"] = 12.0
    if compare(baseline, slower, 0.10, gate_time=False, quiet=True):
        print("self-test FAILED: time gated without --gate-time")
        return 1
    if not compare(baseline, slower, 0.10, gate_time=True, quiet=True):
        print("self-test FAILED: +20% time not flagged with --gate-time")
        return 1

    # RunReport format: a counter drift is an exact failure.
    report = {"report": "fixture", "params": {},
              "counters": {"sim.trials": 1000}, "gauges": {},
              "histograms": {"hops": {"lo": 0.0, "hi": 8.0, "total": 3,
                                      "sum": 6.0, "counts": [1, 2]}},
              "spans": [{"path": "a/b", "depth": 1, "count": 2,
                         "total_ns": 5000}]}
    drifted = json.loads(json.dumps(report))
    drifted["counters"]["sim.trials"] = 999
    fails = compare(report, drifted, 0.10, gate_time=False, quiet=True)
    if len(fails) != 1 or "sim.trials" not in fails[0]:
        print(f"self-test FAILED: counter drift not caught: {fails}")
        return 1

    # Profiled RunReport: a span that gains allocations on a zero-alloc
    # path is an exact failure at ANY tolerance, while byte totals and
    # hardware counters only fail when they drift outside the (two-sided)
    # tolerance band.
    profiled = {"report": "fixture", "params": {},
                "provenance": {"resource_tier": "perf"},
                "resources": {"tier": "perf", "max_rss_bytes": "1000000",
                              "cpu_user_seconds": "0.50"},
                "counters": {}, "gauges": {}, "histograms": {},
                "spans": [{"path": "forward/batch", "depth": 1, "count": 64,
                           "total_ns": 5000, "allocs": 0, "frees": 0,
                           "alloc_bytes": 0, "heap_peak_bytes": 0,
                           "cycles": 100000, "instructions": 250000,
                           "cache_misses": 1200, "branch_misses": 40,
                           "ipc": 2.5}]}
    alloc_regressed = json.loads(json.dumps(profiled))
    alloc_regressed["spans"][0]["allocs"] = 3
    alloc_regressed["spans"][0]["frees"] = 3
    fails = compare(profiled, alloc_regressed, 1e9, gate_time=False,
                    quiet=True)
    if (len(fails) != 2
            or not all(f.startswith("CHANGED") for f in fails)
            or not any(":allocs" in f for f in fails)
            or not any(":frees" in f for f in fails)):
        print(f"self-test FAILED: alloc regression not caught: {fails}")
        return 1

    # Hardware-counter wobble inside the band passes; outside it fails
    # in either direction.
    wobbled = json.loads(json.dumps(profiled))
    wobbled["spans"][0]["cycles"] = 108000         # +8%
    wobbled["spans"][0]["cache_misses"] = 1100     # -8.3%
    wobbled["resources"]["max_rss_bytes"] = "1050000"
    if compare(profiled, wobbled, 0.10, gate_time=False, quiet=True):
        print("self-test FAILED: in-band counter wobble flagged")
        return 1
    spiked = json.loads(json.dumps(profiled))
    spiked["spans"][0]["cache_misses"] = 2400      # +100%
    spiked["spans"][0]["ipc"] = 1.0                # -60%
    fails = compare(profiled, spiked, 0.10, gate_time=False, quiet=True)
    if (len(fails) != 2
            or not all(f.startswith("DRIFTED") for f in fails)):
        print(f"self-test FAILED: counter drift not flagged two-sided: "
              f"{fails}")
        return 1

    print("perf_gate self-test OK")
    return 0


def main(argv: list[str]) -> int:
    tolerance = 0.10
    gate_time = False
    quiet = False
    paths = []
    for arg in argv[1:]:
        if arg == "--self-test":
            return self_test()
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg == "--gate-time":
            gate_time = True
        elif arg == "--quiet":
            quiet = True
        elif arg.startswith("--"):
            print(f"unknown flag: {arg}", file=sys.stderr)
            return 1
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    try:
        with open(paths[0]) as f:
            base = json.load(f)
        with open(paths[1]) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_gate: cannot load input: {e}", file=sys.stderr)
        return 1
    failures = compare(base, cur, tolerance, gate_time, quiet)
    if failures:
        print(f"perf_gate: FAIL ({paths[0]} -> {paths[1]})")
        for f in failures:
            print(f"  {f}")
        return 1
    if not quiet:
        print(f"perf_gate: OK ({paths[0]} -> {paths[1]}, "
              f"tolerance={tolerance:.0%}, gate_time={gate_time})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
