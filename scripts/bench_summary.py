#!/usr/bin/env python3
"""Aggregate per-bench BENCH_*.json tables into one top-level summary.

scripts/check.sh --bench-smoke runs each micro bench into its own
BENCH_<name>.json; this script folds those tables into a single
BENCH_summary.json (name -> headline metrics + provenance) so the perf
trajectory across PRs is machine-readable from one committed file instead
of N per-bench snapshots.

Headline selection: throughput / speedup columns aggregate as the max over
rows (the best configuration is the headline); raw wall-times are excluded
(machine-dependent, never gated). Checksums are collected as a sorted
unique list — they are the exact-reproducibility fingerprint, so a summary
diff across PRs immediately shows whether results changed or only speed.

Usage: bench_summary.py --out BENCH_summary.json DIR [DIR ...]
Directories are scanned for BENCH_*.json; when the same bench name appears
in several directories the EARLIEST directory on the command line wins
(pass the fresh smoke dir first, committed baselines last as fallback).
"""

import argparse
import glob
import json
import os
import sys

# Bigger-is-better columns worth tracking across PRs. Aggregated as max.
HEADLINE_MAX = (
    "speedup",
    "republish_speedup",
    "Mlookups_per_s",
    "Mpkts_per_s",
    "Mhops_per_s",
    "Mhops_s",
    "events_per_s",
)

# Exact-value fingerprint columns: any change means the results changed.
CHECKSUM_KEYS = ("checksum", "fib_checksum")


def numeric(value):
    """Return float(value) for real numbers, None for '-', '' and text."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None


def summarize_file(path):
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("rows", [])
    headline = {}
    checksums = set()
    for row in rows:
        for key in HEADLINE_MAX:
            val = numeric(row.get(key))
            if val is None:
                continue
            if key not in headline or val > headline[key]:
                headline[key] = val
        for key in CHECKSUM_KEYS:
            val = row.get(key)
            if isinstance(val, str) and val:
                checksums.add(val)
    entry = {
        "bench": doc.get("bench", "?"),
        "topo": doc.get("topo", ""),
        "params": doc.get("params", ""),
        "rows": len(rows),
        "headline": {k: headline[k] for k in sorted(headline)},
        "checksums": sorted(checksums),
        "provenance": {"file": path, "wall_ms": doc.get("wall_ms")},
    }
    return entry


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", required=True, help="summary JSON to write")
    ap.add_argument("dirs", nargs="+", help="directories with BENCH_*.json")
    args = ap.parse_args()

    benches = {}
    for directory in args.dirs:
        for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
            base = os.path.basename(path)
            name = base[len("BENCH_"):-len(".json")]
            if name == "summary" or name in benches:
                continue  # earliest directory wins; never self-ingest
            try:
                benches[name] = summarize_file(path)
            except (OSError, ValueError, KeyError) as err:
                print(f"bench_summary: skipping {path}: {err}",
                      file=sys.stderr)
                return 1

    if not benches:
        print("bench_summary: no BENCH_*.json found", file=sys.stderr)
        return 1

    summary = {
        "schema": "splice-bench-summary-v1",
        "benches": {name: benches[name] for name in sorted(benches)},
    }
    tmp = args.out + ".tmp"
    with open(tmp, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=False)
        f.write("\n")
    os.replace(tmp, args.out)
    print(f"bench_summary: {len(benches)} benches -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
