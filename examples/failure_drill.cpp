// Failure drill: an operator's what-if tool. Loads a topology, runs a
// configurable failure campaign (random p-failures or an explicit link
// list), and reports which source-destination pairs survive under (a) plain
// shortest-path routing, (b) path splicing with end-system recovery, and
// (c) the theoretical best possible — quantifying the paper's reliability
// shortfall (§2) on *your* network.
//
//   ./failure_drill --topo=sprint --p=0.05 --trials=50 --slices=5
//   ./failure_drill --topo=geant --fail=3,7,12
#include <iostream>
#include <sstream>

#include "graph/connectivity.h"
#include "sim/failure.h"
#include "splicing/recovery.h"
#include "splicing/reliability.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

using namespace splice;

namespace {

std::vector<EdgeId> parse_edge_list(const std::string& spec) {
  std::vector<EdgeId> edges;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    edges.push_back(static_cast<EdgeId>(std::stol(tok)));
  }
  return edges;
}

struct DrillOutcome {
  double frac_broken_normal = 0.0;   // shortest-path pairs broken
  double frac_unrecovered = 0.0;     // after splicing + recovery
  double frac_impossible = 0.0;      // best possible (graph cut)
};

DrillOutcome drill(Splicer& splicer, const std::vector<char>& alive,
                   Rng& rng) {
  const Graph& g = splicer.graph();
  const SplicedReliabilityAnalyzer analyzer(g, splicer.control_plane());
  splicer.network().set_link_mask(alive);

  long long broken = 0;
  long long unrecovered = 0;
  long long impossible = 0;
  const long long total = total_ordered_pairs(g);
  for (NodeId dst = 0; dst < g.node_count(); ++dst) {
    const auto best = reachable_nodes(g, dst, alive);
    for (NodeId src = 0; src < g.node_count(); ++src) {
      if (src == dst) continue;
      const RecoveryResult r =
          attempt_recovery(splicer.network(), src, dst, RecoveryConfig{}, rng);
      broken += r.initially_connected ? 0 : 1;
      unrecovered += r.delivered ? 0 : 1;
      impossible += best[static_cast<std::size_t>(src)] ? 0 : 1;
    }
  }
  DrillOutcome out;
  out.frac_broken_normal = static_cast<double>(broken) / total;
  out.frac_unrecovered = static_cast<double>(unrecovered) / total;
  out.frac_impossible = static_cast<double>(impossible) / total;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  SplicerConfig cfg;
  cfg.slices = static_cast<SliceId>(flags.get_int("slices", 5));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  Splicer splicer(topo::by_name(flags.get_string("topo", "sprint")), cfg);
  const Graph& g = splicer.graph();
  Rng rng(cfg.seed ^ 0xd411);

  std::cout << "failure drill on " << flags.get_string("topo", "sprint")
            << " (" << g.node_count() << " nodes / " << g.edge_count()
            << " links), k=" << cfg.slices << "\n\n";

  if (flags.has("fail")) {
    // Deterministic campaign: fail exactly the named links.
    std::vector<char> alive(static_cast<std::size_t>(g.edge_count()), 1);
    for (EdgeId e : parse_edge_list(flags.get_string("fail", ""))) {
      if (e >= 0 && e < g.edge_count()) {
        alive[static_cast<std::size_t>(e)] = 0;
        std::cout << "failing link " << e << ": " << g.name(g.edge(e).u)
                  << " -- " << g.name(g.edge(e).v) << "\n";
      }
    }
    const DrillOutcome out = drill(splicer, alive, rng);
    std::cout << "\npairs broken under shortest-path routing: "
              << fmt_percent(out.frac_broken_normal) << "\n"
              << "pairs unrecovered with splicing (k=" << cfg.slices
              << ", 5 trials): " << fmt_percent(out.frac_unrecovered) << "\n"
              << "pairs physically disconnected (best possible): "
              << fmt_percent(out.frac_impossible) << "\n";
    return 0;
  }

  // Monte Carlo campaign.
  const double p = flags.get_double("p", 0.05);
  const int trials = static_cast<int>(flags.get_int("trials", 25));
  OnlineStats broken;
  OnlineStats unrecovered;
  OnlineStats impossible;
  for (int t = 0; t < trials; ++t) {
    const auto alive = sample_alive_mask(g.edge_count(), p, rng);
    const DrillOutcome out = drill(splicer, alive, rng);
    broken.add(out.frac_broken_normal);
    unrecovered.add(out.frac_unrecovered);
    impossible.add(out.frac_impossible);
  }
  Table table({"metric", "mean", "ci95"});
  table.add_row({"broken under shortest paths", fmt_percent(broken.mean()),
                 fmt_percent(broken.ci95_halfwidth())});
  table.add_row({"unrecovered with splicing", fmt_percent(unrecovered.mean()),
                 fmt_percent(unrecovered.ci95_halfwidth())});
  table.add_row({"physically disconnected", fmt_percent(impossible.mean()),
                 fmt_percent(impossible.ci95_halfwidth())});
  table.print(std::cout);
  std::cout << "\nreliability shortfall of plain routing: "
            << fmt_percent(broken.mean() - impossible.mean())
            << "; remaining with splicing: "
            << fmt_percent(unrecovered.mean() - impossible.mean()) << "\n";
  return 0;
}
