// MTR deployment generation (§3.1.2 deployment path): build a splicing
// control plane for a topology, render the multi-topology routing
// configuration an operator would push to routers, audit it by parsing it
// back, and report the control-plane cost of the deployment.
//
//   ./mtr_deployment --topo=geant --slices=4 [--out=geant.mtr]
#include <iostream>

#include "routing/flooding.h"
#include "routing/mtr_config.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/table.h"

using namespace splice;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string topo_name = flags.get_string("topo", "geant");
  const Graph g = topo::by_name(topo_name);
  ControlPlaneConfig cfg;
  cfg.slices = static_cast<SliceId>(flags.get_int("slices", 4));
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const MultiInstanceRouting mir(g, cfg);

  // Render the deployment.
  const MtrDeployment deployment =
      extract_mtr_deployment(g, mir, topo_name + "-splice");
  const std::string config = render_mtr_config(g, deployment);

  std::cout << "generated multi-topology configuration for " << topo_name
            << " (" << cfg.slices << " slices):\n\n";
  // Show the head of the config; full text optionally written to --out.
  std::size_t shown = 0;
  for (std::size_t i = 0; i < config.size() && shown < 12; ++i) {
    std::cout << config[i];
    if (config[i] == '\n') ++shown;
  }
  std::cout << "  ... (" << config.size() << " bytes total)\n\n";

  if (const auto out = flags.get("out")) {
    if (write_file(*out, config)) {
      std::cout << "full configuration written to " << *out << "\n\n";
    } else {
      std::cerr << "could not write " << *out << "\n";
      return 1;
    }
  }

  // Audit: parse back and verify equivalence.
  const MtrDeployment reparsed = parse_mtr_config(g, config);
  std::cout << "round-trip audit: "
            << (deployments_equivalent(deployment, reparsed) ? "OK"
                                                             : "MISMATCH!")
            << "\n\n";

  // Control-plane cost summary.
  Table cost({"metric", "separate instances", "multi-topology (RFC 4915)"});
  const FloodStats sep =
      simulate_full_flood(g, cfg.slices, FloodEncoding::kSeparateInstances);
  const FloodStats mt =
      simulate_full_flood(g, cfg.slices, FloodEncoding::kMultiTopology);
  cost.add_row({"cold-start LSA transmissions", fmt_int(sep.messages),
                fmt_int(mt.messages)});
  cost.add_row({"flooding convergence (ms)", fmt_double(sep.convergence_ms, 1),
                fmt_double(mt.convergence_ms, 1)});
  cost.print(std::cout);
  std::cout << "\n§3.1.2: \"Multi-topology routing provides much of the "
               "control-plane function that would be needed to support path "
               "splicing in practice.\"\n";
  return 0;
}
