// Quickstart: build a path splicer over a real ISP topology, send a packet,
// fail a link on its path, and watch end-system recovery find a detour by
// re-randomizing the forwarding bits — the paper's core loop in ~80 lines.
//
//   ./quickstart [--topo=geant|sprint|abilene] [--slices=5] [--seed=1]
#include <iostream>

#include "splicing/metrics.h"
#include "splicing/recovery.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"
#include "util/flags.h"

using namespace splice;

namespace {

void print_trace(const Graph& g, const Delivery& d) {
  if (d.hops.empty()) {
    std::cout << "  (no hops)\n";
    return;
  }
  std::cout << "  " << g.name(d.hops.front().node);
  for (const HopRecord& hop : d.hops) {
    std::cout << " -[slice " << hop.slice << (hop.deflected ? "*" : "")
              << "]-> " << g.name(hop.next);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  // 1. Build the control plane: k routing instances over one topology, each
  //    with degree-based Weight(0,3) perturbed link weights (§3.1).
  SplicerConfig cfg;
  cfg.slices = static_cast<SliceId>(flags.get_int("slices", 5));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  Splicer splicer(topo::by_name(flags.get_string("topo", "sprint")), cfg);
  const Graph& g = splicer.graph();
  std::cout << "topology: " << g.node_count() << " nodes, " << g.edge_count()
            << " links; " << cfg.slices << " slices; "
            << splicer.fibs().installed_entries() << " FIB entries\n\n";

  const NodeId src = 0;
  const NodeId dst = g.node_count() - 1;
  std::cout << "flow: " << g.name(src) << " -> " << g.name(dst) << "\n\n";

  // 2. Send a packet along the default shortest path (slice 0 pinned).
  const Delivery normal = splicer.send(src, dst, splicer.make_pinned_header(0));
  std::cout << "shortest path (" << normal.hop_count() << " hops, latency "
            << trace_cost(g, normal) << "):\n";
  print_trace(g, normal);

  // 3. Fail a link on that path that splicing can route around — i.e. the
  //    spliced union of all k trees still connects the pair without it.
  //    (A stub's only uplink has no alternative in any routing scheme.)
  EdgeId broken = kInvalidEdge;
  for (const HopRecord& hop : normal.hops) {
    std::vector<char> alive(static_cast<std::size_t>(g.edge_count()), 1);
    alive[static_cast<std::size_t>(hop.edge)] = 0;
    if (splicer.spliced_connected(src, dst, cfg.slices, alive)) {
      broken = hop.edge;
      break;
    }
  }
  if (broken == kInvalidEdge) {
    std::cout << "\nno link on this path has a spliced alternative (try "
                 "another --seed or more --slices)\n";
    return 1;
  }
  splicer.network().set_link_state(broken, false);
  std::cout << "\nfailing link " << g.name(g.edge(broken).u) << " -- "
            << g.name(g.edge(broken).v) << "\n";
  const Delivery after = splicer.send(src, dst, splicer.make_pinned_header(0));
  std::cout << "same header now: "
            << (after.delivered() ? "delivered (?)" : "DEAD END") << "\n";

  // 4. End-system recovery: re-randomize the forwarding bits (§4.3).
  Rng rng(cfg.seed ^ 0xabcd);
  const RecoveryResult r =
      attempt_recovery(splicer.network(), src, dst, RecoveryConfig{}, rng);
  if (!r.delivered) {
    std::cout << "recovery failed (no spliced path survives)\n";
    return 1;
  }
  const ShortestPathOracle oracle(g);
  std::cout << "\nrecovered after " << r.trials_used
            << " trial(s); spliced detour (" << r.delivery.hop_count()
            << " hops, stretch "
            << trace_stretch(g, r.delivery, oracle.distance(src, dst))
            << "):\n";
  print_trace(g, r.delivery);

  // 5. Network-based recovery does the same without sender involvement.
  ForwardingPolicy deflect;
  deflect.local_recovery = LocalRecovery::kDeflect;
  const Delivery network_recovered =
      splicer.send(src, dst, splicer.make_pinned_header(0), deflect);
  std::cout << "\nnetwork-based recovery (router deflects, '*' marks the "
               "deflection):\n";
  print_trace(g, network_recovered);
  return network_recovered.delivered() ? 0 : 1;
}
