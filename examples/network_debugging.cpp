// Ops debugging session: when a spliced network misbehaves, what tools does
// an operator have? This example walks the full kit on a staged incident:
//   1. a background of spliced traffic recorded into a TraceLog,
//   2. an unannounced double link failure,
//   3. log forensics (dead ends, deflections, loop markers),
//   4. spliced-path enumeration for an affected pair ("what options remain"),
//   5. header synthesis to pin traffic onto a chosen detour,
//   6. the criticality report showing whether the incident was predictable.
//
//   ./network_debugging --topo=sprint --slices=5
#include <iostream>

#include "analysis/advisor.h"
#include "dataplane/trace_log.h"
#include "splicing/path_enum.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/table.h"

using namespace splice;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  SplicerConfig cfg;
  cfg.slices = static_cast<SliceId>(flags.get_int("slices", 5));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  Splicer splicer(topo::by_name(flags.get_string("topo", "sprint")), cfg);
  const Graph& g = splicer.graph();
  Rng rng(cfg.seed ^ 0xdeb);

  // 1. Background traffic, all healthy.
  TraceLog healthy(g);
  for (NodeId s = 0; s < g.node_count(); s += 5) {
    for (NodeId t = 0; t < g.node_count(); t += 7) {
      if (s == t) continue;
      healthy.record(s, t, splicer.send(s, t, splicer.make_random_header(rng)));
    }
  }
  std::cout << "healthy baseline: " << healthy.delivered() << "/"
            << healthy.size() << " delivered, "
            << healthy.total_hops() << " total hops\n";

  // 2. Incident: fail the two most loaded-looking links on the NYC side.
  const EdgeId cut1 = g.find_edge(g.find_node("NewYork"), g.find_node("Chicago"));
  const EdgeId cut2 = g.find_edge(g.find_node("Pennsauken"), g.find_node("NewYork"));
  splicer.network().set_link_state(cut1, false);
  splicer.network().set_link_state(cut2, false);
  std::cout << "\nINCIDENT: NewYork--Chicago and Pennsauken--NewYork are "
               "down\n\n";

  // 3. Re-run the background and read the log.
  TraceLog incident(g);
  for (NodeId s = 0; s < g.node_count(); s += 5) {
    for (NodeId t = 0; t < g.node_count(); t += 7) {
      if (s == t) continue;
      incident.record(s, t, splicer.send(s, t, splicer.make_random_header(rng)));
    }
  }
  std::cout << "incident log summary: " << incident.delivered() << "/"
            << incident.size() << " delivered, " << incident.dead_ends()
            << " dead ends\n";
  // Show one failing record verbatim.
  for (const std::string& line : incident.lines()) {
    if (line.rfind("DEAD_END", 0) == 0) {
      std::cout << "  sample: " << line << "\n";
      break;
    }
  }

  // 4. Find an affected pair (slice-0 path used a cut link) that still has
  //    surviving spliced options, and enumerate them.
  PathEnumOptions opts;
  opts.max_paths = 5;
  opts.edge_alive.assign(static_cast<std::size_t>(g.edge_count()), 1);
  opts.edge_alive[static_cast<std::size_t>(cut1)] = 0;
  opts.edge_alive[static_cast<std::size_t>(cut2)] = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<std::vector<NodeId>> options;
  for (NodeId s = 0; s < g.node_count() && src == kInvalidNode; ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      // Affected: the normal path crossed a cut link.
      bool affected = false;
      NodeId cur = s;
      while (cur != t) {
        const EdgeId e =
            splicer.control_plane().slice(0).next_hop_edge(cur, t);
        affected |= e == cut1 || e == cut2;
        cur = splicer.control_plane().slice(0).next_hop(cur, t);
      }
      if (!affected) continue;
      options = enumerate_spliced_paths(splicer, s, t, opts);
      if (!options.empty()) {
        src = s;
        dst = t;
        break;
      }
    }
  }
  if (src == kInvalidNode) {
    std::cout << "\nno affected pair has surviving spliced options\n";
    return 1;
  }
  std::cout << "\nsurviving spliced options " << g.name(src) << " -> "
            << g.name(dst) << " (showing up to 5):\n";
  for (const auto& path : options) {
    std::cout << "  ";
    for (std::size_t i = 0; i < path.size(); ++i) {
      std::cout << (i ? ">" : "") << g.name(path[i]);
    }
    std::cout << "\n";
  }

  // 5. Pin traffic to the first surviving option.
  if (!options.empty()) {
    if (const auto header = header_for_path(splicer, options.front())) {
      const Delivery pinned = splicer.send(src, dst, *header);
      std::cout << "\npinned detour: "
                << format_trace(g, src, dst, pinned) << "\n";
    }
  }

  // 6. Hindsight: was this predictable? Criticality top-5.
  std::cout << "\ncriticality report (top 5, k=" << cfg.slices << "):\n";
  const auto ranking =
      rank_link_criticality(g, splicer.control_plane(), cfg.slices);
  Table crit({"link", "pairs cut if it fails alone"});
  for (std::size_t i = 0; i < ranking.size() && i < 5; ++i) {
    const Edge& e = g.edge(ranking[i].edge);
    crit.add_row({g.name(e.u) + "--" + g.name(e.v),
                  fmt_int(ranking[i].pairs_cut_spliced)});
  }
  crit.print(std::cout);
  return 0;
}
