// Custom-topology study: run the paper's full evaluation pipeline on *your*
// network. Reads a topology file in the native edge-list format (or a
// registry name), prints its structural properties, then regenerates the
// Figure 3 reliability curves and the §4.3 recovery scalars for it.
//
//   ./custom_topology_study mynetwork.topo --slices=5 --trials=200
//   ./custom_topology_study --topo=abilene
//
// Topology file format:
//   node seattle          # optional explicit nodes
//   edge seattle denver 13
//   0 1 2.5               # or bare "u v w" lines
#include <iostream>

#include "graph/io.h"
#include "graph/properties.h"
#include "sim/experiments.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/table.h"

using namespace splice;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  Graph g;
  std::string label;
  try {
    if (!flags.positional().empty()) {
      label = flags.positional().front();
      g = load_topology(label);
    } else {
      label = flags.get_string("topo", "geant");
      g = topo::by_name(label);
    }
  } catch (const std::exception& e) {
    std::cerr << "failed to load topology: " << e.what() << "\n";
    return 1;
  }

  // Structural census.
  const TopologyStats stats = topology_stats(g);
  std::cout << "== " << label << " ==\n";
  Table props({"property", "value"});
  props.add_row({"nodes", fmt_int(stats.nodes)});
  props.add_row({"links", fmt_int(stats.edges)});
  props.add_row({"avg degree", fmt_double(stats.avg_degree, 2)});
  props.add_row({"min/max degree", fmt_int(stats.min_degree) + " / " +
                                       fmt_int(stats.max_degree)});
  props.add_row({"connected", stats.connected ? "yes" : "NO"});
  props.add_row({"edge connectivity", fmt_int(stats.edge_connectivity)});
  props.add_row({"weighted diameter", fmt_double(stats.diameter, 1)});
  props.add_row({"hop diameter", fmt_int(stats.hop_diameter)});
  props.print(std::cout);

  if (!stats.connected) {
    std::cerr << "\ntopology is disconnected; splicing analysis requires a "
                 "connected base graph\n";
    return 1;
  }
  if (stats.edge_connectivity < 2) {
    std::cout << "\nnote: edge connectivity 1 — bridge links bound the "
                 "reliability any routing scheme can achieve (Figure 1's "
                 "cut argument)\n";
  }

  // Figure 3 pipeline on this topology.
  ReliabilityConfig rel;
  rel.k_values = {1, 2, 5};
  rel.p_values = {0.01, 0.03, 0.05, 0.1};
  rel.trials = static_cast<int>(flags.get_int("trials", 200));
  rel.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  std::cout << "\nreliability (fraction of pairs disconnected, "
            << rel.trials << " trials):\n\n";
  const auto curves = run_reliability_experiment(g, rel);
  Table table({"p", "k=1", "k=2", "k=5", "best possible"});
  for (std::size_t pi = 0; pi < rel.p_values.size(); ++pi) {
    std::vector<std::string> row{fmt_double(rel.p_values[pi], 2)};
    for (std::size_t ki = 0; ki < rel.k_values.size(); ++ki) {
      row.push_back(fmt_double(
          curves.points[pi * rel.k_values.size() + ki].mean_disconnected, 4));
    }
    row.push_back(fmt_double(curves.best_possible[pi].mean_disconnected, 4));
    table.add_row(row);
  }
  table.print(std::cout);

  // §4.3 recovery scalars.
  RecoveryExperimentConfig rec;
  rec.k_values = {static_cast<SliceId>(flags.get_int("slices", 5))};
  rec.p_values = {0.05};
  rec.trials = std::max(5, static_cast<int>(flags.get_int("trials", 200)) / 8);
  rec.seed = rel.seed;
  const auto points = run_recovery_experiment(g, rec);
  std::cout << "\nrecovery at p=0.05, k=" << rec.k_values[0] << ": "
            << "unrecovered " << fmt_percent(points[0].frac_unrecovered)
            << ", mean trials " << fmt_double(points[0].mean_trials, 2)
            << ", stretch " << fmt_double(points[0].mean_stretch, 2)
            << ", hop inflation "
            << fmt_double(points[0].mean_hop_inflation, 2) << "\n";
  return 0;
}
