// Load balancing (§5 "interactions with traffic engineering"): path
// splicing spreads traffic across the network even without failures when
// sources pick their initial slice by Hash(src, dst) (Algorithm 1). This
// example routes a uniform all-pairs demand matrix three ways and compares
// per-link utilization:
//   (a) single shortest path (k = 1),
//   (b) splicing with hash-spread initial slices,
//   (c) splicing with fully random per-hop headers.
//
//   ./load_balancing --topo=sprint --slices=5
#include <algorithm>
#include <iostream>
#include <vector>

#include "splicing/splicer.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

using namespace splice;

namespace {

/// Routes one unit of demand per ordered pair; returns per-link load.
std::vector<double> route_demands(const Splicer& splicer, int mode, Rng& rng) {
  const Graph& g = splicer.graph();
  std::vector<double> load(static_cast<std::size_t>(g.edge_count()), 0.0);
  for (NodeId src = 0; src < g.node_count(); ++src) {
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      if (src == dst) continue;
      SpliceHeader header;
      switch (mode) {
        case 0:  // single shortest path
          header = splicer.make_pinned_header(0);
          break;
        case 1:  // hash-spread: empty header, Algorithm 1 default slice
          header = SpliceHeader{};
          break;
        case 2:  // random per-hop slices
          header = splicer.make_random_header(rng);
          break;
        default:
          break;
      }
      const Delivery d = splicer.send(src, dst, header);
      if (!d.delivered()) continue;
      for (const HopRecord& hop : d.hops) {
        load[static_cast<std::size_t>(hop.edge)] += 1.0;
      }
    }
  }
  return load;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  SplicerConfig cfg;
  cfg.slices = static_cast<SliceId>(flags.get_int("slices", 5));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Splicer splicer(topo::by_name(flags.get_string("topo", "sprint")),
                        cfg);
  Rng rng(cfg.seed ^ 0x10ad);

  std::cout << "uniform all-pairs demand on "
            << flags.get_string("topo", "sprint") << ", k=" << cfg.slices
            << "\n\n";

  Table table({"routing mode", "max link load", "mean load", "p95 load",
               "stddev", "max/mean (imbalance)"});
  const char* names[] = {"single shortest path (k=1)",
                         "splicing, hash-spread slices",
                         "splicing, random headers"};
  double imbalance[3] = {0, 0, 0};
  for (int mode = 0; mode < 3; ++mode) {
    const auto load = route_demands(splicer, mode, rng);
    const SampleSummary s = summarize(load);
    imbalance[mode] = s.max / std::max(1.0, s.mean);
    table.add_row({names[mode], fmt_double(s.max, 0), fmt_double(s.mean, 1),
                   fmt_double(s.p95, 0), fmt_double(s.stddev, 1),
                   fmt_double(imbalance[mode], 2)});
  }
  table.print(std::cout);

  // Spliced paths are slightly longer than shortest paths, so total carried
  // load (the mean column) rises; the relevant metric is how evenly that
  // load spreads, i.e. the max/mean imbalance ratio.
  std::cout << "\nload imbalance (max/mean): single path "
            << fmt_double(imbalance[0], 2) << " -> splicing "
            << fmt_double(imbalance[1], 2) << " (hash-spread), "
            << fmt_double(imbalance[2], 2) << " (random headers)\n"
            << "§5: \"this 'automatic' load balancing might mitigate the "
               "need for tuning that is necessary with today's routing "
               "protocols\"\n";
  return 0;
}
