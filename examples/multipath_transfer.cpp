// Multipath bulk transfer (§5 "other applications"): instead of reacting
// to failures, deliberately stripe one flow across several spliced paths
// at once. Uses the path enumerator to find link-disjoint spliced paths,
// synthesizes the forwarding-bit header for each (the Algorithm 1
// inverse), and compares aggregate capacity against the single-path
// baseline and the graph's max-flow ceiling.
//
//   ./multipath_transfer --topo=sprint --slices=8 --src=Seattle --dst=Miami
#include <algorithm>
#include <iostream>
#include <vector>

#include "graph/maxflow.h"
#include "splicing/metrics.h"
#include "splicing/path_enum.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/table.h"

using namespace splice;

namespace {

/// Greedy link-disjoint selection from the enumerated candidates.
std::vector<std::vector<NodeId>> pick_disjoint(
    const Graph& g, const std::vector<std::vector<NodeId>>& candidates) {
  std::vector<std::vector<NodeId>> chosen;
  std::vector<char> used(static_cast<std::size_t>(g.edge_count()), 0);
  for (const auto& path : candidates) {
    bool clash = false;
    std::vector<EdgeId> edges;
    for (std::size_t i = 0; i + 1 < path.size() && !clash; ++i) {
      const EdgeId e = g.find_edge(path[i], path[i + 1]);
      clash = e == kInvalidEdge || used[static_cast<std::size_t>(e)];
      edges.push_back(e);
    }
    if (clash) continue;
    for (EdgeId e : edges) used[static_cast<std::size_t>(e)] = 1;
    chosen.push_back(path);
  }
  return chosen;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  SplicerConfig cfg;
  cfg.slices = static_cast<SliceId>(flags.get_int("slices", 8));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Splicer splicer(topo::by_name(flags.get_string("topo", "sprint")),
                        cfg);
  const Graph& g = splicer.graph();

  const NodeId src = flags.has("src")
                         ? g.find_node(flags.get_string("src", ""))
                         : g.find_node("Seattle");
  const NodeId dst = flags.has("dst")
                         ? g.find_node(flags.get_string("dst", ""))
                         : g.find_node("Miami");
  if (src == kInvalidNode || dst == kInvalidNode) {
    std::cerr << "unknown --src/--dst node name\n";
    return 1;
  }
  std::cout << "striping " << g.name(src) << " -> " << g.name(dst)
            << " across spliced paths (k=" << cfg.slices << ")\n\n";

  // Enumerate candidates, shortest (fewest hops) first, then greedily pick
  // a link-disjoint subset.
  PathEnumOptions opts;
  opts.max_paths = 2000;
  auto candidates = enumerate_spliced_paths(splicer, src, dst, opts);
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  const auto disjoint = pick_disjoint(g, candidates);

  const ShortestPathOracle oracle(g);
  Table table({"subflow", "path", "hops", "stretch"});
  int idx = 0;
  for (const auto& path : disjoint) {
    const auto header = header_for_path(splicer, path);
    if (!header.has_value()) continue;
    // Verify the header really realizes the path before advertising it.
    const Delivery d = splicer.send(src, dst, *header);
    if (!d.delivered() || d.hops.size() + 1 != path.size()) continue;
    std::string pretty = g.name(path.front());
    for (std::size_t i = 1; i < path.size(); ++i)
      pretty += ">" + g.name(path[i]);
    double cost = 0.0;
    for (const HopRecord& hop : d.hops) cost += g.edge(hop.edge).weight;
    table.add_row({fmt_int(++idx), pretty,
                   fmt_int(static_cast<long long>(path.size() - 1)),
                   fmt_double(cost / oracle.distance(src, dst), 2)});
  }
  table.print(std::cout);

  const int ceiling = pair_edge_connectivity(g, src, dst);
  std::cout << "\nconcurrent link-disjoint subflows: " << idx
            << " (single-path routing: 1; graph max-flow ceiling: "
            << ceiling << ")\n"
            << "§5: hosts \"achieve throughput that approaches the capacity "
               "of the underlying graph\" by splicing disjoint paths "
               "simultaneously.\n";
  return idx > 1 ? 0 : 1;
}
