// Interdomain splicing walk-through (§5): build a small Internet-like AS
// hierarchy, run Gao-Rexford BGP with k-route FIBs, inspect the installed
// routes of a multihomed AS, then fail its primary provider link and show
// both recovery flavors — end-system bit re-randomization and in-network
// deflection — reaching the destination over the backup provider.
//
//   ./interdomain_splicing [--k=3] [--seed=1]
#include <iostream>

#include "interdomain/as_graph.h"
#include "interdomain/bgp.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace splice;

namespace {

const char* kind_name(NeighborKind k) {
  switch (k) {
    case NeighborKind::kCustomer:
      return "customer";
    case NeighborKind::kPeer:
      return "peer";
    case NeighborKind::kProvider:
      return "provider";
  }
  return "?";
}

void print_path(const std::vector<AsId>& path) {
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::cout << (i ? " -> " : "  ") << "AS" << path[i];
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  AsHierarchyConfig hcfg;
  hcfg.tier1 = 3;
  hcfg.tier2 = 8;
  hcfg.stubs = 16;
  hcfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const AsGraph g = make_as_hierarchy(hcfg);
  const auto k = static_cast<SliceId>(flags.get_int("k", 3));
  const BgpSplicer bgp(g, BgpConfig{k, 0});

  std::cout << "AS-level Internet: " << g.as_count() << " ASes, "
            << g.link_count() << " links; k=" << k
            << " routes installed per destination\n\n";

  // Pick a multihomed stub and a destination stub far away.
  const AsId src = g.as_count() - 1;
  const AsId dst = g.as_count() - static_cast<AsId>(hcfg.stubs);
  std::cout << "flow: AS" << src << " (stub) -> AS" << dst << " (stub)\n\n";

  std::cout << "installed routes at AS" << src << ":\n";
  for (const BgpRoute& r : bgp.routes(src, dst)) {
    std::cout << "  via AS" << r.next_hop << " (" << kind_name(r.learned_from)
              << "-learned, " << r.path_length() << " AS hops)\n";
  }

  const auto primary = bgp.forward(src, dst, SpliceHeader{});
  if (!primary) {
    std::cout << "no route (policy disconnects the pair)\n";
    return 1;
  }
  std::cout << "\nprimary (classic BGP best) path:\n";
  print_path(*primary);

  // Fail the first AS link of the primary path.
  std::vector<char> alive(static_cast<std::size_t>(g.link_count()), 1);
  const auto& routes = bgp.routes(src, dst);
  alive[static_cast<std::size_t>(routes.front().via_link)] = 0;
  std::cout << "\nfailing the primary provider link of AS" << src << "\n";
  std::cout << "classic BGP before reconvergence: "
            << (bgp.forward(src, dst, SpliceHeader{}, alive) ? "delivered (?)"
                                                             : "DEAD END")
            << "\n";

  // End-system recovery: random forwarding bits.
  Rng rng(hcfg.seed ^ 0xe55);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const auto header = SpliceHeader::random(k, 20, rng);
    if (const auto path = bgp.forward(src, dst, header, alive)) {
      std::cout << "\nrecovered with random forwarding bits on attempt "
                << attempt << ":\n";
      print_path(*path);
      break;
    }
  }

  // Network-based recovery: the AS deflects to another installed route.
  if (const auto path =
          bgp.forward(src, dst, SpliceHeader{}, alive, /*deflect=*/true)) {
    std::cout << "\nin-network deflection path:\n";
    print_path(*path);
  }

  std::cout << "\n§5: \"a spliced BGP would provide end systems access to "
               "multiple interdomain paths without requiring any additional "
               "communication among BGP routers.\"\n";
  return 0;
}
