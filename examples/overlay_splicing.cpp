// Overlay splicing (§5 "other applications"): apply path splicing to a
// RON-style overlay. A subset of underlay nodes form a full-mesh overlay
// whose virtual-link weights are the measured underlay latencies. When
// underlay failures break a virtual link's measured path, the link is down
// until the overlay re-probes — and overlay splicing recovers inside that
// window by deflecting across other overlay nodes, with zero probe traffic.
//
//   ./overlay_splicing --topo=sprint --overlay-size=12 --slices=4 --p=0.08
#include <iostream>

#include "overlay/overlay.h"
#include "sim/failure.h"
#include "splicing/recovery.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/table.h"

using namespace splice;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Graph underlay = topo::by_name(flags.get_string("topo", "sprint"));
  const auto overlay_size =
      static_cast<std::size_t>(flags.get_int("overlay-size", 12));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const OverlayMapping mapping =
      build_overlay(underlay, pick_overlay_members(underlay, overlay_size));
  std::cout << "overlay of " << mapping.overlay.node_count() << " nodes / "
            << mapping.overlay.edge_count() << " virtual links over "
            << flags.get_string("topo", "sprint") << "\n\n";

  // Overlay splicer on the intact latencies. The overlay is a clique, so
  // all degree sums are equal and degree-based perturbation degenerates to
  // a constant; use a strong uniform perturbation instead so slices
  // actually discover relay routes that beat the direct virtual link.
  SplicerConfig cfg;
  cfg.slices = static_cast<SliceId>(flags.get_int("slices", 4));
  cfg.seed = seed;
  cfg.perturbation = {PerturbationKind::kUniform, 0.0,
                      flags.get_double("b", 6.0)};
  Splicer overlay_splicer(Graph(mapping.overlay), cfg);

  // Fail underlay links; RON semantics mark the virtual links whose
  // measured path broke as down until the next re-probe.
  Rng rng(seed ^ 0x0e1a11);
  const double p = flags.get_double("p", 0.08);
  const auto underlay_alive = sample_alive_mask(underlay.edge_count(), p, rng);
  const auto vlink_alive =
      virtual_link_liveness(underlay, mapping, underlay_alive);
  int dead_vlinks = 0;
  for (char a : vlink_alive) dead_vlinks += a ? 0 : 1;
  overlay_splicer.network().set_link_mask(vlink_alive);
  std::cout << "underlay failure p=" << p << " kills " << dead_vlinks << "/"
            << mapping.overlay.edge_count() << " virtual links\n\n";

  // Compare direct virtual link vs spliced overlay recovery for all pairs,
  // with both the end-system and the in-network scheme.
  long long broken_direct = 0;
  long long unrecovered_es = 0;
  long long unrecovered_net = 0;
  long long pairs = 0;
  Rng rec_rng(seed ^ 0x42);
  RecoveryConfig net_cfg;
  net_cfg.scheme = RecoveryScheme::kNetworkDeflection;
  for (NodeId s = 0; s < overlay_splicer.graph().node_count(); ++s) {
    for (NodeId t = 0; t < overlay_splicer.graph().node_count(); ++t) {
      if (s == t) continue;
      ++pairs;
      const RecoveryResult es = attempt_recovery(
          overlay_splicer.network(), s, t, RecoveryConfig{}, rec_rng);
      const RecoveryResult nw = attempt_recovery(
          overlay_splicer.network(), s, t, net_cfg, rec_rng);
      broken_direct += es.initially_connected ? 0 : 1;
      unrecovered_es += es.delivered ? 0 : 1;
      unrecovered_net += nw.delivered ? 0 : 1;
    }
  }

  Table table({"metric", "value"});
  table.add_row({"overlay pairs", fmt_int(pairs)});
  table.add_row({"pairs with broken primary overlay path",
                 fmt_int(broken_direct)});
  table.add_row({"pairs unrecovered (end-system splicing)",
                 fmt_int(unrecovered_es)});
  table.add_row({"pairs unrecovered (network deflection)",
                 fmt_int(unrecovered_net)});
  table.print(std::cout);

  // What re-probing would eventually restore, for context.
  const OverlayMapping reprobed =
      reprobe_overlay(underlay, mapping, underlay_alive);
  std::cout << "\nafter a full re-probe the overlay would have "
            << reprobed.overlay.edge_count() << "/"
            << mapping.overlay.edge_count()
            << " virtual links again — splicing bridges the gap without "
               "waiting for it.\n"
            << "§5: \"Applying path splicing to overlay routes may improve "
               "fault tolerance and capacity.\"\n";
  return 0;
}
