// Control-plane microbenchmarks (google-benchmark): per-slice SPT
// construction, k-instance control-plane builds, FIB materialization and
// spliced-union reliability queries — the costs paid at (re)configuration
// time, which the paper argues grow only linearly in k.
#include <benchmark/benchmark.h>

#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "splicing/reliability.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"

namespace splice {
namespace {

void BM_SingleSliceSptBuild(benchmark::State& state) {
  const Graph g = topo::sprint();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoutingInstance(g, g.weights()));
  }
}
BENCHMARK(BM_SingleSliceSptBuild);

void BM_ControlPlaneBuild(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  const Graph g = topo::sprint();
  ControlPlaneConfig cfg;
  cfg.slices = k;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiInstanceRouting(g, cfg));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_ControlPlaneBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Complexity(
    benchmark::oN);

void BM_FibMaterialization(benchmark::State& state) {
  const Graph g = topo::sprint();
  ControlPlaneConfig cfg;
  cfg.slices = 5;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  const MultiInstanceRouting mir(g, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mir.build_fibs());
  }
}
BENCHMARK(BM_FibMaterialization);

void BM_SplicerFullBuild(benchmark::State& state) {
  for (auto _ : state) {
    SplicerConfig cfg;
    cfg.slices = 5;
    benchmark::DoNotOptimize(Splicer(topo::sprint(), cfg));
  }
}
BENCHMARK(BM_SplicerFullBuild);

void BM_ReliabilityTrial(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  const Graph g = topo::sprint();
  ControlPlaneConfig cfg;
  cfg.slices = k;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  const MultiInstanceRouting mir(g, cfg);
  const SplicedReliabilityAnalyzer analyzer(g, mir);
  Rng rng(1);
  for (auto _ : state) {
    const auto alive = sample_alive_mask(g.edge_count(), 0.05, rng);
    benchmark::DoNotOptimize(analyzer.disconnected_pairs(k, alive));
  }
}
BENCHMARK(BM_ReliabilityTrial)->Arg(1)->Arg(5)->Arg(10);

void BM_PerturbationDraw(benchmark::State& state) {
  const Graph g = topo::sprint();
  const PerturbationConfig cfg{PerturbationKind::kDegreeBased, 0.0, 3.0};
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturb_weights(g, cfg, rng));
  }
}
BENCHMARK(BM_PerturbationDraw);

}  // namespace
}  // namespace splice

BENCHMARK_MAIN();
