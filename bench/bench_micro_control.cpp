// Control-plane microbenchmarks: per-slice SPT construction, k-instance
// control-plane builds, FIB materialization and spliced-union reliability
// queries — the costs paid at (re)configuration time, which the paper
// argues grow only linearly in k.
//
// Two modes, like bench_micro_dataplane:
//   * default             — google-benchmark suite (BM_* below);
//   * --json=PATH [...]   — self-contained compare mode: serial-vs-parallel
//                           slice builds, FIB materialization, incremental
//                           repair vs full rebuild, analyzer CSR build; each
//                           row carries a table checksum so the perf gate
//                           also re-verifies bit-identical results.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>

#include "bench_common.h"
#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "splicing/reliability.h"
#include "splicing/splicer.h"
#include "topo/datasets.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace splice {
namespace {

void BM_SingleSliceSptBuild(benchmark::State& state) {
  const Graph g = topo::sprint();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoutingInstance(g, g.weights()));
  }
}
BENCHMARK(BM_SingleSliceSptBuild);

void BM_ControlPlaneBuild(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  const Graph g = topo::sprint();
  ControlPlaneConfig cfg;
  cfg.slices = k;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiInstanceRouting(g, cfg));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_ControlPlaneBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Complexity(
    benchmark::oN);

void BM_FibMaterialization(benchmark::State& state) {
  const Graph g = topo::sprint();
  ControlPlaneConfig cfg;
  cfg.slices = 5;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  const MultiInstanceRouting mir(g, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mir.build_fibs());
  }
}
BENCHMARK(BM_FibMaterialization);

void BM_SplicerFullBuild(benchmark::State& state) {
  for (auto _ : state) {
    SplicerConfig cfg;
    cfg.slices = 5;
    benchmark::DoNotOptimize(Splicer(topo::sprint(), cfg));
  }
}
BENCHMARK(BM_SplicerFullBuild);

void BM_ReliabilityTrial(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  const Graph g = topo::sprint();
  ControlPlaneConfig cfg;
  cfg.slices = k;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  const MultiInstanceRouting mir(g, cfg);
  const SplicedReliabilityAnalyzer analyzer(g, mir);
  Rng rng(1);
  for (auto _ : state) {
    const auto alive = sample_alive_mask(g.edge_count(), 0.05, rng);
    benchmark::DoNotOptimize(analyzer.disconnected_pairs(k, alive));
  }
}
BENCHMARK(BM_ReliabilityTrial)->Arg(1)->Arg(5)->Arg(10);

void BM_PerturbationDraw(benchmark::State& state) {
  const Graph g = topo::sprint();
  const PerturbationConfig cfg{PerturbationKind::kDegreeBased, 0.0, 3.0};
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturb_weights(g, cfg, rng));
  }
}
BENCHMARK(BM_PerturbationDraw);

/// FNV-ish digest over every slice's next-hop/next-edge tables — equal
/// digests mean bit-identical forwarding state.
std::uint64_t fib_tables_checksum(const MultiInstanceRouting& mir) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  const NodeId n = mir.slice(0).node_count();
  for (SliceId s = 0; s < mir.slice_count(); ++s) {
    const RoutingInstance& inst = mir.slice(s);
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (v == dst) continue;
        h = hash_mix(h, static_cast<std::uint64_t>(inst.next_hop(v, dst)),
                     static_cast<std::uint64_t>(inst.next_hop_edge(v, dst)));
      }
    }
  }
  return h;
}

std::uint64_t fibset_checksum(const FibSet& fibs, NodeId n) {
  std::uint64_t h = 0x452821e638d01377ULL;
  for (SliceId s = 0; s < fibs.slice_count(); ++s) {
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (v == dst) continue;
        const FibEntry e = fibs.lookup(s, v, dst);
        h = hash_mix(h, static_cast<std::uint64_t>(e.next_hop),
                     static_cast<std::uint64_t>(e.edge));
      }
    }
  }
  return h;
}

/// Digest of analyzer answers over a deterministic mask set: covers the CSR
/// build *and* the first-k truncated reach queries.
std::uint64_t analyzer_checksum(const Graph& g,
                                const SplicedReliabilityAnalyzer& analyzer,
                                SliceId k_max, std::uint64_t seed) {
  std::uint64_t h = 0x13198a2e03707344ULL;
  Rng rng(seed);
  for (int m = 0; m < 4; ++m) {
    const auto alive = sample_alive_mask(g.edge_count(), 0.08, rng);
    for (SliceId k = 1; k <= k_max; ++k) {
      h = hash_mix(h, static_cast<std::uint64_t>(
                          analyzer.disconnected_pairs(k, alive)),
                   static_cast<std::uint64_t>(k));
    }
  }
  return h;
}

/// Checksums render as "x"-prefixed hex strings: the prefix keeps
/// bench_common's json_cell from treating them as numbers (strtod would
/// parse "0x..." as a C99 hex float), so they emit as quoted strings and
/// key the perf-gate rows exactly.
std::string fmt_checksum(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Minimum over `reps` timed runs — the usual low-noise estimator for
/// gate-stable microbench numbers.
template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const bench::Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsed_ms());
  }
  return best;
}

int run_control_compare(const Flags& flags) {
  bench::trace_from_flags(flags);
  bench::obs_from_flags(flags);
  const bench::Stopwatch wall;
  const Graph g = bench::load_topology_flag(flags);
  const auto k = static_cast<SliceId>(flags.get_int("k", 8));
  const int reps = static_cast<int>(flags.get_int("reps", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const int hw = default_thread_count();

  ControlPlaneConfig cfg;
  cfg.slices = k;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  cfg.seed = seed;

  // --- slice_build: identical weight draws, 1 worker vs all of them. -----
  ControlPlaneConfig cfg1 = cfg;
  cfg1.threads = 1;
  ControlPlaneConfig cfgn = cfg;
  cfgn.threads = hw;
  const double serial_ms = best_ms(reps, [&] {
    const MultiInstanceRouting mir(g, cfg1);
    benchmark::DoNotOptimize(&mir);
  });
  const double parallel_ms = best_ms(reps, [&] {
    const MultiInstanceRouting mir(g, cfgn);
    benchmark::DoNotOptimize(&mir);
  });
  const MultiInstanceRouting mir1(g, cfg1);
  const MultiInstanceRouting mirn(g, cfgn);
  const std::uint64_t build_sum1 = fib_tables_checksum(mir1);
  const std::uint64_t build_sumn = fib_tables_checksum(mirn);
  if (build_sum1 != build_sumn) {
    std::cerr << "FATAL: parallel slice build diverged from serial\n";
    return EXIT_FAILURE;
  }

  // --- fib_build: FibSet materialization from the built instances. -------
  const double fib_ms = best_ms(reps, [&] {
    const FibSet fibs = mirn.build_fibs();
    benchmark::DoNotOptimize(&fibs);
  });
  const std::uint64_t fib_sum =
      fibset_checksum(mirn.build_fibs(), g.node_count());

  // --- repair: one link-weight event, incremental vs full rebuild. -------
  // A weight *drop* pulls shortest paths onto the edge, so the repair has
  // real work to do in every slice (an increase on an unused edge is free).
  const EdgeId event_edge = g.edge_count() / 2;
  const Weight new_weight = g.edge(event_edge).weight * 0.25;
  std::vector<std::vector<Weight>> rebuilt_weights;
  rebuilt_weights.reserve(static_cast<std::size_t>(k));
  for (SliceId s = 0; s < k; ++s) {
    const auto w = mir1.slice(s).weights();
    rebuilt_weights.emplace_back(w.begin(), w.end());
    rebuilt_weights.back()[static_cast<std::size_t>(event_edge)] = new_weight;
  }
  const double rebuild_ms = best_ms(reps, [&] {
    auto weights = rebuilt_weights;
    const MultiInstanceRouting rebuilt(g, std::move(weights), 1);
    benchmark::DoNotOptimize(&rebuilt);
  });
  double repair_ms = 1e300;
  std::uint64_t repair_sum = 0;
  for (int r = 0; r < reps; ++r) {
    MultiInstanceRouting repaired = mir1;
    const bench::Stopwatch sw;
    repaired.apply_edge_event(event_edge, new_weight);
    repair_ms = std::min(repair_ms, sw.elapsed_ms());
    repair_sum = fib_tables_checksum(repaired);
  }
  const MultiInstanceRouting rebuilt(
      g, std::vector<std::vector<Weight>>(rebuilt_weights), 1);
  const std::uint64_t rebuild_sum = fib_tables_checksum(rebuilt);
  if (repair_sum != rebuild_sum) {
    std::cerr << "FATAL: incremental repair diverged from full rebuild\n";
    return EXIT_FAILURE;
  }

  // --- analyzer_build: spliced-union CSR construction + probe queries. ---
  const double analyzer_ms = best_ms(reps, [&] {
    const SplicedReliabilityAnalyzer analyzer(g, mirn);
    benchmark::DoNotOptimize(&analyzer);
  });
  const SplicedReliabilityAnalyzer analyzer(g, mirn);
  const std::uint64_t analyzer_sum = analyzer_checksum(g, analyzer, k, seed);

  Table table({"phase", "impl", "threads", "ms", "checksum", "speedup"});
  table.add_row({"slice_build", "serial", "1", fmt_double(serial_ms, 3),
                 fmt_checksum(build_sum1), "1.00"});
  // threads cell is the literal "hw" so the row key is machine-stable.
  table.add_row({"slice_build", "parallel", "hw", fmt_double(parallel_ms, 3),
                 fmt_checksum(build_sumn),
                 fmt_double(serial_ms / parallel_ms, 2)});
  table.add_row({"fib_build", "loop", "1", fmt_double(fib_ms, 3),
                 fmt_checksum(fib_sum), ""});
  table.add_row({"repair", "rebuild", "1", fmt_double(rebuild_ms, 3),
                 fmt_checksum(rebuild_sum), "1.00"});
  table.add_row({"repair", "incremental", "1", fmt_double(repair_ms, 3),
                 fmt_checksum(repair_sum),
                 fmt_double(rebuild_ms / repair_ms, 2)});
  table.add_row({"analyzer_build", "csr", "1", fmt_double(analyzer_ms, 3),
                 fmt_checksum(analyzer_sum), ""});

  bench::BenchMeta meta;
  meta.bench = "bench_micro_control/control_compare";
  meta.topo = flags.get_string("topo", "sprint");
  meta.params = "k=" + std::to_string(k) + " reps=" + std::to_string(reps) +
                " seed=" + std::to_string(seed) +
                " hw_threads=" + std::to_string(hw);
  meta.wall_ms = wall.elapsed_ms();
  bench::emit(flags, table, meta);
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--json", 0) == 0) {
      return splice::run_control_compare(splice::Flags(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
