// Correlated-failure robustness check: the paper's evaluation fails links
// independently (§4.1). Real outages are correlated — a conduit cut or PoP
// power event takes several links at once. This bench re-runs the Figure 3
// comparison under a shared-risk (SRLG) model where all links incident to
// a PoP can fail together, quantifying how much of splicing's advantage
// survives correlation.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "graph/connectivity.h"
#include "routing/multi_instance.h"
#include "sim/failure.h"
#include "splicing/reliability.h"
#include "util/stats.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const int trials = static_cast<int>(flags.get_int("trials", 400));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const SliceId k_max = 10;
  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k_max, bench::perturbation_from_flags(flags),
                            seed, false});
  const SplicedReliabilityAnalyzer analyzer(g, mir);
  const SrlgModel srlg = srlg_by_shared_endpoint(g);

  bench::banner("Correlated (SRLG) failures",
                "robustness check beyond §4.1's independent-failure model");
  std::cout << "topology=" << flags.get_string("topo", "sprint")
            << " srlg groups=" << srlg.groups.size() << " trials=" << trials
            << "\n\n";

  Table table({"model", "k=1", "k=5", "k=10", "best possible",
               "shortfall closed @k=10"});
  struct Model {
    const char* label;
    double group_p;
    double independent_p;
  };
  // Calibrated so each row's *expected failed links* is comparable.
  const Model models[] = {
      {"independent p=0.03", 0.0, 0.03},
      {"mixed (srlg 0.005 + ind 0.015)", 0.005, 0.015},
      {"correlated (srlg 0.01)", 0.01, 0.0},
  };
  for (const Model& m : models) {
    OnlineStats k1;
    OnlineStats k5;
    OnlineStats k10;
    OnlineStats best;
    Rng rng(seed ^ 0xc0441);
    for (int t = 0; t < trials; ++t) {
      const auto alive =
          sample_srlg_mask(g, srlg, m.group_p, m.independent_p, rng);
      k1.add(analyzer.disconnected_fraction(1, alive));
      k5.add(analyzer.disconnected_fraction(5, alive));
      k10.add(analyzer.disconnected_fraction(10, alive));
      best.add(static_cast<double>(disconnected_ordered_pairs(g, alive)) /
               static_cast<double>(total_ordered_pairs(g)));
    }
    const double shortfall =
        k1.mean() - best.mean() > 0
            ? 1.0 - (k10.mean() - best.mean()) / (k1.mean() - best.mean())
            : 1.0;
    table.add_row({m.label, fmt_double(k1.mean(), 5),
                   fmt_double(k5.mean(), 5), fmt_double(k10.mean(), 5),
                   fmt_double(best.mean(), 5), fmt_percent(shortfall)});
  }
  bench::emit(flags, table);
  std::cout << "\nreading: under PoP-level correlated failures much of the "
               "damage is *physical* (whole nodes cut off), which no routing "
               "scheme can mask — splicing still closes most of the gap "
               "between single-path routing and that physical floor.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
