// Ablation (§5 "alternate recovery mechanisms"): compares every recovery
// scheme the paper evaluates or proposes — coin-flip, fresh-random,
// first-hop-biased, no-revisit, bounded-switch, counter header and
// in-network deflection — on identical failure sets.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int trials = static_cast<int>(flags.get_int("trials", 40));
  const double p = flags.get_double("p", 0.05);
  const SliceId k = static_cast<SliceId>(flags.get_int("k", 5));

  bench::banner("Recovery-scheme ablation",
                "§4.3 schemes plus the §5 proposals, identical failure sets");
  std::cout << "k=" << k << " p=" << p << " trials=" << trials
            << " retry budget 5\n\n";

  Table table({"scheme", "unrecovered", "reliability_bound", "mean_trials",
               "mean_stretch", "two_hop_loops"});
  for (const auto scheme :
       {RecoveryScheme::kEndSystemCoinFlip, RecoveryScheme::kEndSystemFresh,
        RecoveryScheme::kEndSystemFirstHopBiased,
        RecoveryScheme::kEndSystemNoRevisit,
        RecoveryScheme::kEndSystemBoundedSwitches,
        RecoveryScheme::kEndSystemCounter,
        RecoveryScheme::kNetworkDeflection}) {
    RecoveryExperimentConfig cfg;
    cfg.k_values = {k};
    cfg.p_values = {p};
    cfg.trials = trials;
    cfg.seed = seed;  // identical failure sets across schemes
    cfg.perturbation = bench::perturbation_from_flags(flags);
    cfg.recovery.scheme = scheme;
    const auto points = run_recovery_experiment(g, cfg);
    for (const auto& pt : points) {
      table.add_row({to_string(scheme), fmt_double(pt.frac_unrecovered, 5),
                     fmt_double(pt.frac_disconnected, 5),
                     fmt_double(pt.mean_trials, 2),
                     fmt_double(pt.mean_stretch, 3),
                     fmt_double(pt.two_hop_loop_rate, 4)});
    }
  }
  bench::emit(flags, table);
  std::cout << "\nreading: the reliability_bound column is the same for all "
               "end-system schemes (identical failure sets); differences in "
               "'unrecovered' isolate the scheme's search effectiveness. "
               "network-deflection needs no retries but can dead-end.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
