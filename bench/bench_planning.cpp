// Deployment-planning report: link criticality ranking (residual single
// points of failure under splicing — Figure 1's cut argument, quantified
// per link) and the slice-budget advisor ("how many slices for X%
// reliability at my design failure rate?").
#include <cstdlib>
#include <iostream>

#include "analysis/advisor.h"
#include "bench_common.h"
#include "util/parallel.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto k = static_cast<SliceId>(flags.get_int("k", 5));

  bench::banner("Planning report",
                "link criticality under splicing + slice-budget advice");

  ControlPlaneConfig ccfg;
  ccfg.slices = k;
  ccfg.perturbation = bench::perturbation_from_flags(flags);
  ccfg.seed = seed;
  const MultiInstanceRouting mir(g, ccfg);

  std::cout << "Top-10 critical links (single-link failures, k=" << k
            << "):\n\n";
  Table crit({"link", "pairs cut (spliced)", "pairs cut (single path)",
              "pairs cut (physical floor)", "splicing gap"});
  const auto ranking = rank_link_criticality(g, mir, k);
  for (std::size_t i = 0; i < ranking.size() && i < 10; ++i) {
    const auto& c = ranking[i];
    const Edge& e = g.edge(c.edge);
    crit.add_row({g.name(e.u) + "--" + g.name(e.v),
                  fmt_int(c.pairs_cut_spliced),
                  fmt_int(c.pairs_cut_single_path),
                  fmt_int(c.pairs_cut_physical),
                  fmt_int(c.pairs_cut_spliced - c.pairs_cut_physical)});
  }
  bench::emit(flags, crit);

  SliceBudgetConfig bcfg;
  bcfg.target_disconnected = flags.get_double("target", 0.01);
  bcfg.p = flags.get_double("p", 0.03);
  bcfg.trials = static_cast<int>(flags.get_int("trials", 300));
  bcfg.max_k = static_cast<SliceId>(flags.get_int("max-k", 16));
  bcfg.perturbation = ccfg.perturbation;
  bcfg.seed = seed;
  bcfg.threads = static_cast<int>(
      flags.get_int("threads", default_thread_count()));
  const SliceBudgetResult budget = advise_slice_budget(g, bcfg);

  std::cout << "\nSlice budget for <= " << fmt_percent(bcfg.target_disconnected)
            << " disconnected pairs at p=" << bcfg.p << ":\n\n";
  Table curve({"k", "mean disconnected"});
  for (std::size_t i = 0; i < budget.per_k.size(); ++i) {
    curve.add_row({fmt_int(static_cast<long long>(i) + 1),
                   fmt_double(budget.per_k[i], 5)});
  }
  curve.print(std::cout);
  if (budget.k <= bcfg.max_k) {
    std::cout << "\nrecommended k = " << budget.k << " (achieves "
              << fmt_percent(budget.achieved) << "; best possible "
              << fmt_percent(budget.best_possible) << ")\n";
  } else {
    std::cout << "\ntarget unreachable within k <= " << bcfg.max_k
              << " (best possible at this p is "
              << fmt_percent(budget.best_possible)
              << "; the target is below the physical floor or needs more "
                 "slices)\n";
  }
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
