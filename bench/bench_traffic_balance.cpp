// §5 traffic experiments: (a) steady-state load balance across routing
// modes and demand models ("automatic load balancing"), and (b) the
// failure-shift dispersion experiment ("selfish-routing effects") — when a
// hot link fails and affected sources re-randomize, displaced traffic
// should spread out rather than pile onto one backup path.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "traffic/capacity.h"
#include "traffic/demand.h"
#include "traffic/load.h"

namespace splice {
namespace {

const char* mode_name(SliceSelection mode) {
  switch (mode) {
    case SliceSelection::kPinnedShortest:
      return "single-path";
    case SliceSelection::kHashSpread:
      return "hash-spread";
    case SliceSelection::kRandomHeaders:
      return "random-headers";
  }
  return "?";
}

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  SplicerConfig scfg;
  scfg.slices = static_cast<SliceId>(flags.get_int("k", 5));
  scfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  scfg.perturbation = bench::perturbation_from_flags(flags);
  Splicer splicer(Graph(g), scfg);
  Rng rng(scfg.seed ^ 0x7aff1c);

  bench::banner("Traffic balance and failure-shift dispersion",
                "§5 'interactions with traffic engineering' and "
                "'selfish-routing effects'");

  // (a) Steady-state balance.
  Table balance({"demand model", "routing mode", "max load", "mean load",
                 "imbalance(max/mean)", "undelivered"});
  struct Model {
    const char* name;
    TrafficMatrix tm;
  };
  Model models[] = {{"uniform", uniform_demands(g)},
                    {"gravity", gravity_demands(g)},
                    {"hotspot(4x10)", hotspot_demands(g, 4, 10.0, scfg.seed)}};
  for (const Model& model : models) {
    for (const auto mode :
         {SliceSelection::kPinnedShortest, SliceSelection::kHashSpread,
          SliceSelection::kRandomHeaders}) {
      const LinkLoads loads = route_demands(splicer, model.tm, mode, rng);
      const SampleSummary s = loads.summary();
      balance.add_row({model.name, mode_name(mode), fmt_double(s.max, 0),
                       fmt_double(s.mean, 1),
                       fmt_double(loads.imbalance(), 2),
                       fmt_double(loads.undelivered, 1)});
    }
  }
  bench::emit(flags, balance);

  // (b) Failure-shift dispersion: fail each of the 5 hottest links in turn.
  std::cout << "\nFailure-shift dispersion (uniform demands, single-path "
               "steady state, displaced flows re-randomize):\n\n";
  const TrafficMatrix tm = uniform_demands(g);
  const LinkLoads pinned =
      route_demands(splicer, tm, SliceSelection::kPinnedShortest, rng);
  std::vector<EdgeId> by_load(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    by_load[static_cast<std::size_t>(e)] = e;
  std::sort(by_load.begin(), by_load.end(), [&](EdgeId a, EdgeId b) {
    return pinned.load[static_cast<std::size_t>(a)] >
           pinned.load[static_cast<std::size_t>(b)];
  });

  Table shift({"failed link", "displaced demand", "lost", "concentration",
               "max link increase"});
  for (int i = 0; i < 5 && i < static_cast<int>(by_load.size()); ++i) {
    const EdgeId e = by_load[static_cast<std::size_t>(i)];
    const FailureShift fs = measure_failure_shift(
        splicer, tm, SliceSelection::kPinnedShortest, e, rng);
    shift.add_row({g.name(g.edge(e).u) + "--" + g.name(g.edge(e).v),
                   fmt_double(fs.displaced_demand, 0),
                   fmt_percent(fs.lost_fraction),
                   fmt_double(fs.concentration, 3),
                   fmt_double(fs.max_link_increase, 0)});
  }
  shift.print(std::cout);
  std::cout << "\nreading: concentration is a Herfindahl index over links "
               "(1 = all displaced demand on one backup link, 1/#links = "
               "perfect dispersion). Random re-randomization keeps it low — "
               "§5's argument that splicing disperses post-failure traffic.\n";

  // (c) Utilization spike: provision each mode at 2x headroom, fail the
  // hottest link, report the worst post-failure utilization.
  std::cout << "\nPost-failure utilization spike (provisioned at 2x "
               "headroom, hottest link fails):\n\n";
  Table spike({"steady-state mode", "max utilization after failure",
               "overloaded links", "undelivered demand"});
  for (const auto mode :
       {SliceSelection::kPinnedShortest, SliceSelection::kHashSpread,
        SliceSelection::kRandomHeaders}) {
    const UtilizationReport r = failure_utilization_spike(
        splicer, tm, mode, 2.0, by_load.front(), rng);
    spike.add_row({mode_name(mode), fmt_double(r.max_utilization, 2),
                   fmt_int(r.overloaded_links),
                   fmt_double(r.undelivered, 0)});
  }
  spike.print(std::cout);
  std::cout << "\nreading: steady utilization is 1/headroom = 0.50 in every "
               "mode by construction; the spike shows how hard the failure "
               "hits the worst link under each routing discipline.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
