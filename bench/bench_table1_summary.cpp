// Table 1: summary of the paper's three headline results, regenerated at
// reduced (configurable) trial counts:
//   1. Reliability approaches optimal (§4.2 / Fig. 3)
//   2. Recovery is fast — ~2 trials (§4.3 / Figs. 4, 5)
//   3. Loops are rare — ~1% two-hop loops at k=2 (§4.4)
#include <cstdlib>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "sim/experiments.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  bench::obs_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int trials = static_cast<int>(flags.get_int("trials", 120));

  bench::banner("Summary of results", "Table 1");

  // 1. Reliability approaches optimal.
  ReliabilityConfig rel;
  rel.k_values = {1, 10};
  rel.p_values = {0.05, 0.1};
  rel.trials = trials;
  rel.seed = seed;
  const auto curves = run_reliability_experiment(g, rel);
  std::map<std::pair<SliceId, double>, double> rel_by;
  for (const auto& pt : curves.points)
    rel_by[{pt.k, pt.p}] = pt.mean_disconnected;
  std::map<double, double> best_by;
  for (const auto& pt : curves.best_possible)
    best_by[pt.p] = pt.mean_disconnected;

  // 2+3. Recovery speed and loop rate.
  RecoveryExperimentConfig rec;
  rec.k_values = {2, 5};
  rec.p_values = {0.05};
  rec.trials = std::max(10, trials / 4);
  rec.seed = seed;
  const auto rec_points = run_recovery_experiment(g, rec);
  double mean_trials_k5 = 0.0;
  double loops_k2 = 0.0;
  for (const auto& pt : rec_points) {
    if (pt.k == 5) mean_trials_k5 = pt.mean_trials;
    if (pt.k == 2) loops_k2 = pt.two_hop_loop_rate;
  }

  Table table({"result", "paper claim", "measured"});
  table.add_row(
      {"Reliability approaches optimal (p=0.10)",
       "k<=10 slices approach best possible",
       "k=1: " + fmt_percent(rel_by[{1, 0.1}]) +
           " | k=10: " + fmt_percent(rel_by[{10, 0.1}]) +
           " | best: " + fmt_percent(best_by[0.1])});
  table.add_row({"Recovery is fast (k=5, p=0.05)",
                 "slightly more than two trials",
                 fmt_double(mean_trials_k5, 2) + " trials"});
  table.add_row({"Loops are rare (k=2, p=0.05)",
                 "~1% of recoveries see a 2-hop loop",
                 fmt_percent(loops_k2)});
  bench::emit(flags, table);
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
