// Figure 5: network-based recovery on the Sprint topology. Routers that see
// a failed next-hop link deflect the packet to another slice with an alive
// next hop; no sender retries. Same curve layout as Figure 4.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"
#include "util/parallel.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  bench::obs_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  RecoveryExperimentConfig cfg;
  cfg.k_values = {1, 3, 5};
  cfg.trials = static_cast<int>(flags.get_int("trials", 100));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.perturbation = bench::perturbation_from_flags(flags);
  cfg.pair_sample = static_cast<int>(flags.get_int("pair-sample", 0));
  cfg.recovery.scheme = RecoveryScheme::kNetworkDeflection;
  // Results are bit-identical at every thread count.
  cfg.threads =
      static_cast<int>(flags.get_int("threads", default_thread_count()));

  bench::banner("Network-based recovery",
                "Figure 5 — in-network deflection to an alternate slice with "
                "a live next hop, Sprint topology");
  std::cout << "topology=" << flags.get_string("topo", "sprint")
            << " trials=" << cfg.trials << " threads=" << cfg.threads
            << "\n\n";

  const auto points = run_recovery_experiment(g, cfg);

  Table table({"curve", "p", "frac_disconnected"});
  for (const auto& pt : points) {
    if (pt.k == 1) {
      table.add_row({"k=1 (no splicing)", fmt_double(pt.p, 2),
                     fmt_double(pt.frac_initial_broken, 5)});
    } else {
      table.add_row({"k=" + std::to_string(pt.k) + " (recovery)",
                     fmt_double(pt.p, 2), fmt_double(pt.frac_unrecovered, 5)});
      table.add_row({"k=" + std::to_string(pt.k) + " (reliability)",
                     fmt_double(pt.p, 2),
                     fmt_double(pt.frac_disconnected, 5)});
    }
  }
  bench::emit(flags, table);

  for (const auto& pt : points) {
    if (pt.k == 5 && pt.p == 0.05) {
      std::cout << "\nheadline @ k=5, p=0.05 (paper §4.3): mean stretch "
                << fmt_double(pt.mean_stretch, 2)
                << " (paper: 1.33), hop inflation "
                << fmt_double(pt.mean_hop_inflation, 2)
                << " (paper: ~1.55; both slightly above end-system)\n";
    }
  }
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
