// §1 / §4.2 headline: "an exponential improvement in path diversity for
// only a linear increase in routing complexity". Reports, as k grows, the
// linear FIB state next to the multiplicative growth in spliced-union arcs
// and available spliced walks.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"
#include "splicing/bit_budget.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  bench::banner("Path diversity vs. routing state",
                "§1/§4.2 — exponential diversity for linear state");

  const auto points = run_diversity_experiment(
      g, {1, 2, 3, 4, 5, 8, 10}, bench::perturbation_from_flags(flags), seed);

  Table table({"k", "fib_entries(linear)", "union_arcs/dst",
               "distinct_links/dst", "log10(spliced walks)"});
  for (const auto& pt : points) {
    table.add_row({fmt_int(pt.k),
                   fmt_int(static_cast<long long>(pt.fib_entries)),
                   fmt_double(pt.mean_union_arcs, 1),
                   fmt_double(pt.mean_union_links, 1),
                   fmt_double(pt.log10_paths, 2)});
  }
  bench::emit(flags, table);
  std::cout << "\nreading: fib_entries grows exactly linearly in k while the "
               "number of distinct spliced walks (log10 column) grows by "
               "orders of magnitude — the paper's Figure 1 argument at "
               "topology scale.\n";

  // Header-overhead companion table (§3.2 encoding, §5 compression).
  std::cout << "\nHeader bit budget per encoding (20 splice points):\n\n";
  Table bits({"k", "full header bits", "log2(full space)",
              "log2(no-revisit space)", "log2(<=3-switch space)",
              "counter bits (5 trials)"});
  for (const auto& pt : points) {
    bits.add_row({fmt_int(pt.k), fmt_int(full_header_bits(pt.k, 20)),
                  fmt_double(full_header_log2_paths(pt.k, 20), 1),
                  fmt_double(no_revisit_log2_sequences(pt.k, 20), 1),
                  fmt_double(bounded_switch_log2_sequences(pt.k, 20, 3), 1),
                  fmt_int(counter_header_bits(5))});
  }
  bits.print(std::cout);
  std::cout << "\nreading: the restricted (loop-free) schemes address "
               "exponentially many paths with a fraction of the header "
               "space; the §5 counter encoding needs only "
            << counter_header_bits(5) << " bits total.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
