// Ablation (§3.1.1 / §5 "alternate slicing mechanisms"): uniform vs.
// degree-based perturbations and a Weight(a, b) parameter sweep. Reports
// reliability at fixed p alongside the per-slice stretch cost, exposing the
// diversity/stretch trade-off the perturbation strength controls.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int trials = static_cast<int>(flags.get_int("trials", 200));
  const double p = flags.get_double("p", 0.05);

  bench::banner("Perturbation-strategy ablation",
                "§3.1.1 degree-based vs. uniform; Weight(a,b) sweep (§5 "
                "'alternate slicing mechanisms')");
  std::cout << "fixed failure probability p=" << p << ", trials=" << trials
            << ", k in {2, 5}\n\n";

  struct Variant {
    const char* label;
    PerturbationConfig cfg;
  };
  const Variant variants[] = {
      {"degree(0,1)", {PerturbationKind::kDegreeBased, 0.0, 1.0}},
      {"degree(0,3)", {PerturbationKind::kDegreeBased, 0.0, 3.0}},
      {"degree(0,6)", {PerturbationKind::kDegreeBased, 0.0, 6.0}},
      {"degree(1,3)", {PerturbationKind::kDegreeBased, 1.0, 3.0}},
      {"uniform(0,1)", {PerturbationKind::kUniform, 0.0, 1.0}},
      {"uniform(0,3)", {PerturbationKind::kUniform, 0.0, 3.0}},
      {"uniform(0,6)", {PerturbationKind::kUniform, 0.0, 6.0}},
  };

  Table table({"perturbation", "k", "frac_disconnected", "best_possible",
               "slice_p99_stretch"});
  for (const Variant& variant : variants) {
    ReliabilityConfig rel;
    rel.k_values = {2, 5};
    rel.p_values = {p};
    rel.trials = trials;
    rel.seed = seed;
    rel.perturbation = variant.cfg;
    const auto curves = run_reliability_experiment(g, rel);

    // Worst per-slice 99th-percentile stretch across the 5 slices.
    double worst_p99 = 0.0;
    for (const auto& row :
         run_slice_stretch_census(g, 5, variant.cfg, seed)) {
      worst_p99 = std::max(worst_p99, row.stretch.p99);
    }

    for (const auto& pt : curves.points) {
      table.add_row({variant.label, fmt_int(pt.k),
                     fmt_double(pt.mean_disconnected, 5),
                     fmt_double(curves.best_possible.front().mean_disconnected,
                                5),
                     fmt_double(worst_p99, 3)});
    }
  }
  bench::emit(flags, table);
  std::cout << "\nreading: stronger perturbations (larger b) buy more "
               "diversity (lower disconnection) at higher per-slice stretch; "
               "degree-based targets hub links and achieves the better "
               "trade-off (the paper's §3.1.1 intuition).\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
