// Appendix B (Theorem B.1): concentration of perturbed path lengths.
// Empirically verifies P(|X - ||L||_1| >= r * c/sqrt(3) * ||L||_2) <= 1/r^2
// for uniform perturbations in [-cL, cL] over real shortest paths.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  StretchBoundConfig cfg;
  cfg.c = flags.get_double("c", 0.5);
  cfg.path_samples = static_cast<int>(flags.get_int("paths", 300));
  cfg.perturbation_samples = static_cast<int>(flags.get_int("draws", 400));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  cfg.r_values = {1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0};

  bench::banner("Perturbed-path stretch concentration",
                "Appendix B, Theorem B.1 — Chebyshev bound on perturbed "
                "path length");
  std::cout << "topology=" << flags.get_string("topo", "sprint")
            << " c=" << cfg.c << " paths=" << cfg.path_samples
            << " draws/path=" << cfg.perturbation_samples << "\n\n";

  const auto points = run_stretch_bound_experiment(g, cfg);
  Table table({"r", "empirical_violation", "chebyshev_bound", "holds"});
  for (const auto& pt : points) {
    table.add_row({fmt_double(pt.r, 2), fmt_double(pt.empirical_violation, 5),
                   fmt_double(pt.bound, 5),
                   pt.empirical_violation <= pt.bound ? "yes" : "NO"});
  }
  bench::emit(flags, table);
  std::cout << "\ntheorem: the empirical violation probability must stay at "
               "or below 1/r^2 (it is typically far below: the bound is "
               "Chebyshev, not tight).\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
