// Data-plane microbenchmarks (google-benchmark): per-hop header operations,
// Algorithm 1 FIB lookups, full packet forwards, header generation —
// the costs a router/end host pays per packet under path splicing.
#include <benchmark/benchmark.h>

#include "dataplane/network.h"
#include "routing/multi_instance.h"
#include "splicing/recovery.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

struct Env {
  explicit Env(SliceId k)
      : g(topo::sprint()),
        mir(g, ControlPlaneConfig{
                   k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false}),
        fibs(mir.build_fibs()),
        net(g, fibs) {}

  Graph g;
  MultiInstanceRouting mir;
  FibSet fibs;
  DataPlaneNetwork net;
};

void BM_HeaderPop(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  Rng rng(1);
  const SpliceHeader header = SpliceHeader::random(k, 20, rng);
  for (auto _ : state) {
    SpliceHeader h = header;
    while (auto s = h.pop()) benchmark::DoNotOptimize(*s);
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_HeaderPop)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_HeaderRandomGeneration(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpliceHeader::random(k, 20, rng));
  }
}
BENCHMARK(BM_HeaderRandomGeneration)->Arg(2)->Arg(8);

void BM_HeaderCoinFlipMutation(benchmark::State& state) {
  Rng rng(3);
  const SpliceHeader base = SpliceHeader::random(8, 20, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.mutate_coinflip(rng));
  }
}
BENCHMARK(BM_HeaderCoinFlipMutation);

void BM_FibLookup(benchmark::State& state) {
  const Env env(8);
  Rng rng(4);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  for (auto _ : state) {
    const auto s = static_cast<SliceId>(rng.below(8));
    const auto v = static_cast<NodeId>(rng.below(n));
    const auto d = static_cast<NodeId>(rng.below(n));
    benchmark::DoNotOptimize(env.fibs.lookup(s, v, d));
  }
}
BENCHMARK(BM_FibLookup);

void BM_ForwardPacket(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  const Env env(k);
  Rng rng(5);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  std::int64_t hops = 0;
  for (auto _ : state) {
    Packet p;
    p.src = static_cast<NodeId>(rng.below(n));
    p.dst = static_cast<NodeId>(rng.below(n));
    if (p.src == p.dst) p.dst = (p.dst + 1) % static_cast<NodeId>(n);
    p.header = SpliceHeader::random(k, 20, rng);
    const Delivery d = env.net.forward(p);
    hops += d.hop_count();
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(hops);  // items = hops forwarded
}
BENCHMARK(BM_ForwardPacket)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void BM_RecoveryEpisode(benchmark::State& state) {
  Env env(5);
  // Fail 8 random links so some recoveries actually retry.
  Rng fail_rng(6);
  for (int i = 0; i < 8; ++i) {
    env.net.set_link_state(
        static_cast<EdgeId>(fail_rng.below(
            static_cast<std::uint64_t>(env.g.edge_count()))),
        false);
  }
  Rng rng(7);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.below(n));
    auto dst = static_cast<NodeId>(rng.below(n));
    if (src == dst) dst = (dst + 1) % static_cast<NodeId>(n);
    benchmark::DoNotOptimize(
        attempt_recovery(env.net, src, dst, RecoveryConfig{}, rng));
  }
}
BENCHMARK(BM_RecoveryEpisode);

}  // namespace
}  // namespace splice

BENCHMARK_MAIN();
