// Data-plane microbenchmarks (google-benchmark): per-hop header operations,
// Algorithm 1 FIB lookups, full packet forwards, header generation —
// the costs a router/end host pays per packet under path splicing.
//
// Two modes:
//   * default: the usual google-benchmark registrations.
//   * --json=path [--packets=4000 --reps=30 --k=8 --trials=48 --fail=0.12
//     --heavy_fail=0.2 --loop_reps=3 --seed=5 --topo=sprint --large_n=900
//     --large_packets=24000 --large_reps=3]: runs the forwarding fast-path
//     comparison — the
//     legacy allocating forward() (FibSet::lookup per hop, Delivery vector
//     per packet, separate trace_cost pass) against forward_fast(),
//     forward_stats() and the wavefront forward_stats_batch(), on
//     the paper's topology and on a large random graph whose FIBs dwarf
//     the caches; the full per-packet statistics pipeline (forward + cost
//     + loop/revisit census) legacy vs. fast, both at the fig-5 failure
//     rate and in the §4.4 loop-census regime (heavy failures, where
//     undeliverable packets loop until TTL expiry and the legacy
//     O(hops^2) revisit scan dominates); the legacy O(deg^2)
//     reliability-analyzer build against the CSR build; and a TrialEngine
//     scenario batch across thread counts — with built-in bit-identity
//     checks, written as machine-readable JSON for the perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <string_view>

#include "bench_common.h"
#include "dataplane/network.h"
#include "graph/generators.h"
#include "routing/multi_instance.h"
#include "sim/trial_engine.h"
#include "splicing/recovery.h"
#include "splicing/reliability.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

struct Env {
  explicit Env(SliceId k)
      : g(topo::sprint()),
        mir(g, ControlPlaneConfig{
                   k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false}),
        fibs(mir.build_fibs()),
        net(g, fibs) {}

  Env(Graph graph, SliceId k)
      : g(std::move(graph)),
        mir(g, ControlPlaneConfig{
                   k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false}),
        fibs(mir.build_fibs()),
        net(g, fibs) {}

  Graph g;
  MultiInstanceRouting mir;
  FibSet fibs;
  DataPlaneNetwork net;
};

void BM_HeaderPop(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  Rng rng(1);
  const SpliceHeader header = SpliceHeader::random(k, 20, rng);
  for (auto _ : state) {
    SpliceHeader h = header;
    while (auto s = h.pop()) benchmark::DoNotOptimize(*s);
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_HeaderPop)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_HeaderRandomGeneration(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpliceHeader::random(k, 20, rng));
  }
}
BENCHMARK(BM_HeaderRandomGeneration)->Arg(2)->Arg(8);

void BM_HeaderCoinFlipMutation(benchmark::State& state) {
  Rng rng(3);
  const SpliceHeader base = SpliceHeader::random(8, 20, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.mutate_coinflip(rng));
  }
}
BENCHMARK(BM_HeaderCoinFlipMutation);

void BM_FibLookup(benchmark::State& state) {
  const Env env(8);
  Rng rng(4);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  for (auto _ : state) {
    const auto s = static_cast<SliceId>(rng.below(8));
    const auto v = static_cast<NodeId>(rng.below(n));
    const auto d = static_cast<NodeId>(rng.below(n));
    benchmark::DoNotOptimize(env.fibs.lookup(s, v, d));
  }
}
BENCHMARK(BM_FibLookup);

void BM_ForwardPacket(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  const Env env(k);
  Rng rng(5);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  std::int64_t hops = 0;
  for (auto _ : state) {
    Packet p;
    p.src = static_cast<NodeId>(rng.below(n));
    p.dst = static_cast<NodeId>(rng.below(n));
    if (p.src == p.dst) p.dst = (p.dst + 1) % static_cast<NodeId>(n);
    p.header = SpliceHeader::random(k, 20, rng);
    const Delivery d = env.net.forward(p);
    hops += d.hop_count();
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(hops);  // items = hops forwarded
}
BENCHMARK(BM_ForwardPacket)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

// The allocation-free twin of BM_ForwardPacket: same packets, summary only.
void BM_ForwardPacketStats(benchmark::State& state) {
  const auto k = static_cast<SliceId>(state.range(0));
  const Env env(k);
  Rng rng(5);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  std::int64_t hops = 0;
  for (auto _ : state) {
    Packet p;
    p.src = static_cast<NodeId>(rng.below(n));
    p.dst = static_cast<NodeId>(rng.below(n));
    if (p.src == p.dst) p.dst = (p.dst + 1) % static_cast<NodeId>(n);
    p.header = SpliceHeader::random(k, 20, rng);
    const ForwardSummary s = env.net.forward_stats(p);
    hops += s.hops;
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(hops);
}
BENCHMARK(BM_ForwardPacketStats)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void BM_RecoveryEpisode(benchmark::State& state) {
  Env env(5);
  // Fail 8 random links so some recoveries actually retry.
  Rng fail_rng(6);
  for (int i = 0; i < 8; ++i) {
    env.net.set_link_state(
        static_cast<EdgeId>(fail_rng.below(
            static_cast<std::uint64_t>(env.g.edge_count()))),
        false);
  }
  Rng rng(7);
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.below(n));
    auto dst = static_cast<NodeId>(rng.below(n));
    if (src == dst) dst = (dst + 1) % static_cast<NodeId>(n);
    benchmark::DoNotOptimize(
        attempt_recovery(env.net, src, dst, RecoveryConfig{}, rng));
  }
}
BENCHMARK(BM_RecoveryEpisode);

// Workspace-reusing recovery: the per-episode cost the TrialEngine pays.
void BM_RecoveryEpisodeFast(benchmark::State& state) {
  Env env(5);
  Rng fail_rng(6);
  for (int i = 0; i < 8; ++i) {
    env.net.set_link_state(
        static_cast<EdgeId>(fail_rng.below(
            static_cast<std::uint64_t>(env.g.edge_count()))),
        false);
  }
  Rng rng(7);
  ForwardWorkspace ws;
  const auto n = static_cast<std::uint64_t>(env.g.node_count());
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.below(n));
    auto dst = static_cast<NodeId>(rng.below(n));
    if (src == dst) dst = (dst + 1) % static_cast<NodeId>(n);
    benchmark::DoNotOptimize(
        attempt_recovery_fast(env.net, src, dst, RecoveryConfig{}, rng, ws));
  }
}
BENCHMARK(BM_RecoveryEpisodeFast);

// ---------------------------------------------------------------------------
// --json mode: data-plane fast-path comparison for the perf trajectory.
// ---------------------------------------------------------------------------

/// The pre-fast-path forward(), kept as the comparison baseline and oracle:
/// FibSet::lookup (with its per-call contract checks) at every hop, a fresh
/// Delivery vector per packet.
Delivery legacy_forward(const FibSet& fibs, std::span<const char> link_alive,
                        const Packet& packet, const ForwardingPolicy& policy) {
  const auto alive = [&](EdgeId e) {
    return link_alive[static_cast<std::size_t>(e)] != 0;
  };
  const auto default_slice = [&](NodeId src, NodeId dst) {
    return static_cast<SliceId>(
        hash_mix(static_cast<std::uint64_t>(src),
                 static_cast<std::uint64_t>(dst)) %
        static_cast<std::uint64_t>(fibs.slice_count()));
  };
  Delivery out;
  if (packet.src == packet.dst) {
    out.outcome = ForwardOutcome::kDelivered;
    return out;
  }
  const SliceId k = fibs.slice_count();
  SpliceHeader header = packet.header;
  CounterHeader counter = packet.counter;
  SliceId current = default_slice(packet.src, packet.dst);
  NodeId node = packet.src;
  int ttl = packet.ttl;
  while (ttl-- > 0) {
    SliceId slice = current;
    if (const auto popped = header.pop(); popped.has_value()) {
      slice = static_cast<SliceId>(*popped % k);
    } else if (policy.exhaust == ExhaustPolicy::kHashDefault) {
      slice = default_slice(packet.src, packet.dst);
    }
    if (counter.active()) slice = counter.deflect(slice, k);

    FibEntry entry = fibs.lookup(slice, node, packet.dst);
    bool deflected = false;
    const bool usable = entry.valid() && alive(entry.edge);
    if (!usable) {
      if (policy.local_recovery == LocalRecovery::kDeflect) {
        for (SliceId s = 0; s < k && !deflected; ++s) {
          if (s == slice) continue;
          const FibEntry alt = fibs.lookup(s, node, packet.dst);
          if (alt.valid() && alive(alt.edge)) {
            entry = alt;
            slice = s;
            deflected = true;
          }
        }
      }
      if (!deflected) {
        out.outcome = ForwardOutcome::kDeadEnd;
        return out;
      }
    }
    out.hops.push_back(
        HopRecord{node, entry.next_hop, entry.edge, slice, deflected});
    node = entry.next_hop;
    current = slice;
    if (node == packet.dst) {
      out.outcome = ForwardOutcome::kDelivered;
      return out;
    }
  }
  out.outcome = ForwardOutcome::kTtlExpired;
  return out;
}

/// The pre-CSR reliability-analyzer build (nested per-destination adjacency
/// vectors, O(deg^2) dedup) and its BFS, kept as baseline and oracle.
struct LegacyAnalyzer {
  struct Adj {
    NodeId other;
    EdgeId edge;
    SliceId slice;
    bool incoming;
  };

  NodeId n;
  SliceId k_max;
  std::vector<std::vector<std::vector<Adj>>> adj;

  LegacyAnalyzer(const Graph& g, const MultiInstanceRouting& mir)
      : n(g.node_count()), k_max(mir.slice_count()) {
    adj.assign(static_cast<std::size_t>(n),
               std::vector<std::vector<Adj>>(static_cast<std::size_t>(n)));
    for (NodeId dst = 0; dst < n; ++dst) {
      auto& adj_dst = adj[static_cast<std::size_t>(dst)];
      for (SliceId s = 0; s < k_max; ++s) {
        const RoutingInstance& inst = mir.slice(s);
        for (NodeId v = 0; v < n; ++v) {
          if (v == dst) continue;
          const NodeId nh = inst.next_hop(v, dst);
          if (nh == kInvalidNode) continue;
          const EdgeId e = inst.next_hop_edge(v, dst);
          auto& at_head = adj_dst[static_cast<std::size_t>(nh)];
          bool duplicate = false;
          for (const Adj& a : at_head) {
            if (a.incoming && a.other == v && a.edge == e) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) continue;
          at_head.push_back(Adj{v, e, s, true});
          adj_dst[static_cast<std::size_t>(v)].push_back(
              Adj{nh, e, s, false});
        }
      }
    }
  }

  long long disconnected_pairs(SliceId k, std::span<const char> edge_alive,
                               UnionSemantics semantics) const {
    const bool undirected = semantics == UnionSemantics::kUndirectedLinks;
    long long disconnected = 0;
    std::vector<char> seen;
    std::vector<NodeId> stack;
    for (NodeId dst = 0; dst < n; ++dst) {
      seen.assign(static_cast<std::size_t>(n), 0);
      seen[static_cast<std::size_t>(dst)] = 1;
      stack.assign(1, dst);
      const auto& adj_dst = adj[static_cast<std::size_t>(dst)];
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (const Adj& a : adj_dst[static_cast<std::size_t>(u)]) {
          if (a.slice >= k) continue;
          if (!undirected && !a.incoming) continue;
          if (!edge_alive.empty() &&
              !edge_alive[static_cast<std::size_t>(a.edge)])
            continue;
          auto& mark = seen[static_cast<std::size_t>(a.other)];
          if (!mark) {
            mark = 1;
            stack.push_back(a.other);
          }
        }
      }
      for (NodeId src = 0; src < n; ++src) {
        if (src != dst && !seen[static_cast<std::size_t>(src)])
          ++disconnected;
      }
    }
    return disconnected;
  }
};

/// The pre-fast-path node-revisit census: a fresh `seen` vector per call
/// and an O(hops^2) containment scan — the per-packet trace-statistics cost
/// the Monte Carlo loops paid before the timestamped workspace variant.
int legacy_count_node_revisits(const Delivery& d) {
  int revisits = 0;
  std::vector<NodeId> seen;
  seen.reserve(d.hops.size() + 1);
  auto visit = [&](NodeId v) {
    for (NodeId s : seen) {
      if (s == v) {
        ++revisits;
        return;
      }
    }
    seen.push_back(v);
  };
  if (!d.hops.empty()) visit(d.hops.front().node);
  for (const HopRecord& hop : d.hops) visit(hop.next);
  return revisits;
}

/// The pre-fast-path two-hop-loop test over an allocated Delivery trace.
bool legacy_has_two_hop_loop(const Delivery& d) {
  for (std::size_t i = 0; i + 1 < d.hops.size(); ++i) {
    if (d.hops[i].node == d.hops[i + 1].next) return true;
  }
  return false;
}

/// Order-stable checksum of a forwarding sweep: identical across
/// implementations iff outcomes, hop counts and costs all match, with the
/// cost sum accumulated in packet order (so doubles compare bit-exact).
struct SweepChecksum {
  long long delivered = 0;
  long long hops = 0;
  double cost = 0.0;

  bool operator==(const SweepChecksum&) const = default;
};

int run_dataplane_compare(const Flags& flags) {
  bench::trace_from_flags(flags);
  bench::obs_from_flags(flags);
  const auto k = static_cast<SliceId>(flags.get_int("k", 8));
  const int packets = static_cast<int>(flags.get_int("packets", 4000));
  const int reps = static_cast<int>(flags.get_int("reps", 30));
  const int trials = static_cast<int>(flags.get_int("trials", 48));
  const double p_fail = flags.get_double("fail", 0.12);
  // §4.4 loop-census regime: enough failed links that a visible share of
  // packets never reaches the destination and loops until TTL expiry.
  const double p_heavy = flags.get_double("heavy_fail", 0.2);
  const int loop_reps = static_cast<int>(flags.get_int("loop_reps", 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  // The large regime needs a packet set whose hop footprint exceeds the
  // cache hierarchy, so per-hop FIB loads are real memory accesses instead
  // of replaying a warm working set.
  const int large_n = static_cast<int>(flags.get_int("large_n", 900));
  const int large_packets =
      static_cast<int>(flags.get_int("large_packets", 24000));
  const int large_reps = static_cast<int>(flags.get_int("large_reps", 3));

  bench::banner("Data-plane fast path",
                "forwarding/analyzer microbenchmark (Algorithm 1 hot loop)");
  Env env(bench::load_topology_flag(flags), k);
  std::cout << "topology=" << flags.get_string("topo", "sprint")
            << " n=" << env.g.node_count() << " links=" << env.g.edge_count()
            << " k=" << k << " packets=" << packets << " reps=" << reps
            << " trials=" << trials << "\n\n";

  // Fixed packet sets shared by every implementation.
  Rng rng(seed);
  const auto make_workload = [&](const Env& e, int count) {
    const auto nodes = static_cast<std::uint64_t>(e.g.node_count());
    std::vector<Packet> wl;
    wl.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      Packet p;
      p.src = static_cast<NodeId>(rng.below(nodes));
      p.dst = static_cast<NodeId>(rng.below(nodes));
      if (p.src == p.dst) p.dst = (p.dst + 1) % static_cast<NodeId>(nodes);
      p.header = SpliceHeader::random(k, 20, rng);
      wl.push_back(p);
    }
    return wl;
  };
  const std::vector<Packet> workload = make_workload(env, packets);

  const auto degraded_mask = [&](const Env& e, std::uint64_t mask_seed,
                                 double p_down) {
    std::vector<char> mask(static_cast<std::size_t>(e.g.edge_count()), 1);
    Rng mask_rng(mask_seed);
    for (auto& m : mask) m = mask_rng.uniform() < p_down ? 0 : 1;
    return mask;
  };
  const std::vector<char> failed_mask =
      degraded_mask(env, seed ^ 0xf417ULL, p_fail);
  const std::vector<char> healthy_mask(
      static_cast<std::size_t>(env.g.edge_count()), 1);

  // Bit-identity gate, untimed: every implementation must agree hop for hop
  // on every packet, under healthy and degraded masks, with and without
  // deflection.
  const auto bit_identical = [&](Env& e, const std::vector<Packet>& wl,
                                 const std::vector<char>& healthy,
                                 const std::vector<char>& degraded) {
    ForwardWorkspace gate_ws;
    std::vector<ForwardSummary> gate_batch(wl.size());
    for (const auto* mask : {&healthy, &degraded}) {
      e.net.set_link_mask(*mask);
      for (const LocalRecovery recovery :
           {LocalRecovery::kNone, LocalRecovery::kDeflect}) {
        const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                      recovery};
        e.net.forward_stats_batch(wl, policy, gate_batch);
        for (std::size_t i = 0; i < wl.size(); ++i) {
          const Packet& p = wl[i];
          const Delivery want =
              legacy_forward(e.fibs, e.net.link_mask(), p, policy);
          const ForwardSummary fast = e.net.forward_fast(p, policy, gate_ws);
          const ForwardSummary stats = e.net.forward_stats(p, policy);
          const ForwardSummary& batched = gate_batch[i];
          bool hops_match = gate_ws.hops.size() == want.hops.size();
          for (std::size_t h = 0; hops_match && h < want.hops.size(); ++h) {
            const HopRecord& a = gate_ws.hops[h];
            const HopRecord& b = want.hops[h];
            hops_match = a.node == b.node && a.next == b.next &&
                         a.edge == b.edge && a.slice == b.slice &&
                         a.deflected == b.deflected;
          }
          if (fast.outcome != want.outcome || !hops_match ||
              fast.hops != want.hop_count() ||
              fast.cost != trace_cost(e.g, want) ||
              stats.outcome != fast.outcome || stats.hops != fast.hops ||
              stats.cost != fast.cost || batched.outcome != fast.outcome ||
              batched.hops != fast.hops || batched.cost != fast.cost ||
              batched.deflected != fast.deflected) {
            std::cerr << "FATAL: fast forwarding diverges from legacy at "
                      << "src=" << p.src << " dst=" << p.dst << " deflect="
                      << (recovery == LocalRecovery::kDeflect) << "\n";
            return false;
          }
        }
      }
    }
    return true;
  };
  if (!bit_identical(env, workload, healthy_mask, failed_mask)) {
    return EXIT_FAILURE;
  }

  const bench::Stopwatch wall;

  // Timed forwarding regimes: fig-4 style (healthy network, no deflection)
  // and fig-5 style (degraded network, in-network deflection) — the two
  // workloads the Monte Carlo loops actually run. Per regime, four
  // implementations over the identical packet set:
  //   legacy      allocating forward() + trace_cost() pass (pre-change cost)
  //   fast_trace  forward_fast() into the reused workspace
  //   fast_stats  forward_stats(), no trace at all
  //   fast_batch  forward_stats_batch(), wavefront batched walks
  struct Phase {
    double legacy_ms = 0.0;
    double trace_ms = 0.0;
    double stats_ms = 0.0;
    double batch_ms = 0.0;
    SweepChecksum sum;
  };
  bool phase_ok = true;
  const auto time_phase = [&](Env& e, const std::vector<Packet>& wl,
                              const std::vector<char>& mask,
                              const ForwardingPolicy& policy, int n_reps) {
    Phase ph;
    e.net.set_link_mask(mask);
    ForwardWorkspace phase_ws;
    std::vector<ForwardSummary> batch_out(wl.size());

    SweepChecksum legacy_sum;
    const bench::Stopwatch legacy_clock;
    for (int r = 0; r < n_reps; ++r) {
      for (const Packet& p : wl) {
        const Delivery d =
            legacy_forward(e.fibs, e.net.link_mask(), p, policy);
        legacy_sum.delivered += d.delivered() ? 1 : 0;
        legacy_sum.hops += d.hop_count();
        legacy_sum.cost += trace_cost(e.g, d);
      }
    }
    ph.legacy_ms = legacy_clock.elapsed_ms();

    SweepChecksum trace_sum;
    const bench::Stopwatch trace_clock;
    for (int r = 0; r < n_reps; ++r) {
      for (const Packet& p : wl) {
        const ForwardSummary s = e.net.forward_fast(p, policy, phase_ws);
        trace_sum.delivered += s.delivered() ? 1 : 0;
        trace_sum.hops += s.hops;
        trace_sum.cost += s.cost;
      }
    }
    ph.trace_ms = trace_clock.elapsed_ms();

    SweepChecksum stats_sum;
    const bench::Stopwatch stats_clock;
    for (int r = 0; r < n_reps; ++r) {
      for (const Packet& p : wl) {
        const ForwardSummary s = e.net.forward_stats(p, policy);
        stats_sum.delivered += s.delivered() ? 1 : 0;
        stats_sum.hops += s.hops;
        stats_sum.cost += s.cost;
      }
    }
    ph.stats_ms = stats_clock.elapsed_ms();

    SweepChecksum batch_sum;
    ForwardWorkspace batch_ws;
    const bench::Stopwatch batch_clock;
    for (int r = 0; r < n_reps; ++r) {
      e.net.forward_stats_batch(wl, policy, batch_out, batch_ws);
      for (const ForwardSummary& s : batch_out) {
        batch_sum.delivered += s.delivered() ? 1 : 0;
        batch_sum.hops += s.hops;
        batch_sum.cost += s.cost;
      }
    }
    ph.batch_ms = batch_clock.elapsed_ms();

    if (trace_sum != legacy_sum || stats_sum != legacy_sum ||
        batch_sum != legacy_sum) {
      phase_ok = false;
    }
    ph.sum = legacy_sum;
    return ph;
  };

  const Phase fig4 = time_phase(
      env, workload, healthy_mask,
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kNone}, reps);
  const Phase fig5 = time_phase(
      env, workload, failed_mask,
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kDeflect}, reps);

  // Per-packet statistics pipeline: what the fig-4/fig-5 experiments run per
  // forwarded packet — forwarding plus path cost, two-hop-loop test and the
  // node-revisit census. Legacy pays an allocated Delivery, a second
  // trace_cost() pass and the O(hops^2) allocating revisit scan; the fast
  // pipeline reads the workspace trace and the timestamped visit buffer.
  struct PipelineChecksum {
    long long delivered = 0;
    long long hops = 0;
    long long loops = 0;
    long long revisits = 0;
    double cost = 0.0;

    bool operator==(const PipelineChecksum&) const = default;
  };
  struct PipelinePhase {
    double legacy_ms = 0.0;
    double fast_ms = 0.0;
    PipelineChecksum sum;
  };
  const auto time_pipeline = [&](Env& e, const std::vector<Packet>& wl,
                                 const std::vector<std::vector<char>>& masks,
                                 const ForwardingPolicy& policy, int n_reps) {
    PipelinePhase ph;
    const NodeId nodes = e.g.node_count();
    ForwardWorkspace pipe_ws;

    PipelineChecksum legacy_sum;
    const bench::Stopwatch legacy_clock;
    for (int r = 0; r < n_reps; ++r) {
      for (const auto& mask : masks) {
        e.net.set_link_mask(mask);
        for (const Packet& p : wl) {
          const Delivery d =
              legacy_forward(e.fibs, e.net.link_mask(), p, policy);
          legacy_sum.delivered += d.delivered() ? 1 : 0;
          legacy_sum.hops += d.hop_count();
          legacy_sum.cost += trace_cost(e.g, d);
          legacy_sum.loops += legacy_has_two_hop_loop(d) ? 1 : 0;
          legacy_sum.revisits += legacy_count_node_revisits(d);
        }
      }
    }
    ph.legacy_ms = legacy_clock.elapsed_ms();

    PipelineChecksum fast_sum;
    const bench::Stopwatch fast_clock;
    for (int r = 0; r < n_reps; ++r) {
      for (const auto& mask : masks) {
        e.net.set_link_mask(mask);
        for (const Packet& p : wl) {
          const ForwardSummary s = e.net.forward_fast(p, policy, pipe_ws);
          fast_sum.delivered += s.delivered() ? 1 : 0;
          fast_sum.hops += s.hops;
          fast_sum.cost += s.cost;
          fast_sum.loops += has_two_hop_loop(pipe_ws.hops) ? 1 : 0;
          fast_sum.revisits +=
              count_node_revisits(pipe_ws.hops, nodes, pipe_ws);
        }
      }
    }
    ph.fast_ms = fast_clock.elapsed_ms();

    if (fast_sum != legacy_sum) phase_ok = false;
    ph.sum = legacy_sum;
    return ph;
  };
  const PipelinePhase pipe5 = time_pipeline(
      env, workload, {failed_mask},
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kDeflect}, reps);

  // §4.4 loop census: with a heavy failure mask and in-network deflection,
  // the packets that cannot reach their destination keep deflecting and
  // loop until the 255-hop TTL expires. These long traces are where the
  // legacy pipeline's costs compound — the Delivery vector reallocates as
  // it grows and the revisit scan walks its seen-set once per hop — while
  // the fast pipeline stays O(hops) via the timestamped visit buffer.
  // Whether a given mask strands loopers (rather than dead-ending them) is
  // high-variance, so the census aggregates several masks like the real
  // multi-trial experiments do.
  std::vector<std::vector<char>> heavy_masks;
  for (int i = 0; i < 8; ++i) {
    heavy_masks.push_back(degraded_mask(
        env, seed ^ (0x5e4fULL + static_cast<std::uint64_t>(i)), p_heavy));
  }
  if (!bit_identical(env, workload, heavy_masks.front(),
                     heavy_masks.back())) {
    return EXIT_FAILURE;
  }
  const PipelinePhase pipe_loops = time_pipeline(
      env, workload, heavy_masks,
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kDeflect}, loop_reps);

  // Large-topology regime: a sparse random graph big enough that the k
  // forwarding tables dwarf the cache hierarchy, so every hop is a memory
  // access — the regime where the wavefront batch kernel turns load
  // latency into throughput. Monte Carlo sweeps over synthetic graphs of
  // this size are exactly the fig-3 style experiments at scale.
  Graph big = erdos_renyi(static_cast<NodeId>(large_n),
                          5.0 / std::max(1, large_n - 1), seed ^ 0xb16ULL);
  make_connected(big, seed ^ 0xb17ULL);
  Env large_env(std::move(big), k);
  const std::vector<Packet> large_workload =
      make_workload(large_env, large_packets);
  const std::vector<char> large_failed =
      degraded_mask(large_env, seed ^ 0x1a46eULL, p_fail);
  const std::vector<char> large_healthy(
      static_cast<std::size_t>(large_env.g.edge_count()), 1);
  if (!bit_identical(large_env, large_workload, large_healthy,
                     large_failed)) {
    return EXIT_FAILURE;
  }
  const Phase large = time_phase(
      large_env, large_workload, large_failed,
      {ExhaustPolicy::kStayInCurrent, LocalRecovery::kDeflect}, large_reps);

  if (!phase_ok) {
    std::cerr << "FATAL: fast forwarding checksum diverges from legacy\n";
    return EXIT_FAILURE;
  }

  // Analyzer build: legacy nested-vector O(deg^2) dedup vs. the CSR
  // stamped-dedup + counting-scatter build. Several constructions each so
  // the ms-scale numbers are stable.
  constexpr int kBuildReps = 5;
  const bench::Stopwatch legacy_build_clock;
  for (int r = 0; r < kBuildReps; ++r) {
    const LegacyAnalyzer rebuilt(env.g, env.mir);
    benchmark::DoNotOptimize(rebuilt.n);
  }
  const double legacy_build_ms = legacy_build_clock.elapsed_ms();
  const bench::Stopwatch csr_build_clock;
  for (int r = 0; r < kBuildReps; ++r) {
    const SplicedReliabilityAnalyzer rebuilt(env.g, env.mir);
    benchmark::DoNotOptimize(rebuilt.node_count());
  }
  const double csr_build_ms = csr_build_clock.elapsed_ms();
  const LegacyAnalyzer legacy_analyzer(env.g, env.mir);
  const SplicedReliabilityAnalyzer analyzer(env.g, env.mir);

  // Analyzer queries: full disconnected-pair sweeps under failure masks.
  std::vector<std::vector<char>> query_masks;
  Rng qrng(seed ^ 0x9e37ULL);
  for (int i = 0; i < 32; ++i) {
    auto mask = healthy_mask;
    for (auto& m : mask) m = qrng.uniform() < p_fail ? 0 : 1;
    query_masks.push_back(std::move(mask));
  }
  long long legacy_pairs = 0;
  const bench::Stopwatch legacy_query_clock;
  for (const auto& mask : query_masks) {
    for (SliceId kk = 1; kk <= k; ++kk) {
      legacy_pairs += legacy_analyzer.disconnected_pairs(
          kk, mask, UnionSemantics::kUndirectedLinks);
    }
  }
  const double legacy_query_ms = legacy_query_clock.elapsed_ms();
  long long csr_pairs = 0;
  ReachWorkspace reach_ws;
  const bench::Stopwatch csr_query_clock;
  for (const auto& mask : query_masks) {
    for (SliceId kk = 1; kk <= k; ++kk) {
      csr_pairs += analyzer.disconnected_pairs(
          kk, mask, UnionSemantics::kUndirectedLinks, reach_ws);
    }
  }
  const double csr_query_ms = csr_query_clock.elapsed_ms();
  if (csr_pairs != legacy_pairs) {
    std::cerr << "FATAL: CSR analyzer diverges from legacy adjacency build\n";
    return EXIT_FAILURE;
  }

  // TrialEngine scenario batch: per-trial failure mask + full packet sweep
  // with deflection, per-thread scratch. The trial-ordered reduce makes the
  // checksum bit-identical at every thread count.
  struct Scratch {
    DataPlaneNetwork net;
    std::vector<ForwardSummary> out;
    std::vector<char> mask;
    ForwardWorkspace ws;
  };
  const ForwardingPolicy trial_policy{ExhaustPolicy::kStayInCurrent,
                                      LocalRecovery::kDeflect};
  const auto run_batch = [&](int threads) {
    const TrialEngine<Scratch> engine(threads);
    const auto results = engine.run<SweepChecksum>(
        trials,
        [&] {
          return Scratch{DataPlaneNetwork(env.g, env.fibs),
                         std::vector<ForwardSummary>(workload.size()),
                         {},
                         {}};
        },
        [&](int trial, Scratch& sc) {
          Rng trial_rng(
              trial_substream_seed(seed, static_cast<std::uint64_t>(trial)));
          sc.mask.assign(static_cast<std::size_t>(env.g.edge_count()), 1);
          for (auto& m : sc.mask) m = trial_rng.uniform() < p_fail ? 0 : 1;
          sc.net.set_link_mask(sc.mask);
          sc.net.forward_stats_batch(workload, trial_policy, sc.out, sc.ws);
          SweepChecksum sum;
          for (const ForwardSummary& s : sc.out) {
            sum.delivered += s.delivered() ? 1 : 0;
            sum.hops += s.hops;
            sum.cost += s.cost;
          }
          return sum;
        });
    SweepChecksum total;
    for (const SweepChecksum& r : results) {
      total.delivered += r.delivered;
      total.hops += r.hops;
      total.cost += r.cost;
    }
    return total;
  };
  const int hw = default_thread_count();
  const bench::Stopwatch batch1_clock;
  const SweepChecksum batch1 = run_batch(1);
  const double batch1_ms = batch1_clock.elapsed_ms();
  const bench::Stopwatch batchn_clock;
  const SweepChecksum batchn = run_batch(hw);
  const double batchn_ms = batchn_clock.elapsed_ms();
  if (batch1 != batchn) {
    std::cerr << "FATAL: trial batch checksum diverges across thread counts\n";
    return EXIT_FAILURE;
  }

  Table table({"phase", "impl", "threads", "ms", "Mhops_s", "speedup"});
  const auto add_phase_rows = [&](const std::string& phase, const Phase& ph) {
    const double total_hops = static_cast<double>(ph.sum.hops);
    const auto mhops = [&](double ms) { return total_hops / ms / 1e3; };
    table.add_row({phase, "legacy", "1", fmt_double(ph.legacy_ms, 3),
                   fmt_double(mhops(ph.legacy_ms), 2), "1.00"});
    table.add_row({phase, "fast_trace", "1", fmt_double(ph.trace_ms, 3),
                   fmt_double(mhops(ph.trace_ms), 2),
                   fmt_double(ph.legacy_ms / ph.trace_ms, 2)});
    table.add_row({phase, "fast_stats", "1", fmt_double(ph.stats_ms, 3),
                   fmt_double(mhops(ph.stats_ms), 2),
                   fmt_double(ph.legacy_ms / ph.stats_ms, 2)});
    table.add_row({phase, "fast_batch", "1", fmt_double(ph.batch_ms, 3),
                   fmt_double(mhops(ph.batch_ms), 2),
                   fmt_double(ph.legacy_ms / ph.batch_ms, 2)});
  };
  add_phase_rows("forward_fig4", fig4);
  add_phase_rows("forward_fig5", fig5);
  const auto add_pipeline_rows = [&](const std::string& phase,
                                     const PipelinePhase& ph) {
    const double pipe_hops = static_cast<double>(ph.sum.hops);
    table.add_row({phase, "legacy", "1", fmt_double(ph.legacy_ms, 3),
                   fmt_double(pipe_hops / ph.legacy_ms / 1e3, 2), "1.00"});
    table.add_row({phase, "fast", "1", fmt_double(ph.fast_ms, 3),
                   fmt_double(pipe_hops / ph.fast_ms / 1e3, 2),
                   fmt_double(ph.legacy_ms / ph.fast_ms, 2)});
  };
  add_pipeline_rows("pipeline_fig5", pipe5);
  add_pipeline_rows("pipeline_loops", pipe_loops);
  add_phase_rows("forward_large", large);
  table.add_row({"analyzer_build", "legacy", "1",
                 fmt_double(legacy_build_ms, 3), "", "1.00"});
  table.add_row({"analyzer_build", "csr", "1", fmt_double(csr_build_ms, 3),
                 "", fmt_double(legacy_build_ms / csr_build_ms, 2)});
  table.add_row({"analyzer_query", "legacy", "1",
                 fmt_double(legacy_query_ms, 3), "", "1.00"});
  table.add_row({"analyzer_query", "csr", "1", fmt_double(csr_query_ms, 3),
                 "", fmt_double(legacy_query_ms / csr_query_ms, 2)});
  table.add_row({"trial_batch", "engine", "1", fmt_double(batch1_ms, 3), "",
                 "1.00"});
  // The threads cell is the literal "hw", not the hardware thread count:
  // the row key must be stable across machines for perf_gate.py matching.
  table.add_row({"trial_batch", "engine", "hw",
                 fmt_double(batchn_ms, 3), "",
                 fmt_double(batch1_ms / batchn_ms, 2)});

  bench::BenchMeta meta;
  meta.bench = "bench_micro_dataplane/dataplane_compare";
  meta.topo = flags.get_string("topo", "sprint");
  meta.params = "k=" + std::to_string(k) +
                " packets=" + std::to_string(packets) +
                " reps=" + std::to_string(reps) +
                " trials=" + std::to_string(trials) +
                " heavy_fail=" + fmt_double(p_heavy, 2) +
                " large_n=" + std::to_string(large_env.g.node_count()) +
                " large_links=" + std::to_string(large_env.g.edge_count()) +
                " large_packets=" + std::to_string(large_packets) +
                " hw_threads=" + std::to_string(hw);
  meta.wall_ms = wall.elapsed_ms();
  bench::emit(flags, table, meta);
  std::cout << "\nchecksums: fig4 delivered=" << fig4.sum.delivered
            << " hops=" << fig4.sum.hops
            << ", fig5 delivered=" << fig5.sum.delivered
            << " hops=" << fig5.sum.hops << " (revisits=" << pipe5.sum.revisits
            << "), loops delivered=" << pipe_loops.sum.delivered
            << " hops=" << pipe_loops.sum.hops
            << " (revisits=" << pipe_loops.sum.revisits
            << "), large delivered=" << large.sum.delivered
            << " hops=" << large.sum.hops
            << " (identical across all implementations and thread counts)\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--json", 0) == 0) {
      return splice::run_dataplane_compare(splice::Flags(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
