// Ablation (§5 "alternate slicing mechanisms"): random independent
// perturbations vs. coverage-aware greedy slice construction — does
// choosing each slice to minimize overlap with the already-deployed ones
// buy "more reliability with fewer slices", as §5 conjectures?
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "routing/coverage.h"
#include "sim/failure.h"
#include "splicing/reliability.h"
#include "util/stats.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const int trials = static_cast<int>(flags.get_int("trials", 300));
  const double p = flags.get_double("p", 0.05);
  const int seeds = static_cast<int>(flags.get_int("seeds", 5));
  const int candidates = static_cast<int>(flags.get_int("candidates", 8));

  bench::banner("Slice-construction ablation",
                "§5 'alternate slicing mechanisms' — random vs. "
                "coverage-aware greedy slices");
  std::cout << "p=" << p << " trials/seed=" << trials
            << " construction seeds=" << seeds
            << " candidates/slice=" << candidates << "\n\n";

  Table table({"k", "random: frac disconnected", "coverage-aware: frac "
               "disconnected", "improvement", "covered arcs random",
               "covered arcs greedy"});
  for (SliceId k : {2, 3, 5}) {
    OnlineStats random_stats;
    OnlineStats greedy_stats;
    long long arcs_random = 0;
    long long arcs_greedy = 0;
    for (int s = 0; s < seeds; ++s) {
      const auto seed = static_cast<std::uint64_t>(s) * 977 + 3;
      ControlPlaneConfig rnd;
      rnd.slices = k;
      rnd.perturbation = bench::perturbation_from_flags(flags);
      rnd.seed = seed;
      const MultiInstanceRouting random_mir(g, rnd);

      CoverageSliceConfig cov;
      cov.slices = k;
      cov.candidates_per_slice = candidates;
      cov.perturbation = rnd.perturbation;
      cov.seed = seed;
      const MultiInstanceRouting greedy_mir =
          build_coverage_aware_control_plane(g, cov);

      arcs_random += count_covered_arcs(g, random_mir, k);
      arcs_greedy += count_covered_arcs(g, greedy_mir, k);

      const SplicedReliabilityAnalyzer ra(g, random_mir);
      const SplicedReliabilityAnalyzer ga(g, greedy_mir);
      Rng rng(seed ^ 0xab1a7e);
      for (int t = 0; t < trials; ++t) {
        const auto alive = sample_alive_mask(g.edge_count(), p, rng);
        random_stats.add(ra.disconnected_fraction(k, alive));
        greedy_stats.add(ga.disconnected_fraction(k, alive));
      }
    }
    const double improvement =
        random_stats.mean() <= 0.0
            ? 0.0
            : 1.0 - greedy_stats.mean() / random_stats.mean();
    table.add_row({fmt_int(k), fmt_double(random_stats.mean(), 5),
                   fmt_double(greedy_stats.mean(), 5),
                   fmt_percent(improvement),
                   fmt_int(arcs_random / seeds),
                   fmt_int(arcs_greedy / seeds)});
  }
  bench::emit(flags, table);
  std::cout << "\nreading: the greedy construction covers more forwarding "
               "arcs per destination and converts that into roughly 20-25% "
               "lower disconnection at equal k — §5's conjecture holds, "
               "with zero protocol changes (it only picks weights "
               "differently).\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
