// Appendix A (Theorem A.1): the number of slices needed for near-optimal
// connectivity scales like log n. Sweeps synthetic Waxman backbones of
// growing size and reports the smallest k whose mean disconnection is
// within tolerance of the underlying graph's, next to a log2(n) reference.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "sim/experiments.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  ScalingConfig cfg;
  cfg.trials = static_cast<int>(flags.get_int("trials", 40));
  cfg.p = flags.get_double("p", 0.05);
  cfg.max_k = static_cast<SliceId>(flags.get_int("max-k", 24));
  cfg.tolerance = flags.get_double("tolerance", 0.005);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  cfg.perturbation = bench::perturbation_from_flags(flags);
  cfg.threads = bench::threads_from_flags(flags);
  if (flags.has("sizes")) {
    cfg.sizes.clear();
    std::string spec = flags.get_string("sizes", "");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      cfg.sizes.push_back(static_cast<NodeId>(
          std::stol(spec.substr(pos, comma - pos))));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  bench::banner("Slices needed vs. graph size",
                "Appendix A, Theorem A.1 — k for near-optimal connectivity "
                "scales as O(log n)");
  std::cout << "failure p=" << cfg.p << " trials=" << cfg.trials
            << " tolerance=" << cfg.tolerance << " (additive)\n\n";

  const bench::Stopwatch wall;
  const auto points = run_scaling_experiment(cfg);
  Table table({"n", "links", "k_needed", "log2(n)", "best_possible",
               "achieved", "build_ms"});
  for (const auto& pt : points) {
    table.add_row({fmt_int(pt.n), fmt_int(pt.edges), fmt_int(pt.k_needed),
                   fmt_double(std::log2(static_cast<double>(pt.n)), 2),
                   fmt_double(pt.best_possible, 5),
                   fmt_double(pt.achieved, 5), fmt_double(pt.build_ms, 3)});
  }
  bench::BenchMeta meta;
  meta.bench = "bench_appendixA_scaling";
  meta.topo = "waxman-sweep";
  meta.params = "p=" + std::to_string(cfg.p) +
                " trials=" + std::to_string(cfg.trials) +
                " max_k=" + std::to_string(cfg.max_k) +
                " threads=" + std::to_string(cfg.threads);
  meta.wall_ms = wall.elapsed_ms();
  bench::emit(flags, table, meta);
  std::cout << "\ntheorem: k_needed should grow no faster than c * log n; "
               "compare the k_needed column against log2(n).\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
