// §5 "extensions to interdomain routing": spliced BGP on a hierarchical
// AS topology. Reproduces the Figure 3 shape at the AS level — fraction of
// AS pairs disconnected vs. AS-link failure probability, for k installed
// routes in {1, 2, 3} — plus recovery-by-bits statistics.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "interdomain/as_graph.h"
#include "interdomain/bgp.h"
#include "interdomain/bgp_dynamics.h"
#include "sim/failure.h"
#include "util/stats.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  AsHierarchyConfig hcfg;
  hcfg.tier1 = static_cast<int>(flags.get_int("tier1", 4));
  hcfg.tier2 = static_cast<int>(flags.get_int("tier2", 12));
  hcfg.stubs = static_cast<int>(flags.get_int("stubs", 32));
  hcfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const AsGraph g = make_as_hierarchy(hcfg);
  const SliceId k_max = static_cast<SliceId>(flags.get_int("k", 3));
  const int trials = static_cast<int>(flags.get_int("trials", 200));
  const BgpSplicer bgp(g, BgpConfig{k_max, 0});

  bench::banner("Spliced BGP reliability",
                "§5 'extensions to interdomain routing' — k best routes in "
                "the FIB, accessed by forwarding bits, no extra BGP "
                "messages");
  std::cout << "AS topology: " << g.as_count() << " ASes, " << g.link_count()
            << " relationship links (tier1=" << hcfg.tier1
            << " tier2=" << hcfg.tier2 << " stubs=" << hcfg.stubs << ")\n\n";

  Table table({"curve", "p", "frac_AS_pairs_disconnected"});
  Rng rng(hcfg.seed ^ 0xbb9b);
  for (double p : {0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10}) {
    std::vector<OnlineStats> per_k(static_cast<std::size_t>(k_max));
    for (int t = 0; t < trials; ++t) {
      const auto alive = sample_alive_mask(
          static_cast<EdgeId>(g.link_count()), p, rng);
      for (SliceId k = 1; k <= k_max; ++k) {
        per_k[static_cast<std::size_t>(k - 1)].add(
            bgp.disconnected_fraction(alive, k));
      }
    }
    for (SliceId k = 1; k <= k_max; ++k) {
      table.add_row({"k=" + std::to_string(k) +
                         (k == 1 ? " (classic BGP)" : " (spliced)"),
                     fmt_double(p, 2),
                     fmt_double(per_k[static_cast<std::size_t>(k - 1)].mean(),
                                5)});
    }
  }
  bench::emit(flags, table);

  // Recovery by re-randomizing interdomain forwarding bits.
  std::cout << "\nRecovery by bits (p=0.05, up to 5 fresh headers):\n\n";
  OnlineStats trials_to_recover;
  long long broken = 0;
  long long recovered = 0;
  for (int t = 0; t < std::max(1, trials / 4); ++t) {
    const auto alive =
        sample_alive_mask(static_cast<EdgeId>(g.link_count()), 0.05, rng);
    for (AsId src = 0; src < g.as_count(); src += 3) {
      for (AsId dst = 0; dst < g.as_count(); dst += 5) {
        if (src == dst) continue;
        if (bgp.forward(src, dst, SpliceHeader{}, alive).has_value())
          continue;  // primary route fine
        ++broken;
        for (int attempt = 1; attempt <= 5; ++attempt) {
          const auto header = SpliceHeader::random(k_max, 20, rng);
          if (bgp.forward(src, dst, header, alive).has_value()) {
            ++recovered;
            trials_to_recover.add(static_cast<double>(attempt));
            break;
          }
        }
      }
    }
  }
  std::cout << "primary-route failures: " << broken << "; recovered by bits: "
            << recovered << " ("
            << fmt_percent(broken > 0 ? static_cast<double>(recovered) /
                                            static_cast<double>(broken)
                                      : 0.0)
            << "), mean trials " << fmt_double(trials_to_recover.mean(), 2)
            << "\n";

  // BGP churn comparison: what a reconverging BGP pays per link failure
  // (best-route changes = lower bound on UPDATE messages), versus spliced
  // FIBs that ride through the failure with zero control traffic.
  OnlineStats churn;
  OnlineStats rounds;
  for (AsLinkId l = 0; l < g.link_count(); l += 3) {
    const ConvergenceStats s = measure_failure_reconvergence(g, l);
    churn.add(static_cast<double>(s.route_changes));
    rounds.add(static_cast<double>(s.rounds));
  }
  std::cout << "\nBGP reconvergence churn per link failure (sampled): mean "
            << fmt_double(churn.mean(), 1) << " best-route changes over "
            << fmt_double(rounds.mean(), 1)
            << " rounds — spliced FIBs deliver through the same failures "
               "with 0 UPDATEs.\n"
            << "\npaper §5: a spliced BGP provides access to multiple "
               "interdomain paths without additional communication among "
               "BGP routers.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
