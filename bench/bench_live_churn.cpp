// Live-churn republication bench: the FibPublisher pipeline end to end —
// one control thread replaying a deterministic churn trace (flaps, SRLG
// bursts, maintenance windows) at max rate through incremental repair +
// touched-destination patching + epoch-RCU snapshot swaps, while N reader
// threads forward deterministic packet batches wait-free against whatever
// snapshot they pin.
//
// Reported per (config, mode) row:
//   events_per_s        publication rate: full events -> grace completion
//   reconv_p50/p99/max  the reconvergence-latency SLO (event ingest ->
//     _us               every reader observing the new epoch), percentiles
//                       over the per-event PublishStats samples
//   Mlookups_per_s      aggregate read-side primary FIB loads (committed
//                       hops + dead-end terminal attempts) — mode "churn"
//                       measures lookups while the publisher swaps, mode
//                       "frozen" is the publication-off comparator: the
//                       same readers for the same wall time with zero
//                       publishes, so the delta is the full read-side cost
//                       of live publication
//   publish_work_us     mean control-side publish cost (repair + patch +
//                       swap, excluding the grace wait — grace is paid by
//                       any republication scheme and is scheduler-bound
//                       when cores are oversubscribed)
//   republish_speedup   full build_fibs() wall / mean publish_work — what
//                       incremental repair + touched-destination patching
//                       buys over rebuild-and-swap republication
//   fib_checksum        FNV-1a over the quiescent published table bytes +
//                       liveness (the trace closes every window, so this
//                       must equal the pristine control plane's checksum;
//                       exact-gated by check.sh --bench-smoke)
//
// Self-gating: after the replay the published table is compared byte for
// byte against a from-scratch control plane built at the same weight
// state; any divergence is FATAL and the bench exits nonzero — a perf
// number can never come from a wrong table.
//
// --hold-ms=N keeps the churn-mode reader pool (and the --telemetry
// agent's live window) running for N extra ms after the replay drains, so
// an external `splice_top attach` / scrape has a live process to watch;
// Mlookups_per_s divides by the actual active time either way.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "dataplane/fib_publisher.h"
#include "dataplane/network.h"
#include "graph/generators.h"
#include "obs/span.h"
#include "routing/multi_instance.h"
#include "sim/batch_feed.h"
#include "sim/churn.h"

namespace splice {
namespace {

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Quiescent-state checksum: published table bytes + liveness mask.
std::uint64_t published_checksum(const FibPublisher& pub) {
  const auto entries = pub.published_fibs().data();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv_bytes(h, entries.data(), entries.size() * sizeof(FibEntry));
  const auto mask = pub.published_net().link_mask();
  return fnv_bytes(h, mask.data(), mask.size());
}

struct ReaderTotals {
  long long lookups = 0;  ///< committed hops + dead-end terminal attempts
  long long batches = 0;
};

/// N reader threads spinning pin -> forward batch -> unpin against the
/// live publisher until stopped. Packet batches are deterministic
/// (ScenarioBatchFeed), rotated per iteration; the counts are wall-clock
/// dependent and only ever feed throughput columns, never exact ones.
class ReaderPool {
 public:
  ReaderPool(FibPublisher& pub, const Graph& g, SliceId k, int readers,
             int packets, std::uint64_t seed, std::uint32_t run_idx = 0)
      : totals_(static_cast<std::size_t>(readers)) {
    threads_.reserve(static_cast<std::size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      threads_.emplace_back([&pub, &g, k, packets, seed, r, run_idx, this] {
        FibPublisher::Reader reader(pub);
        BatchFeedConfig feed;
        feed.header_k = k;
        feed.packets_per_trial = packets;
        constexpr int kPool = 4;
        std::vector<char> mask;
        std::vector<std::vector<Packet>> pool(kPool);
        for (int t = 0; t < kPool; ++t) {
          fill_trial_batch(g, feed, seed + static_cast<std::uint64_t>(r), t,
                           mask, pool[static_cast<std::size_t>(t)]);
        }
        std::vector<ForwardSummary> out(
            static_cast<std::size_t>(packets));
        ForwardWorkspace ws;
        const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                      LocalRecovery::kDeflect};
        ReaderTotals& mine = totals_[static_cast<std::size_t>(r)];
        int t = 0;
        while (!stop_.load(std::memory_order_acquire)) {
          const int trial = t;
          const std::vector<Packet>& packets_in =
              pool[static_cast<std::size_t>(trial)];
          t = (t + 1) % kPool;
          const DataPlaneNetwork& net = reader.pin();
          net.forward_stats_batch(packets_in, policy, out, ws);
          reader.unpin();
          fold_route_health(packets_in, out);
          for (const ForwardSummary& s : out) {
            mine.lookups += s.hops +
                            (s.outcome == ForwardOutcome::kDeadEnd ? 1 : 0);
          }
          ++mine.batches;
          // Root-cause breadcrumbs: at most one failed packet per batch,
          // carrying the FIB epoch the reader forwarded under (the causal
          // join key of obs/causal.h) and the exact (stream, trial, aux)
          // coordinates `splice_inspect why --check` needs to replay it.
          if (obs::AnomalyLedger::enabled()) {
            for (std::size_t i = 0; i < out.size(); ++i) {
              const ForwardSummary& s = out[i];
              if (s.delivered()) continue;
              const Packet& pkt = packets_in[i];
              obs::Anomaly a;
              a.kind = s.outcome == ForwardOutcome::kTtlExpired
                           ? obs::AnomalyKind::kTtlExpired
                           : obs::AnomalyKind::kBlackhole;
              a.run = run_idx;
              a.seed = seed + static_cast<std::uint64_t>(r);
              a.trial = static_cast<std::uint32_t>(trial);
              a.k = static_cast<std::uint32_t>(k);
              a.src = pkt.src;
              a.dst = pkt.dst;
              a.bits_lo = pkt.header.stream().lo();
              a.bits_hi = pkt.header.stream().hi();
              a.hops = static_cast<std::uint32_t>(s.hops);
              a.aux = i;
              a.t_ns = obs::clock_now_ns();
              a.fib_epoch = reader.adopted_version();
              obs::AnomalyLedger::global().record(a);
              break;
            }
          }
        }
      });
    }
  }

  ReaderTotals stop_and_join() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
    ReaderTotals sum;
    for (const ReaderTotals& t : totals_) {
      sum.lookups += t.lookups;
      sum.batches += t.batches;
    }
    return sum;
  }

 private:
  std::atomic<bool> stop_{false};
  std::vector<ReaderTotals> totals_;
  std::vector<std::thread> threads_;
};

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  bench::obs_from_flags(flags);
  const auto k = static_cast<SliceId>(flags.get_int("k", 5));
  const int events = static_cast<int>(flags.get_int("events", 200));
  const int packets = static_cast<int>(flags.get_int("packets", 512));
  const int readers = static_cast<int>(flags.get_int("readers", 2));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const int expander_n = static_cast<int>(flags.get_int("expander_n", 900));
  const int hold_ms = static_cast<int>(flags.get_int("hold-ms", 0));

  bench::banner("Live churn republication",
                "epoch-RCU FIB publication under a trace-driven link-event "
                "stream, with wait-free readers and the reconvergence SLO");
  std::cout << "readers=" << readers << " events=" << events
            << " packets/batch=" << packets << "\n\n";

  Table table({"config", "mode", "readers", "events", "events_per_s",
               "reconv_p50_us", "reconv_p99_us", "reconv_max_us",
               "publish_work_us", "Mlookups_per_s", "republish_speedup",
               "fib_checksum"});
  const bench::Stopwatch wall;
  bool identical = true;
  std::string params;

  const auto run_target = [&](const std::string& name, const Graph& g) {
    // Live health telemetry (--health / --health-snapshot): per-destination
    // scoring sized to this target, re-armed per target so destination ids
    // never mix across topologies. The readers fold their batches, the
    // publish loop feeds reconvergence latencies, and the SLO engine is
    // evaluated once per churn event.
    const bool health_on = bench::health_from_flags(
        flags, static_cast<std::uint32_t>(g.node_count()));
    // Topology attribution (--links / --links-snapshot): per-link × per-slice
    // accumulators sized to this target, re-armed (and zeroed) per target so
    // edge ids never mix across topologies.
    const bool links_on =
        bench::links_from_flags(flags, g, static_cast<int>(k));
    // Tag this target's anomalies with a replayable run scope: everything
    // `splice_inspect why` needs to reconstruct the exact batch is here.
    std::uint32_t run_idx = 0;
    if (obs::AnomalyLedger::enabled()) {
      run_idx = obs::AnomalyLedger::global().begin_run(
          {{"experiment", "live_churn"},
           {"target", name},
           {"topo", flags.get_string("topo", "sprint")},
           {"expander_n", std::to_string(expander_n)},
           {"k", std::to_string(k)},
           {"events", std::to_string(events)},
           {"packets", std::to_string(packets)},
           {"readers", std::to_string(readers)},
           {"seed", std::to_string(seed)}});
    }
    const ControlPlaneConfig cp{
        k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false};
    FibPublisher pub(g, cp);

    ChurnConfig ccfg;
    ccfg.incidents = events;
    ccfg.seed = seed;
    const auto trace = generate_churn_trace(g, ccfg);

    // Full-rebuild comparator: what one republication costs without the
    // incremental path — rebuild every slice's SPTs from scratch and
    // flatten them (the swap + grace are the same either way and excluded
    // from both sides).
    double full_ms;
    {
      std::vector<std::vector<Weight>> weights(
          static_cast<std::size_t>(pub.control().slice_count()));
      for (SliceId s = 0; s < pub.control().slice_count(); ++s) {
        const auto w = pub.control().slice(s).weights();
        weights[static_cast<std::size_t>(s)].assign(w.begin(), w.end());
      }
      SPLICE_OBS_SPAN("live_churn.full_rebuild");
      const bench::Stopwatch sw;
      const MultiInstanceRouting fresh(g, std::move(weights), 0);
      const FibSet full = fresh.build_fibs();
      full_ms = sw.elapsed_ms();
      if (full.data().size() != pub.published_fibs().data().size()) {
        std::cerr << "FATAL: rebuild geometry mismatch\n";
        identical = false;
      }
    }

    const auto checksum_cell = [&] {
      char sum[24];
      std::snprintf(sum, sizeof sum, "x%016llx",
                    static_cast<unsigned long long>(published_checksum(pub)));
      return std::string(sum);
    };

    // -- mode "churn": max-rate replay against live readers ---------------
    double churn_ms;
    {
      ReaderPool pool(pub, g, k, readers, packets, seed ^ 0xfeedULL,
                      run_idx);
      std::vector<double> lat_us;
      lat_us.reserve(trace.size());
      double work_us_sum = 0.0;
      const bench::Stopwatch sw;
      {
        SPLICE_OBS_SPAN("live_churn.publish_loop");
        for (const LinkEvent& ev : trace) {
          const PublishStats st = apply_churn_event(pub, ev);
          lat_us.push_back(static_cast<double>(st.latency_ns) * 1e-3);
          work_us_sum += static_cast<double>(st.work_ns) * 1e-3;
          // Burn-rate watchdog cadence: once per control event, never per
          // packet (the publisher already fed the scorer from its own hook).
          if (health_on) {
            obs::SloEngine::global().evaluate(obs::clock_now_ns());
          }
        }
      }
      churn_ms = sw.elapsed_ms();
      if (hold_ms > 0) {
        // Live-attach window: the readers keep forwarding and the
        // telemetry agent keeps publishing while an external splice_top /
        // scrape watches. Excluded from events_per_s (replay is done);
        // the lookup rate below divides by the actual active time.
        std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
      }
      const double active_ms = sw.elapsed_ms();
      const ReaderTotals totals = pool.stop_and_join();
      pub.quiesce();
      // Snapshot here, while the window still holds the churn replay's
      // publishes and reader traffic (the frozen comparator below would
      // age them out). Last target wins the file.
      if (health_on) bench::health_snapshot_from_flags(flags);
      if (links_on) bench::links_snapshot_from_flags(flags);

      // Self-gate: the published table must equal a from-scratch control
      // plane at the same (restored) weight state, byte for byte.
      {
        std::vector<std::vector<Weight>> weights(
            static_cast<std::size_t>(pub.control().slice_count()));
        for (SliceId s = 0; s < pub.control().slice_count(); ++s) {
          const auto w = pub.control().slice(s).weights();
          weights[static_cast<std::size_t>(s)].assign(w.begin(), w.end());
        }
        const MultiInstanceRouting fresh(g, std::move(weights), 0);
        const FibSet want = fresh.build_fibs();
        const auto got = pub.published_fibs().data();
        if (got.size() != want.data().size() ||
            std::memcmp(got.data(), want.data().data(),
                        got.size() * sizeof(FibEntry)) != 0) {
          std::cerr << "FATAL: " << name
                    << " published table diverges from a from-scratch "
                       "rebuild after the churn replay\n";
          identical = false;
        }
      }

      std::vector<double> sorted = lat_us;
      std::sort(sorted.begin(), sorted.end());
      const double mean_work_us =
          work_us_sum /
          static_cast<double>(std::max<std::size_t>(1, lat_us.size()));
      table.add_row(
          {name, "churn", std::to_string(readers),
           std::to_string(trace.size()),
           fmt_double(static_cast<double>(trace.size()) / churn_ms * 1e3, 1),
           fmt_double(percentile(sorted, 0.50), 2),
           fmt_double(percentile(sorted, 0.99), 2),
           fmt_double(sorted.empty() ? 0.0 : sorted.back(), 2),
           fmt_double(mean_work_us, 2),
           fmt_double(static_cast<double>(totals.lookups) / active_ms / 1e3,
                      2),
           fmt_double(full_ms / (mean_work_us * 1e-3), 1), checksum_cell()});
    }

    // -- mode "frozen": publication-off comparator, same wall time --------
    {
      ReaderPool pool(pub, g, k, readers, packets, seed ^ 0xfeedULL,
                      run_idx);
      const bench::Stopwatch sw;
      while (sw.elapsed_ms() < churn_ms) std::this_thread::yield();
      const double frozen_ms = sw.elapsed_ms();
      const ReaderTotals totals = pool.stop_and_join();
      table.add_row(
          {name, "frozen", std::to_string(readers), "0", "-", "-", "-", "-",
           "-",
           fmt_double(static_cast<double>(totals.lookups) / frozen_ms / 1e3,
                      2),
           "-", checksum_cell()});
    }

    params += (params.empty() ? "" : " ") + name +
              "_n=" + std::to_string(g.node_count()) + " " + name +
              "_links=" + std::to_string(g.edge_count());
  };

  const std::string topo_name = flags.get_string("topo", "sprint");
  if (topo_name != "none") {  // --topo none: expander-only run
    const Graph topo_g = bench::load_topology_flag(flags);
    run_target(topo_name, topo_g);
  }

  // Sparse expander scaled by --expander_n: at 10k nodes the k tables
  // dwarf the cache hierarchy and per-event patching is the only way a
  // publish stays sub-rebuild (the EXPERIMENTS.md headline regime).
  Graph big = erdos_renyi(static_cast<NodeId>(expander_n),
                          5.0 / std::max(1, expander_n - 1), seed ^ 0xb16ULL);
  make_connected(big, seed ^ 0xb17ULL);
  run_target("expander", big);

  if (!identical) return EXIT_FAILURE;

  bench::BenchMeta meta;
  meta.bench = "bench_live_churn";
  meta.topo = topo_name;
  meta.params = "k=" + std::to_string(k) + " events=" +
                std::to_string(events) + " packets=" +
                std::to_string(packets) + " readers=" +
                std::to_string(readers) + " expander_n=" +
                std::to_string(expander_n) + " " + params;
  meta.wall_ms = wall.elapsed_ms();
  bench::emit(flags, table, meta);
  std::cout
      << "\nreading: reconv_*_us is the SLO (event ingest -> every reader "
         "observing the new epoch); mode frozen runs the same readers for "
         "the same wall time with publication off, so the Mlookups_per_s "
         "delta is the read-side cost of live churn. republish_speedup = "
         "full build_fibs() wall / mean publish_work (grace excluded: any "
         "republication scheme pays it). fib_checksum is quiescent state "
         "and gates exactly.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
