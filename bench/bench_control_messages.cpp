// Message-complexity measurement: the paper claims splicing needs only a
// linear increase in routing messages (§1, §4.2) and that multi-topology
// routing (§3.1.2) provides the control plane "in practice". Floods the
// real topologies and counts LSA transmissions for (a) k separate routing
// instances and (b) multi-topology encoding, plus the per-failure reflood
// cost that splicing's zero-message data-plane recovery avoids (§6).
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "routing/flooding.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);

  bench::banner("Control-plane message complexity",
                "§1/§4.2 linear-messages claim; §3.1.2 multi-topology "
                "routing; §6 zero-message recovery");
  std::cout << "topology=" << flags.get_string("topo", "sprint") << " ("
            << g.node_count() << " nodes / " << g.edge_count()
            << " links)\n\n";

  Table table({"k", "separate-instance msgs", "multi-topology msgs",
               "convergence ms", "reflood msgs / link failure"});
  for (SliceId k : {1, 2, 3, 5, 10}) {
    const FloodStats sep =
        simulate_full_flood(g, k, FloodEncoding::kSeparateInstances);
    const FloodStats mt =
        simulate_full_flood(g, k, FloodEncoding::kMultiTopology);
    const FloodStats refl = simulate_failure_reflood(
        g, k, FloodEncoding::kSeparateInstances, 0);
    table.add_row({fmt_int(k), fmt_int(sep.messages), fmt_int(mt.messages),
                   fmt_double(sep.convergence_ms, 1),
                   fmt_int(refl.messages)});
  }
  bench::emit(flags, table);
  std::cout << "\nreading: separate instances cost exactly k x the baseline "
               "messages (linear, as claimed); RFC 4915-style MT encoding "
               "makes the count independent of k. Splicing recovery itself "
               "(bit re-randomization / deflection) sends ZERO control "
               "messages — the reflood column is what a reconverging IGP "
               "pays per failure and splicing does not.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
