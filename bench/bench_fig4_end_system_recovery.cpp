// Figure 4: end-system recovery on the Sprint topology. For k in {1, 3, 5}
// plots (a) the "(recovery)" curve — fraction of pairs still disconnected
// after <= 5 coin-flip retries — and (b) the "(reliability)" curve — the
// spliced-union lower bound on the same failure sets. k=1 is "no splicing".
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"
#include "util/parallel.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  bench::obs_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  RecoveryExperimentConfig cfg;
  cfg.k_values = {1, 3, 5};
  cfg.trials = static_cast<int>(flags.get_int("trials", 100));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.perturbation = bench::perturbation_from_flags(flags);
  cfg.pair_sample = static_cast<int>(flags.get_int("pair-sample", 0));
  cfg.recovery.scheme = RecoveryScheme::kEndSystemCoinFlip;
  cfg.recovery.max_trials = static_cast<int>(flags.get_int("max-trials", 5));
  cfg.recovery.header_hops = static_cast<int>(flags.get_int("hops", 20));
  // Results are bit-identical at every thread count.
  cfg.threads =
      static_cast<int>(flags.get_int("threads", default_thread_count()));

  bench::banner("End-system recovery",
                "Figure 4 — coin-flip header re-randomization, 20-hop "
                "header, <= 5 trials, Sprint topology");
  std::cout << "topology=" << flags.get_string("topo", "sprint")
            << " trials=" << cfg.trials << " retry budget "
            << cfg.recovery.max_trials << " threads=" << cfg.threads
            << "\n\n";

  const auto points = run_recovery_experiment(g, cfg);

  Table table({"curve", "p", "frac_disconnected"});
  for (const auto& pt : points) {
    if (pt.k == 1) {
      table.add_row({"k=1 (no splicing)", fmt_double(pt.p, 2),
                     fmt_double(pt.frac_initial_broken, 5)});
    } else {
      table.add_row({"k=" + std::to_string(pt.k) + " (recovery)",
                     fmt_double(pt.p, 2), fmt_double(pt.frac_unrecovered, 5)});
      table.add_row({"k=" + std::to_string(pt.k) + " (reliability)",
                     fmt_double(pt.p, 2),
                     fmt_double(pt.frac_disconnected, 5)});
    }
  }
  bench::emit(flags, table);

  // §4.3 scalar headlines for the largest k at mid-range p.
  for (const auto& pt : points) {
    if (pt.k == 5 && pt.p == 0.05) {
      std::cout << "\nheadline @ k=5, p=0.05 (paper §4.3): mean trials "
                << fmt_double(pt.mean_trials, 2)
                << " (paper: slightly more than 2), mean stretch "
                << fmt_double(pt.mean_stretch, 2)
                << " (paper: 1.3), hop inflation "
                << fmt_double(pt.mean_hop_inflation, 2)
                << " (paper: ~1.5)\n";
    }
  }
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
