// §4.3 scalar results: average trials to recover, latency stretch and hop
// inflation of recovered paths for both recovery schemes, plus the
// per-slice stretch census ("99% of all paths in each tree have stretch of
// less than 2.6").
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int trials = static_cast<int>(flags.get_int("trials", 60));
  const PerturbationConfig perturbation =
      bench::perturbation_from_flags(flags);

  bench::banner("Recovery trials, stretch and hops",
                "§4.3 text — trials ~2, stretch 1.3/1.33, +50%/+55% hops, "
                "99th-pct per-slice stretch < 2.6");

  // Recovery-path metrics at the paper's operating point.
  Table table({"scheme", "k", "p", "mean_trials", "mean_stretch",
               "p99_stretch", "hop_inflation", "unrecovered"});
  for (const auto scheme : {RecoveryScheme::kEndSystemCoinFlip,
                            RecoveryScheme::kNetworkDeflection}) {
    RecoveryExperimentConfig cfg;
    cfg.k_values = {3, 5};
    cfg.p_values = {0.03, 0.05};
    cfg.trials = trials;
    cfg.seed = seed;
    cfg.perturbation = perturbation;
    cfg.recovery.scheme = scheme;
    for (const auto& pt : run_recovery_experiment(g, cfg)) {
      table.add_row({to_string(scheme), fmt_int(pt.k), fmt_double(pt.p, 2),
                     fmt_double(pt.mean_trials, 2),
                     fmt_double(pt.mean_stretch, 3),
                     fmt_double(pt.p99_stretch, 3),
                     fmt_double(pt.mean_hop_inflation, 3),
                     fmt_double(pt.frac_unrecovered, 5)});
    }
  }
  bench::emit(flags, table);

  // Per-slice stretch census.
  std::cout << "\nPer-slice stretch census (k = 5, "
            << to_string(perturbation.kind) << "(" << perturbation.a << ","
            << perturbation.b << ")):\n\n";
  Table census({"slice", "mean", "p50", "p95", "p99", "max"});
  for (const auto& row :
       run_slice_stretch_census(g, 5, perturbation, seed)) {
    census.add_row({fmt_int(row.slice), fmt_double(row.stretch.mean, 3),
                    fmt_double(row.stretch.p50, 3),
                    fmt_double(row.stretch.p95, 3),
                    fmt_double(row.stretch.p99, 3),
                    fmt_double(row.stretch.max, 3)});
  }
  census.print(std::cout);
  std::cout << "\npaper §4.3: \"In any particular slice, 99% of all paths in "
               "each tree have stretch of less than 2.6.\"\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
