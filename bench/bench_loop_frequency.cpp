// §4.4: forwarding-loop frequency. Measures, over recovery-path traces,
// how often two-hop loops and any-node revisits occur as a function of k,
// and shows that the loop-avoiding header generators eliminate persistent
// loops at a small recovery cost.
//
// With the obs anomaly ledger on (--trace), the loop census is read back
// from the ledger — one kTwoHopLoop / kRevisitLoop record per affected
// recovery — divided by the experiment's recovered-path denominator. The
// numerators are recorded by the same code path that feeds the historical
// RecoveryPoint rates, so the table is bit-identical either way; a mismatch
// would mean the ledger lost or double-counted an anomaly.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "obs/anomaly.h"
#include "sim/experiments.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int trials = static_cast<int>(flags.get_int("trials", 50));
  const double p = flags.get_double("p", 0.05);

  bench::banner("Forwarding-loop frequency",
                "§4.4 — 2-hop loops ~1/100 recoveries at k=2, ~1/10 at "
                "larger k; loop-free header generators remove them");

  const bool ledger_on = obs::AnomalyLedger::enabled();
  Table table({"scheme", "k", "two_hop_loop_rate", "revisit_rate",
               "unrecovered"});
  for (const auto scheme : {RecoveryScheme::kEndSystemCoinFlip,
                            RecoveryScheme::kEndSystemFresh,
                            RecoveryScheme::kEndSystemNoRevisit,
                            RecoveryScheme::kEndSystemBoundedSwitches}) {
    RecoveryExperimentConfig cfg;
    cfg.k_values = {2, 3, 5};
    cfg.p_values = {p};
    cfg.trials = trials;
    cfg.seed = seed;
    cfg.perturbation = bench::perturbation_from_flags(flags);
    cfg.recovery.scheme = scheme;
    // The experiment opens the next ledger run; remember its index so the
    // census below reads this scheme's records only.
    const std::size_t run_index =
        ledger_on ? obs::AnomalyLedger::global().snapshot().runs.size()
                  : obs::kAnyRun;
    for (const auto& pt : run_recovery_experiment(g, cfg)) {
      double two_hop_rate = pt.two_hop_loop_rate;
      double revisit_rate = pt.revisit_rate;
      if (ledger_on) {
        // Census via the ledger (single source of truth for anomalies):
        // same numerator, same denominator, bit-identical rates.
        const auto& ledger = obs::AnomalyLedger::global();
        const auto rec = static_cast<double>(
            std::max<long long>(1, pt.recovered_paths));
        two_hop_rate =
            static_cast<double>(ledger.count(
                run_index, obs::AnomalyKind::kTwoHopLoop,
                static_cast<std::uint32_t>(pt.k))) /
            rec;
        revisit_rate =
            static_cast<double>(ledger.count(
                run_index, obs::AnomalyKind::kRevisitLoop,
                static_cast<std::uint32_t>(pt.k))) /
            rec;
      }
      table.add_row({to_string(scheme), fmt_int(pt.k),
                     fmt_double(two_hop_rate, 4),
                     fmt_double(revisit_rate, 4),
                     fmt_double(pt.frac_unrecovered, 5)});
    }
  }
  bench::emit(flags, table);
  std::cout << "\npaper §4.4: loops >2 hops are extremely rare; two-hop "
               "loops about 1 per 100 trials for k=2 and about 1 in 10 for "
               "higher k. No-revisit headers are persistent-loop-free by "
               "construction, at the cost of restricting recovery paths.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
