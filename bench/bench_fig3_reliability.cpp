// Figure 3: reliability curves on the Sprint topology with degree-based
// Weight(0, 3) perturbations, k in {1, 2, 3, 4, 5, 10}, plus the "best
// possible" curve of the underlying graph. One row per (curve, p) point:
// the fraction of source-destination pairs disconnected.
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "sim/experiments.h"
#include "util/parallel.h"

namespace splice {
namespace {

std::vector<SliceId> parse_k_set(const std::string& spec) {
  std::vector<SliceId> ks;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    ks.push_back(static_cast<SliceId>(std::stol(tok)));
  }
  return ks;
}

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  bench::obs_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  ReliabilityConfig cfg;
  cfg.k_values = parse_k_set(flags.get_string("kset", "1,2,3,4,5,10"));
  cfg.trials = static_cast<int>(flags.get_int("trials", 1000));
  cfg.threads = static_cast<int>(flags.get_int("threads", default_thread_count()));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.perturbation = bench::perturbation_from_flags(flags);
  // --failures=node switches to the node-failure model; --semantics=directed
  // switches to exact forwarding reachability (see DESIGN.md).
  if (flags.get_string("failures", "link") == "node")
    cfg.failure = FailureKind::kNode;
  if (flags.get_string("failures", "link") == "length")
    cfg.failure = FailureKind::kLengthWeighted;
  if (flags.get_string("semantics", "undirected") == "directed")
    cfg.semantics = UnionSemantics::kDirectedForwarding;

  bench::banner("Reliability curves",
                "Figure 3 (and the GEANT variant the paper omits) — fraction "
                "of s-d pairs disconnected vs. link failure probability");
  std::cout << "topology=" << flags.get_string("topo", "sprint")
            << " nodes=" << g.node_count() << " links=" << g.edge_count()
            << " trials=" << cfg.trials
            << " perturbation=" << to_string(cfg.perturbation.kind) << "("
            << cfg.perturbation.a << "," << cfg.perturbation.b << ")\n\n";

  const ReliabilityCurves curves = run_reliability_experiment(g, cfg);

  Table table({"curve", "p", "frac_disconnected", "ci95"});
  for (const auto& pt : curves.points) {
    table.add_row({"k=" + std::to_string(pt.k), fmt_double(pt.p, 2),
                   fmt_double(pt.mean_disconnected, 5),
                   fmt_double(pt.ci95, 5)});
  }
  for (const auto& pt : curves.best_possible) {
    table.add_row({"best-possible", fmt_double(pt.p, 2),
                   fmt_double(pt.mean_disconnected, 5),
                   fmt_double(pt.ci95, 5)});
  }
  bench::emit(flags, table);

  // Headline check the paper states in §4.2: with ~5 slices the curve
  // approaches the best possible.
  double k1 = 0.0;
  double k_max = 0.0;
  double best = 0.0;
  const SliceId k_largest = cfg.k_values.back();
  for (const auto& pt : curves.points) {
    if (pt.p == 0.1 && pt.k == cfg.k_values.front()) k1 = pt.mean_disconnected;
    if (pt.p == 0.1 && pt.k == k_largest) k_max = pt.mean_disconnected;
  }
  for (const auto& pt : curves.best_possible) {
    if (pt.p == 0.1) best = pt.mean_disconnected;
  }
  std::cout << "\nheadline @ p=0.10: k=" << cfg.k_values.front() << " -> "
            << fmt_percent(k1) << " disconnected; k=" << k_largest << " -> "
            << fmt_percent(k_max) << "; best possible -> "
            << fmt_percent(best) << "\n"
            << "reliability shortfall closed: "
            << fmt_percent(k1 - best > 0 ? 1.0 - (k_max - best) / (k1 - best)
                                         : 1.0)
            << " (paper: approaches best possible with <= 10 slices)\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
