// Graph-substrate microbenchmarks (google-benchmark): the primitives every
// experiment leans on — Dijkstra, reachability, min cut, max flow, random
// generation — measured on the evaluation topologies, plus the control-plane
// fast path (CSR snapshot, workspace-reusing Dijkstra, parallel
// multi-instance build, incremental SPT repair).
//
// Two modes:
//   * default: the usual google-benchmark registrations.
//   * --json=path [--n=600 --k=8 --threads=0 --events=12 --seed=7]: runs the
//     SPT-construction comparison — legacy per-destination Dijkstra build
//     vs. the CSR/workspace/parallel fast path, and incremental
//     recompute_edge vs. a full per-destination rebuild after a link event —
//     and writes the rows as machine-readable JSON for the perf trajectory.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>

#include "bench_common.h"
#include "graph/connectivity.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/mincut.h"
#include "routing/multi_instance.h"
#include "routing/perturbation.h"
#include "sim/failure.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

void BM_DijkstraSprint(benchmark::State& state) {
  const Graph g = topo::sprint();
  NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, src));
    src = (src + 1) % g.node_count();
  }
}
BENCHMARK(BM_DijkstraSprint);

void BM_DijkstraWithOverridesAndMask(benchmark::State& state) {
  const Graph g = topo::sprint();
  Rng rng(1);
  const PerturbationConfig cfg{PerturbationKind::kDegreeBased, 0.0, 3.0};
  const auto weights = perturb_weights(g, cfg, rng);
  const auto alive = sample_alive_mask(g.edge_count(), 0.05, rng);
  DijkstraOptions opts;
  opts.weight_override = weights;
  opts.edge_alive = alive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0, opts));
  }
}
BENCHMARK(BM_DijkstraWithOverridesAndMask);

void BM_DijkstraScaling(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Graph g = waxman(n, 0.9, 0.15, 7);
  make_connected(g, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DijkstraScaling)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_CsrSnapshotBuild(benchmark::State& state) {
  const Graph g = topo::sprint();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph(g));
  }
}
BENCHMARK(BM_CsrSnapshotBuild);

// The fast path a control-plane build takes per destination: CSR adjacency,
// reused workspace, zero allocations. Compare against BM_DijkstraSprint.
void BM_DijkstraIntoCsrSprint(benchmark::State& state) {
  const Graph g = topo::sprint();
  const CsrGraph csr(g);
  DijkstraWorkspace ws;
  DijkstraOptions opts;
  NodeId src = 0;
  for (auto _ : state) {
    dijkstra_into(csr, src, opts, ws);
    benchmark::DoNotOptimize(ws.dist.data());
    src = (src + 1) % csr.node_count();
  }
}
BENCHMARK(BM_DijkstraIntoCsrSprint);

// Full k-slice control-plane build on the Appendix-A synthetic topology.
void BM_MultiInstanceBuildAppendixA(benchmark::State& state) {
  Graph g = waxman(600, 0.9, 4.0 / 600.0 + 0.03, 7);
  make_connected(g, 8);
  ControlPlaneConfig cfg;
  cfg.slices = 8;
  cfg.perturbation = {PerturbationKind::kDegreeBased, 0.0, 3.0};
  cfg.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiInstanceRouting(g, cfg));
  }
}
BENCHMARK(BM_MultiInstanceBuildAppendixA)
    ->Arg(1)
    ->Arg(0)  // 0 = hardware concurrency
    ->Unit(benchmark::kMillisecond);

// One link event: incremental repair of all trees of one slice.
void BM_RecomputeEdgeSingleEvent(benchmark::State& state) {
  Graph g = waxman(600, 0.9, 4.0 / 600.0 + 0.03, 7);
  make_connected(g, 8);
  RoutingInstance inst(g, g.weights());
  Rng rng(11);
  for (auto _ : state) {
    const auto e = static_cast<EdgeId>(
        rng.below(static_cast<std::uint64_t>(g.edge_count())));
    const Weight old_w = inst.weights()[static_cast<std::size_t>(e)];
    benchmark::DoNotOptimize(inst.recompute_edge(e, 1e18));
    benchmark::DoNotOptimize(inst.recompute_edge(e, old_w));
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_RecomputeEdgeSingleEvent)->Unit(benchmark::kMillisecond);

void BM_ReachabilityUnderMask(benchmark::State& state) {
  const Graph g = topo::sprint();
  Rng rng(2);
  const auto alive = sample_alive_mask(g.edge_count(), 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reachable_nodes(g, 0, alive));
  }
}
BENCHMARK(BM_ReachabilityUnderMask);

void BM_DisconnectedPairCount(benchmark::State& state) {
  const Graph g = topo::sprint();
  Rng rng(3);
  const auto alive = sample_alive_mask(g.edge_count(), 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(disconnected_ordered_pairs(g, alive));
  }
}
BENCHMARK(BM_DisconnectedPairCount);

void BM_StoerWagnerMinCut(benchmark::State& state) {
  const Graph g = topo::sprint();
  for (auto _ : state) {
    benchmark::DoNotOptimize(global_min_cut(g));
  }
}
BENCHMARK(BM_StoerWagnerMinCut);

void BM_DinicPairConnectivity(benchmark::State& state) {
  const Graph g = topo::sprint();
  Rng rng(4);
  const auto n = static_cast<std::uint64_t>(g.node_count());
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.below(n));
    auto t = static_cast<NodeId>(rng.below(n));
    if (s == t) t = (t + 1) % g.node_count();
    benchmark::DoNotOptimize(pair_edge_connectivity(g, s, t));
  }
}
BENCHMARK(BM_DinicPairConnectivity);

void BM_WaxmanGeneration(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(waxman(n, 0.9, 0.15, seed++));
  }
}
BENCHMARK(BM_WaxmanGeneration)->Arg(64)->Arg(256);

void BM_FailureMaskSampling(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_alive_mask(84, 0.05, rng));
  }
}
BENCHMARK(BM_FailureMaskSampling);

// ---------------------------------------------------------------------------
// --json mode: SPT-construction comparison for the perf trajectory.
// ---------------------------------------------------------------------------

/// The pre-fast-path control-plane build, kept as the comparison baseline:
/// one fresh allocating Dijkstra per destination over the pointer-chasing
/// Graph adjacency, results scattered into node-major tables.
struct LegacyInstance {
  NodeId n;
  std::vector<NodeId> next_hop;
  std::vector<EdgeId> next_edge;
  std::vector<Weight> dist;

  LegacyInstance(const Graph& g, std::vector<Weight> weights)
      : n(g.node_count()) {
    const auto cells =
        static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    next_hop.assign(cells, kInvalidNode);
    next_edge.assign(cells, kInvalidEdge);
    dist.assign(cells, kInfiniteWeight);
    DijkstraOptions opts;
    opts.weight_override = weights;
    for (NodeId dst = 0; dst < n; ++dst) {
      const ShortestPaths sp = dijkstra(g, dst, opts);
      for (NodeId v = 0; v < n; ++v) {
        const std::size_t cell =
            static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
            static_cast<std::size_t>(dst);
        dist[cell] = sp.dist[static_cast<std::size_t>(v)];
        if (v != dst && sp.reached(v)) {
          next_hop[cell] = sp.parent[static_cast<std::size_t>(v)];
          next_edge[cell] = sp.parent_edge[static_cast<std::size_t>(v)];
        }
      }
    }
  }
};

int run_spt_compare(const Flags& flags) {
  bench::trace_from_flags(flags);
  const auto n = static_cast<NodeId>(flags.get_int("n", 600));
  const auto k = static_cast<SliceId>(flags.get_int("k", 8));
  const int threads = bench::threads_from_flags(flags);
  const int events = static_cast<int>(flags.get_int("events", 12));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  bench::banner("Control-plane SPT fast path",
                "build-time microbenchmark (Appendix-A synthetic topology)");
  Graph g = waxman(n, 0.9, 4.0 / static_cast<double>(n) + 0.03, seed);
  make_connected(g, seed + 1);
  std::cout << "n=" << g.node_count() << " links=" << g.edge_count()
            << " k=" << k << " threads=" << threads << " events=" << events
            << "\n\n";

  // Identical per-slice weights for both implementations.
  const PerturbationConfig pcfg{PerturbationKind::kDegreeBased, 0.0, 3.0};
  std::vector<std::vector<Weight>> slice_weights;
  Rng master(seed);
  for (SliceId s = 0; s < k; ++s) {
    Rng slice_rng = master.fork(static_cast<std::uint64_t>(s));
    slice_weights.push_back(s == 0 ? g.weights()
                                   : perturb_weights(g, pcfg, slice_rng));
  }

  const bench::Stopwatch wall;

  // Legacy build: k independent allocating per-destination Dijkstras.
  const bench::Stopwatch legacy_clock;
  std::vector<LegacyInstance> legacy;
  for (SliceId s = 0; s < k; ++s) {
    legacy.emplace_back(g, slice_weights[static_cast<std::size_t>(s)]);
  }
  const double legacy_ms = legacy_clock.elapsed_ms();

  // Fast build: shared CSR snapshot, reused workspaces, parallel
  // (slice, destination) fan-out.
  const bench::Stopwatch fast_clock;
  const MultiInstanceRouting mir(g, slice_weights, threads);
  const double fast_ms = fast_clock.elapsed_ms();

  // The two builds must agree entry for entry.
  for (SliceId s = 0; s < k; ++s) {
    const RoutingInstance& inst = mir.slice(s);
    const LegacyInstance& ref = legacy[static_cast<std::size_t>(s)];
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId dst = 0; dst < n; ++dst) {
        const std::size_t cell =
            static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
            static_cast<std::size_t>(dst);
        if (inst.next_hop(v, dst) != ref.next_hop[cell] ||
            inst.next_hop_edge(v, dst) != ref.next_edge[cell] ||
            inst.distance(v, dst) != ref.dist[cell]) {
          std::cerr << "FATAL: fast build diverges from legacy build at "
                    << "slice=" << s << " v=" << v << " dst=" << dst << "\n";
          return EXIT_FAILURE;
        }
      }
    }
  }

  // Link events: incremental repair vs. full per-destination rebuild.
  Rng event_rng(seed ^ 0xfeedULL);
  double repair_ms = 0.0;
  double rebuild_ms = 0.0;
  RepairStats stats_total;
  for (int i = 0; i < events; ++i) {
    const auto e = static_cast<EdgeId>(
        event_rng.below(static_cast<std::uint64_t>(g.edge_count())));
    MultiInstanceRouting repaired(mir);  // copy outside the timed region
    const bench::Stopwatch repair_clock;
    RepairStats stats = repaired.apply_edge_event(e, 1e18);
    repair_ms += repair_clock.elapsed_ms();
    stats_total.add(stats);

    std::vector<std::vector<Weight>> dead_weights = slice_weights;
    for (auto& w : dead_weights) w[static_cast<std::size_t>(e)] = 1e18;
    const bench::Stopwatch rebuild_clock;
    const MultiInstanceRouting rebuilt(g, std::move(dead_weights), threads);
    rebuild_ms += rebuild_clock.elapsed_ms();

    for (SliceId s = 0; s < k; ++s) {
      for (NodeId v = 0; v < n; ++v) {
        for (NodeId dst = 0; dst < n; ++dst) {
          if (repaired.slice(s).next_hop(v, dst) !=
                  rebuilt.slice(s).next_hop(v, dst) ||
              repaired.slice(s).distance(v, dst) !=
                  rebuilt.slice(s).distance(v, dst)) {
            std::cerr << "FATAL: incremental repair diverges from rebuild at "
                      << "slice=" << s << " v=" << v << " dst=" << dst
                      << "\n";
            return EXIT_FAILURE;
          }
        }
      }
    }
  }
  const double repair_per_event = repair_ms / events;
  const double rebuild_per_event = rebuild_ms / events;

  Table table({"phase", "impl", "n", "links", "k", "threads", "ms",
               "speedup"});
  table.add_row({"build", "legacy", fmt_int(n), fmt_int(g.edge_count()),
                 fmt_int(k), "1", fmt_double(legacy_ms, 3), "1.00"});
  table.add_row({"build", "fast", fmt_int(n), fmt_int(g.edge_count()),
                 fmt_int(k), fmt_int(threads), fmt_double(fast_ms, 3),
                 fmt_double(legacy_ms / fast_ms, 2)});
  table.add_row({"link_event", "rebuild", fmt_int(n), fmt_int(g.edge_count()),
                 fmt_int(k), fmt_int(threads),
                 fmt_double(rebuild_per_event, 3), "1.00"});
  table.add_row({"link_event", "incremental", fmt_int(n),
                 fmt_int(g.edge_count()), fmt_int(k), fmt_int(threads),
                 fmt_double(repair_per_event, 3),
                 fmt_double(rebuild_per_event / repair_per_event, 2)});

  bench::BenchMeta meta;
  meta.bench = "bench_micro_graph/spt_compare";
  meta.topo = "waxman";
  meta.params = "n=" + std::to_string(n) + " k=" + std::to_string(k) +
                " threads=" + std::to_string(threads) +
                " events=" + std::to_string(events) +
                " repaired_nodes_per_event=" +
                std::to_string(stats_total.nodes_touched /
                               (events * static_cast<long long>(k)));
  meta.wall_ms = wall.elapsed_ms();
  bench::emit(flags, table, meta);
  std::cout << "\nrepair telemetry: " << stats_total.trees_repaired
            << " trees repaired, " << stats_total.trees_rebuilt
            << " rebuilt, " << stats_total.trees_untouched
            << " untouched across " << events << " events x " << k
            << " slices\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--json", 0) == 0) {
      return splice::run_spt_compare(splice::Flags(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
