// Graph-substrate microbenchmarks (google-benchmark): the primitives every
// experiment leans on — Dijkstra, reachability, min cut, max flow, random
// generation — measured on the evaluation topologies.
#include <benchmark/benchmark.h>

#include "graph/connectivity.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/mincut.h"
#include "routing/perturbation.h"
#include "sim/failure.h"
#include "topo/datasets.h"
#include "util/rng.h"

namespace splice {
namespace {

void BM_DijkstraSprint(benchmark::State& state) {
  const Graph g = topo::sprint();
  NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, src));
    src = (src + 1) % g.node_count();
  }
}
BENCHMARK(BM_DijkstraSprint);

void BM_DijkstraWithOverridesAndMask(benchmark::State& state) {
  const Graph g = topo::sprint();
  Rng rng(1);
  const PerturbationConfig cfg{PerturbationKind::kDegreeBased, 0.0, 3.0};
  const auto weights = perturb_weights(g, cfg, rng);
  const auto alive = sample_alive_mask(g.edge_count(), 0.05, rng);
  DijkstraOptions opts;
  opts.weight_override = weights;
  opts.edge_alive = alive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0, opts));
  }
}
BENCHMARK(BM_DijkstraWithOverridesAndMask);

void BM_DijkstraScaling(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Graph g = waxman(n, 0.9, 0.15, 7);
  make_connected(g, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, 0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DijkstraScaling)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_ReachabilityUnderMask(benchmark::State& state) {
  const Graph g = topo::sprint();
  Rng rng(2);
  const auto alive = sample_alive_mask(g.edge_count(), 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reachable_nodes(g, 0, alive));
  }
}
BENCHMARK(BM_ReachabilityUnderMask);

void BM_DisconnectedPairCount(benchmark::State& state) {
  const Graph g = topo::sprint();
  Rng rng(3);
  const auto alive = sample_alive_mask(g.edge_count(), 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(disconnected_ordered_pairs(g, alive));
  }
}
BENCHMARK(BM_DisconnectedPairCount);

void BM_StoerWagnerMinCut(benchmark::State& state) {
  const Graph g = topo::sprint();
  for (auto _ : state) {
    benchmark::DoNotOptimize(global_min_cut(g));
  }
}
BENCHMARK(BM_StoerWagnerMinCut);

void BM_DinicPairConnectivity(benchmark::State& state) {
  const Graph g = topo::sprint();
  Rng rng(4);
  const auto n = static_cast<std::uint64_t>(g.node_count());
  for (auto _ : state) {
    const auto s = static_cast<NodeId>(rng.below(n));
    auto t = static_cast<NodeId>(rng.below(n));
    if (s == t) t = (t + 1) % g.node_count();
    benchmark::DoNotOptimize(pair_edge_connectivity(g, s, t));
  }
}
BENCHMARK(BM_DinicPairConnectivity);

void BM_WaxmanGeneration(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(waxman(n, 0.9, 0.15, seed++));
  }
}
BENCHMARK(BM_WaxmanGeneration)->Arg(64)->Arg(256);

void BM_FailureMaskSampling(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_alive_mask(84, 0.05, rng));
  }
}
BENCHMARK(BM_FailureMaskSampling);

}  // namespace
}  // namespace splice

BENCHMARK_MAIN();
