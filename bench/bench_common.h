// Shared plumbing for the experiment binaries: flag conventions, table
// printing, optional CSV/JSON output.
//
// Common flags across benches:
//   --topo=<geant|sprint|abilene|figure1|path>   topology (default sprint)
//   --trials=N                                   Monte Carlo trials
//   --seed=N                                     base RNG seed
//   --perturb=<none|uniform|degree>              perturbation kind
//   --a=X --b=Y                                  Weight(a, b) endpoints
//   --csv=path                                   also write the table as CSV
//   --json=path                                  also write machine-readable
//                                                {bench, topo, params, rows,
//                                                wall_ms} for the perf
//                                                trajectory (BENCH_*.json)
//   --threads=N                                  control-plane build workers
//                                                (0 = hardware concurrency;
//                                                results are identical for
//                                                every value)
//   --metrics=path                               enable the obs registry and
//                                                write a RunReport next to
//                                                the table (".prom" path =>
//                                                Prometheus text, else JSON)
//   --obs                                        enable the obs registry
//                                                without writing a report
//                                                (the text report prints)
//   --trace=path                                 enable the full obs stack
//                                                (metrics, flight recorder,
//                                                anomaly ledger) and write a
//                                                Chrome trace-event JSON;
//                                                inspect with splice_inspect
//                                                or ui.perfetto.dev
//   --trace-sample=N                             capture 1 in N sampled
//                                                packet walks (default 64)
//   --trace-ring=N                               per-thread recorder ring
//                                                capacity in events
//   --profile=path                               enable the resource
//                                                profiler (per-span alloc
//                                                accounting + hardware
//                                                counters, rusage fallback)
//                                                and the wall-clock sampler;
//                                                writes a folded-stack
//                                                flamegraph to path (read
//                                                with splice_inspect profile
//                                                or flamegraph.pl). Implies
//                                                --obs; span resource deltas
//                                                land in the RunReport.
//   --profile-hz=N                               sampler frequency (default
//                                                97; 0 disables sampling but
//                                                keeps resource deltas)
//   --telemetry=SINKS                            start the in-process
//                                                telemetry agent: comma-
//                                                separated shm:PATH (mmap
//                                                segment for `splice_top
//                                                attach`) and/or tcp:PORT
//                                                (loopback Prometheus scrape
//                                                endpoint; port 0 picks an
//                                                ephemeral port). The agent
//                                                only reads, so metrics are
//                                                bit-identical with it on
//                                                or off.
//   --telemetry-period-ms=N                      agent publish period
//                                                (default 250)
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/io.h"
#include "obs/agent.h"
#include "obs/anomaly.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/linkstats.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/profile_sampler.h"
#include "obs/provenance.h"
#include "obs/resprof.h"
#include "obs/run_report.h"
#include "obs/trace_export.h"
#include "routing/perturbation.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/table.h"

namespace splice::bench {

/// Loads --topo: registry name first, then a filesystem path.
inline Graph load_topology_flag(const Flags& flags,
                                const std::string& fallback = "sprint") {
  const std::string name = flags.get_string("topo", fallback);
  for (const auto& known : topo::registry_names()) {
    if (name == known) return topo::by_name(name);
  }
  return load_topology(name);
}

inline PerturbationConfig perturbation_from_flags(const Flags& flags) {
  PerturbationConfig cfg;
  cfg.kind = parse_perturbation_kind(flags.get_string("perturb", "degree"));
  cfg.a = flags.get_double("a", 0.0);
  cfg.b = flags.get_double("b", 3.0);
  return cfg;
}

/// --threads for ControlPlaneConfig::threads (0 ⇒ default_thread_count()).
inline int threads_from_flags(const Flags& flags) {
  return static_cast<int>(flags.get_int("threads", 0));
}

/// Turns the telemetry registry on when --metrics/--obs is present. Call
/// before the instrumented work; emit() then writes/prints the RunReport.
/// Returns whether telemetry is on.
inline bool obs_from_flags(const Flags& flags) {
  const bool on = flags.has("metrics") || flags.get_bool("obs", false);
  if (on) obs::MetricsRegistry::set_enabled(true);
  return on;
}

/// Turns the resource profiler on when --profile=PATH is present: span
/// resource deltas (allocs/bytes/peak, hardware counters on the kPerf
/// tier), the process rusage summary in the RunReport, and — unless
/// --profile-hz=0 — the wall-clock sampling profiler whose folded stacks
/// emit() writes to PATH. Implies the metrics registry so spans exist to
/// attribute to. Call before the instrumented work (trace_from_flags does
/// it for every bench). Returns whether profiling is on.
inline bool profile_from_flags(const Flags& flags) {
  const auto path = flags.get("profile");
  if (!path || path->empty() || *path == "true") return false;
  obs::MetricsRegistry::set_enabled(true);
  obs::ResourceProfiler::set_enabled(true);
  const int hz = static_cast<int>(flags.get_int("profile-hz", 97));
  if (hz > 0) obs::ProfileSampler::global().start(hz);
  return true;
}

/// Starts the in-process telemetry agent when --telemetry=SPEC is present
/// (comma-separated sinks: shm:PATH — the mmap segment `splice_top attach`
/// reads live — and/or tcp:PORT — a loopback Prometheus scrape endpoint;
/// port 0 = ephemeral, the chosen port is printed and advertised in the
/// segment header). --telemetry-period-ms sets the publish period. A bad
/// spec or a failed start is fatal: a bench silently running without the
/// telemetry it was asked for would invalidate the run. Returns whether
/// the agent started. emit() stops it (final flush included).
inline bool telemetry_from_flags(const Flags& flags) {
  const auto spec = flags.get("telemetry");
  if (!spec || spec->empty() || *spec == "true") return false;
  obs::TelemetryConfig cfg;
  cfg.period_ms =
      static_cast<std::uint32_t>(flags.get_int("telemetry-period-ms", 250));
  std::string error;
  if (!obs::parse_telemetry_spec(*spec, cfg, &error)) {
    std::cerr << "bad --telemetry: " << error << "\n";
    std::exit(EXIT_FAILURE);
  }
  if (!obs::TelemetryAgent::global().start(cfg, &error)) {
    std::cerr << "telemetry agent failed to start: " << error << "\n";
    std::exit(EXIT_FAILURE);
  }
  if (!cfg.shm_path.empty()) {
    std::cout << "[telemetry] segment " << cfg.shm_path << " (splice_top attach "
              << cfg.shm_path << ")\n";
  }
  if (cfg.tcp) {
    std::cout << "[telemetry] scrape endpoint http://127.0.0.1:"
              << obs::TelemetryAgent::global().scrape_port() << "/metrics\n";
  }
  // Flush now: harnesses (check.sh --live-smoke) read the segment path /
  // port from a redirected log while the bench is still running, and
  // block-buffered stdout would sit on these lines until exit.
  std::cout.flush();
  return true;
}

/// Turns the full observability stack on when --trace=PATH is present:
/// metrics registry (phase spans), flight recorder (event rings + sampled
/// packet walks) and anomaly ledger. emit() then writes the trace-event
/// JSON to PATH. Call before the instrumented work — every bench does this
/// first thing in run(), which is also why --profile is handled here: one
/// call wires both flags into all benches. Returns whether tracing is on.
inline bool trace_from_flags(const Flags& flags) {
  profile_from_flags(flags);
  telemetry_from_flags(flags);
  const auto path = flags.get("trace");
  if (!path || path->empty() || *path == "true") return false;
  obs::MetricsRegistry::set_enabled(true);
  if (const auto ring = flags.get("trace-ring")) {
    obs::FlightRecorder::global().set_ring_capacity(
        static_cast<std::size_t>(std::strtoull(ring->c_str(), nullptr, 10)));
  }
  obs::FlightRecorder::global().set_walk_sample_every(
      static_cast<std::uint64_t>(flags.get_int("trace-sample", 64)));
  obs::FlightRecorder::set_enabled(true);
  obs::AnomalyLedger::set_enabled(true);
  return true;
}

/// Turns the live route-health scorer + SLO burn-rate engine on when
/// --health (or --health-snapshot=PATH) is present. n_dsts sizes the
/// per-destination series — pass the current target's node count; calling
/// again re-arms the windows for the next target. Returns whether health
/// telemetry is on.
inline bool health_from_flags(const Flags& flags, std::uint32_t n_dsts) {
  const bool on =
      flags.get_bool("health", false) || flags.get("health-snapshot").has_value();
  if (!on) return false;
  // Configure under the telemetry agent's flush lock: re-arming swaps the
  // series storage, and an agent snapshot racing that reads freed memory.
  const auto lock = obs::TelemetryAgent::global().reconfigure_lock();
  obs::RouteHealth::global().configure(n_dsts);
  obs::RouteHealth::set_enabled(true);
  obs::SloEngine::global().configure();
  obs::SloEngine::set_enabled(true);
  return true;
}

/// Turns the per-link × per-slice topology attribution on when --links (or
/// --links-snapshot=PATH) is present. Sizes the accumulator planes from the
/// current target and records edge endpoints/weights so snapshots carry
/// topology metadata; calling again re-arms for the next target. Returns
/// whether attribution is on.
inline bool links_from_flags(const Flags& flags, const Graph& g, int k) {
  const bool on =
      flags.get_bool("links", false) || flags.get("links-snapshot").has_value();
  if (!on) return false;
  // Same reconfigure-vs-flush serialization as health_from_flags.
  const auto lock = obs::TelemetryAgent::global().reconfigure_lock();
  obs::LinkStats& stats = obs::LinkStats::global();
  stats.configure(g.edge_count(), static_cast<std::uint32_t>(k));
  std::vector<std::int32_t> src(g.edge_count());
  std::vector<std::int32_t> dst(g.edge_count());
  std::vector<double> weight(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    src[e] = static_cast<std::int32_t>(g.edge(static_cast<EdgeId>(e)).u);
    dst[e] = static_cast<std::int32_t>(g.edge(static_cast<EdgeId>(e)).v);
    weight[e] = g.edge(static_cast<EdgeId>(e)).weight;
  }
  stats.set_topology(src, dst, weight);
  obs::LinkStats::set_enabled(true);
  return true;
}

/// Writes the splice_top snapshot file when --health-snapshot=PATH is set:
/// the health + SLO state at one clock reading, in the same keys the trace
/// export uses (plus the spliceLinks section when attribution is armed).
/// Call after the instrumented work (and before any reset). The write is
/// atomic (temp + rename) so a concurrent `splice_top --follow` never reads
/// a torn document.
inline void health_snapshot_from_flags(const Flags& flags) {
  const auto path = flags.get("health-snapshot");
  if (!path || path->empty() || *path == "true") return;
  if (!obs::RouteHealth::enabled()) return;
  const std::uint64_t now = obs::clock_now_ns();
  const std::string links_body =
      obs::LinkStats::enabled()
          ? obs::links_json_body(obs::LinkStats::global().snapshot_at(now))
          : std::string();
  const std::string doc = obs::health_snapshot_document(
      obs::RouteHealth::global().snapshot_at(now),
      obs::SloEngine::global().peek(now), links_body);
  if (write_file_atomic(*path, doc)) {
    std::cout << "health snapshot: " << *path << "\n";
  } else {
    std::cerr << "warning: could not write health snapshot " << *path << "\n";
  }
}

/// Writes a standalone per-link attribution snapshot when
/// --links-snapshot=PATH is set: the spliceLinks document at one clock
/// reading, atomically (temp + rename). Call after the instrumented work.
inline void links_snapshot_from_flags(const Flags& flags) {
  const auto path = flags.get("links-snapshot");
  if (!path || path->empty() || *path == "true") return;
  if (!obs::LinkStats::enabled()) return;
  const std::string doc =
      "{\n" + obs::links_json_body(obs::LinkStats::global().snapshot()) +
      "\n}\n";
  if (write_file_atomic(*path, doc)) {
    std::cout << "links snapshot: " << *path << "\n";
  } else {
    std::cerr << "warning: could not write links snapshot " << *path << "\n";
  }
}

/// Wall-clock stopwatch for build-time metrics.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Identity of one bench run, recorded in the JSON envelope.
struct BenchMeta {
  std::string bench;   ///< bench name (defaults to the binary name)
  std::string topo;    ///< topology identifier
  std::string params;  ///< free-form parameter summary
  double wall_ms = 0.0;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emits a table cell as a raw JSON number when it parses as one (so the
/// trajectory tooling gets numbers, not strings), quoted otherwise.
inline std::string json_cell(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size() && std::isfinite(v)) return cell;
  }
  return "\"" + json_escape(cell) + "\"";
}

/// Renders `{bench, topo, params, rows, wall_ms}` with one object per table
/// row, keyed by column header.
inline std::string to_json(const Table& table, const BenchMeta& meta) {
  std::string out = "{\n";
  out += "  \"bench\": \"" + json_escape(meta.bench) + "\",\n";
  out += "  \"topo\": \"" + json_escape(meta.topo) + "\",\n";
  out += "  \"params\": \"" + json_escape(meta.params) + "\",\n";
  out += "  \"rows\": [\n";
  for (std::size_t r = 0; r < table.rows(); ++r) {
    out += "    {";
    for (std::size_t c = 0; c < table.columns(); ++c) {
      if (c > 0) out += ", ";
      out += "\"" + json_escape(table.header()[c]) +
             "\": " + json_cell(table.row(r)[c]);
    }
    out += r + 1 < table.rows() ? "},\n" : "}\n";
  }
  out += "  ],\n";
  char wall[32];
  std::snprintf(wall, sizeof wall, "%.3f", meta.wall_ms);
  out += std::string("  \"wall_ms\": ") + wall + "\n}\n";
  return out;
}

/// Prints the table and honors --csv and --json.
inline void emit(const Flags& flags, const Table& table,
                 const BenchMeta& meta) {
  // Stop the telemetry agent first: its final flush freezes the segment
  // with everything the run recorded, so a post-mortem `splice_top attach`
  // sees the complete picture.
  if (obs::TelemetryAgent::global().running()) {
    obs::TelemetryAgent::global().stop();
    std::cout << "[telemetry] agent stopped (final publish flushed)\n";
  }
  table.print(std::cout);
  if (const auto csv = flags.get("csv")) {
    if (write_file(*csv, table.to_csv())) {
      std::cout << "\n[csv written to " << *csv << "]\n";
    } else {
      std::cerr << "failed to write csv: " << *csv << "\n";
    }
  }
  if (const auto json = flags.get("json")) {
    BenchMeta resolved = meta;
    if (resolved.bench.empty()) resolved.bench = flags.program();
    if (resolved.topo.empty()) resolved.topo = flags.get_string("topo", "");
    if (write_file(*json, to_json(table, resolved))) {
      std::cout << "\n[json written to " << *json << "]\n";
    } else {
      std::cerr << "failed to write json: " << *json << "\n";
    }
  }
  if (obs::MetricsRegistry::enabled()) {
    obs::RunReport report = obs::RunReport::capture(
        meta.bench.empty() ? flags.program() : meta.bench);
    report.add_param("topo", meta.topo.empty()
                                 ? flags.get_string("topo", "")
                                 : meta.topo);
    report.add_param("params", meta.params);
    const auto path = flags.get("metrics");
    if (path && !path->empty() && *path != "true") {
      if (*path == "-") {
        std::cout << "\n" << report.to_json();
      } else if (write_run_report(report, *path)) {
        std::cout << "\n[metrics written to " << *path << "]\n";
      } else {
        std::cerr << "failed to write metrics: " << *path << "\n";
      }
    } else {
      // bare --obs (or valueless --metrics): print the human report
      std::cout << "\n" << report.to_text();
    }
  }
  const auto trace = flags.get("trace");
  if (trace && !trace->empty() && *trace != "true" &&
      obs::FlightRecorder::enabled()) {
    obs::TraceInputs in = obs::capture_trace_inputs();
    in.meta.emplace_back("bench",
                         meta.bench.empty() ? flags.program() : meta.bench);
    in.meta.emplace_back("topo", meta.topo.empty()
                                     ? flags.get_string("topo", "")
                                     : meta.topo);
    in.meta.emplace_back("params", meta.params);
    char wall[32];
    std::snprintf(wall, sizeof wall, "%.3f", meta.wall_ms);
    in.meta.emplace_back("wall_ms", wall);
    for (const auto& [key, value] : obs::build_provenance()) {
      in.meta.emplace_back("build." + key, value);
    }
    if (obs::write_trace(in, *trace)) {
      std::cout << "\n[trace written to " << *trace << "]\n";
    } else {
      std::cerr << "failed to write trace: " << *trace << "\n";
    }
  }
  const auto profile = flags.get("profile");
  if (profile && !profile->empty() && *profile != "true" &&
      obs::ResourceProfiler::enabled()) {
    obs::ProfileSampler& sampler = obs::ProfileSampler::global();
    sampler.stop();
    if (write_file(*profile, sampler.folded())) {
      std::cout << "\n[profile written to " << *profile << " ("
                << sampler.sample_count() << " samples, tier "
                << obs::to_string(obs::ResourceProfiler::tier()) << ")]\n";
    } else {
      std::cerr << "failed to write profile: " << *profile << "\n";
    }
  }
}

inline void emit(const Flags& flags, const Table& table) {
  emit(flags, table, BenchMeta{});
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==== " << title << " ====\n"
            << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace splice::bench
