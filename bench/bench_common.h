// Shared plumbing for the experiment binaries: flag conventions, table
// printing, optional CSV output.
//
// Common flags across benches:
//   --topo=<geant|sprint|abilene|figure1|path>   topology (default sprint)
//   --trials=N                                   Monte Carlo trials
//   --seed=N                                     base RNG seed
//   --perturb=<none|uniform|degree>              perturbation kind
//   --a=X --b=Y                                  Weight(a, b) endpoints
//   --csv=path                                   also write the table as CSV
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "graph/io.h"
#include "routing/perturbation.h"
#include "topo/datasets.h"
#include "util/flags.h"
#include "util/table.h"

namespace splice::bench {

/// Loads --topo: registry name first, then a filesystem path.
inline Graph load_topology_flag(const Flags& flags,
                                const std::string& fallback = "sprint") {
  const std::string name = flags.get_string("topo", fallback);
  for (const auto& known : topo::registry_names()) {
    if (name == known) return topo::by_name(name);
  }
  return load_topology(name);
}

inline PerturbationConfig perturbation_from_flags(const Flags& flags) {
  PerturbationConfig cfg;
  cfg.kind = parse_perturbation_kind(flags.get_string("perturb", "degree"));
  cfg.a = flags.get_double("a", 0.0);
  cfg.b = flags.get_double("b", 3.0);
  return cfg;
}

/// Prints the table and honors --csv.
inline void emit(const Flags& flags, const Table& table) {
  table.print(std::cout);
  if (const auto csv = flags.get("csv")) {
    if (write_file(*csv, table.to_csv())) {
      std::cout << "\n[csv written to " << *csv << "]\n";
    } else {
      std::cerr << "failed to write csv: " << *csv << "\n";
    }
  }
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==== " << title << " ====\n"
            << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace splice::bench
