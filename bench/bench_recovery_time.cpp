// Recovery-time extension: converts §4.3's "trials" into wall-clock
// milliseconds with a propagation-delay + retransmission-timeout model, and
// compares the three strategies: serial retries, the paper's parallel-burst
// suggestion ("these trials could be run in parallel"), and in-network
// deflection. Prints mean/median/p95 recovery time among recovered pairs.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "routing/multi_instance.h"
#include "sim/event_sim.h"
#include "sim/failure.h"
#include "util/histogram.h"
#include "util/stats.h"

namespace splice {
namespace {

const char* strategy_name(RecoveryStrategy s) {
  switch (s) {
    case RecoveryStrategy::kSerial:
      return "serial (retry per RTO)";
    case RecoveryStrategy::kParallelBurst:
      return "parallel burst";
    case RecoveryStrategy::kNetworkDeflection:
      return "network deflection";
  }
  return "?";
}

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  const auto k = static_cast<SliceId>(flags.get_int("k", 5));
  const int trials = static_cast<int>(flags.get_int("trials", 30));
  const double p = flags.get_double("p", 0.05);
  const double rto = flags.get_double("rto", 200.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const MultiInstanceRouting mir(
      g, ControlPlaneConfig{k, bench::perturbation_from_flags(flags), seed,
                            false});
  const FibSet fibs = mir.build_fibs();
  DataPlaneNetwork net(g, fibs);

  bench::banner("Recovery time (wall clock)",
                "extension of §4.3 — trials -> milliseconds; parallel "
                "trials as the paper suggests");
  std::cout << "topology=" << flags.get_string("topo", "sprint") << " k=" << k
            << " p=" << p << " RTO=" << rto << "ms trials=" << trials
            << "\n\n";

  Table table({"strategy", "recovered", "mean ms", "p50 ms", "p95 ms",
               "mean packets"});
  std::vector<std::pair<std::string, Histogram>> cdfs;
  for (auto strategy :
       {RecoveryStrategy::kSerial, RecoveryStrategy::kParallelBurst,
        RecoveryStrategy::kNetworkDeflection}) {
    TimingConfig cfg;
    cfg.strategy = strategy;
    cfg.rto_ms = rto;
    Rng mask_rng(seed ^ 0x713e);
    Rng rng(seed ^ 0xd00d);
    std::vector<double> times;
    OnlineStats packets;
    Histogram hist(0.0, 6.0 * rto, 12);
    long long broken = 0;
    long long recovered = 0;
    for (int t = 0; t < trials; ++t) {
      const auto alive = sample_alive_mask(g.edge_count(), p, mask_rng);
      net.set_link_mask(alive);
      for (NodeId src = 0; src < g.node_count(); src += 2) {
        for (NodeId dst = 0; dst < g.node_count(); dst += 3) {
          if (src == dst) continue;
          const RecoveryTiming rt =
              simulate_recovery_timing(net, src, dst, cfg, rng);
          if (rt.initially_connected) continue;
          ++broken;
          if (rt.recovered) {
            ++recovered;
            times.push_back(rt.completion_ms);
            packets.add(static_cast<double>(rt.packets_sent));
            hist.add(rt.completion_ms);
          }
        }
      }
    }
    const SampleSummary s = summarize(times);
    table.add_row({strategy_name(strategy),
                   fmt_percent(broken > 0 ? static_cast<double>(recovered) /
                                                static_cast<double>(broken)
                                          : 0.0),
                   fmt_double(s.mean, 1), fmt_double(s.p50, 1),
                   fmt_double(s.p95, 1), fmt_double(packets.mean(), 2)});
    cdfs.emplace_back(strategy_name(strategy), hist);
  }
  bench::emit(flags, table);

  for (const auto& [name, hist] : cdfs) {
    std::cout << "\nrecovery-time distribution — " << name
              << " (ms range, count, CDF):\n"
              << hist.render(24);
  }
  std::cout << "\nreading: serial recovery pays ~RTO per failed trial; the "
               "parallel burst collapses that to one RTO + the best spliced "
               "RTT; network deflection reacts at propagation speed and "
               "needs no sender timeout at all.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
