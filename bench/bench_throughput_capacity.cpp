// §5 "other applications": using splicing bits to run disjoint paths
// simultaneously should let hosts "achieve throughput that approaches the
// capacity of the underlying graph". Measures, per k, the max concurrent
// spliced flow between sampled pairs against the graph's cut capacity.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/extensions.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  ThroughputConfig cfg;
  cfg.pair_sample = static_cast<int>(flags.get_int("pair-sample", 200));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.perturbation = bench::perturbation_from_flags(flags);

  bench::banner("Multipath throughput vs. graph capacity",
                "§5 'other applications' — spliced concurrent flows "
                "approach the underlying cut capacity");
  std::cout << "topology=" << flags.get_string("topo", "sprint")
            << " pairs=" << cfg.pair_sample << " (unit link capacities)\n\n";

  Table table({"k", "mean spliced capacity", "mean graph capacity",
               "capacity ratio", "pairs at full capacity"});
  for (const auto& pt : run_throughput_experiment(g, cfg)) {
    table.add_row({fmt_int(pt.k), fmt_double(pt.mean_spliced_capacity, 2),
                   fmt_double(pt.mean_graph_capacity, 2),
                   fmt_percent(pt.mean_capacity_ratio),
                   fmt_percent(pt.frac_full_capacity)});
  }
  bench::emit(flags, table);
  std::cout << "\nreading: k=1 exposes exactly one path (ratio = 1/capacity "
               "on average); as k grows the spliced union carries flows "
               "approaching the graph's min-cut between the pair.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
