// §6 open question, answered in simulation: forwarding through the IGP
// convergence window. After a link failure, routers install new tables at
// different times; the network runs on a mixture. Plain routing suffers
// blackholes (stale tables pointing at the dead link) and micro-loops
// (old/new disagreement); splicing deflects across stale slices and keeps
// delivering. One row per normalized instant in the window.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/transient.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);
  TransientConfig cfg;
  cfg.slices = static_cast<SliceId>(flags.get_int("k", 5));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.perturbation = bench::perturbation_from_flags(flags);
  cfg.failures = static_cast<int>(flags.get_int("failures", 40));
  cfg.pair_sample = static_cast<int>(flags.get_int("pair-sample", 200));
  cfg.time_samples = static_cast<int>(flags.get_int("time-samples", 8));

  bench::banner("Forwarding through the convergence window",
                "§6 — splicing vs micro-loops/blackholes on mixed old/new "
                "FIBs");
  std::cout << "topology=" << flags.get_string("topo", "sprint")
            << " k=" << cfg.slices << " failures=" << cfg.failures
            << " pairs/instant=" << cfg.pair_sample << "\n\n";

  Table table({"window t", "plain delivered", "plain blackholes",
               "plain loops", "spliced delivered", "spliced blackholes",
               "spliced loops"});
  for (const auto& pt : run_transient_experiment(g, cfg)) {
    table.add_row({fmt_double(pt.t, 2), fmt_percent(pt.plain_delivered),
                   fmt_percent(pt.plain_blackholes),
                   fmt_percent(pt.plain_loops),
                   fmt_percent(pt.spliced_delivered),
                   fmt_percent(pt.spliced_blackholes),
                   fmt_percent(pt.spliced_loops)});
  }
  bench::emit(flags, table);
  std::cout << "\nreading: plain routing drops packets throughout the "
               "window (blackholes where stale tables hit the dead link, "
               "loops where old and new tables disagree); splicing's "
               "deflection over the stale slices keeps delivery near its "
               "post-convergence level from the first instant — §6's "
               "argument that splicing lets dynamic routing react slowly.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
