// Batch forwarding throughput: the SoA wavefront kernel (scalar and AVX2
// gather), and the destination-sharded pipeline, against the retired AoS
// swap-remove kernel that forward_stats_batch shipped with before the SIMD
// rework — kept here verbatim as the comparison baseline and oracle.
//
// Workload: the fig-5 Monte Carlo regime — per-trial Bernoulli link-failure
// masks with §4.3 in-network deflection, deterministic packet batches from
// the ScenarioBatchFeed (so every implementation forwards bit-identical
// input). Two targets per run: the --topo topology (Sprint-52 by default,
// FIBs cache-resident) and a synthetic sparse expander sized by
// --expander_n, whose k forwarding tables dwarf the cache hierarchy so
// every hop is a memory access — the regime where gather-based wavefronts
// and per-shard FIB replicas pay off.
//
// Reported per implementation: wall ms, Mpkts/s, Mhops/s, Mlookups/s
// (primary FIB loads: one per committed hop plus one per dead-end terminal
// attempt; §4.3 deflection-scan loads are excluded since their count is
// data-dependent), speedup vs the legacy AoS kernel, and an order-stable
// checksum over (outcome, hops, deflected, cost bits) of every summary.
// The bench FAILS if any implementation's checksum diverges — the same
// bit-identity contract the differential tests enforce, self-gated here so
// a perf number can never come from a wrong kernel.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "dataplane/flat_fibs.h"
#include "obs/span.h"
#include "dataplane/forward_kernel.h"
#include "dataplane/network.h"
#include "dataplane/shard_pipeline.h"
#include "graph/generators.h"
#include "routing/multi_instance.h"
#include "sim/batch_feed.h"

namespace splice {
namespace {

struct Env {
  Env(Graph graph, SliceId k)
      : g(std::move(graph)),
        mir(g, ControlPlaneConfig{
                   k, {PerturbationKind::kDegreeBased, 0.0, 3.0}, 1, false}),
        fibs(mir.build_fibs()),
        net(g, fibs) {}

  Graph g;
  MultiInstanceRouting mir;
  FibSet fibs;
  DataPlaneNetwork net;
};

// ---------------------------------------------------------------------------
// Legacy AoS wavefront kernel (pre-SIMD forward_stats_batch), verbatim.
// ---------------------------------------------------------------------------

/// Per-packet in-flight state of the retired AoS batch kernel.
struct Walk {
  std::uint64_t bits_lo;
  std::uint64_t bits_hi;
  ForwardSummary sum;
  CounterHeader counter;
  std::uint32_t idx;
  std::uint32_t hdr_mask;
  NodeId node;
  NodeId dst;
  SliceId current;
  SliceId def;
  std::int32_t ttl;
  std::int32_t bits_left;
  std::int32_t hdr_bpp;
};

/// The AoS swap-remove sweep exactly as DataPlaneNetwork::forward_stats_batch
/// ran it before the SoA/SIMD kernel: one interleaved Walk record per packet,
/// finished walks swap-removed mid-sweep.
void legacy_forward_stats_batch(const DataPlaneNetwork& net,
                                const FlatFibs& flat,
                                std::span<const Weight> weight,
                                std::span<const Packet> packets,
                                const ForwardingPolicy& policy,
                                std::span<ForwardSummary> out,
                                std::vector<Walk>& walks) {
  const SliceId k = flat.slice_count();
  const char* alive = net.link_mask().data();

  if (walks.size() < packets.size()) walks.resize(packets.size());
  std::size_t n_walks = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Packet& p = packets[i];
    if (p.src == p.dst) {
      out[i] = ForwardSummary{};
      out[i].outcome = ForwardOutcome::kDelivered;
      continue;
    }
    Walk w;
    w.bits_lo = p.header.stream().lo();
    w.bits_hi = p.header.stream().hi();
    w.sum = ForwardSummary{};
    w.counter = p.counter;
    w.idx = static_cast<std::uint32_t>(i);
    w.hdr_bpp = bits_per_hop(p.header.slice_count());
    w.hdr_mask = w.hdr_bpp > 0 ? ((1u << w.hdr_bpp) - 1u) : 0u;
    w.bits_left = p.header.slice_count() > 1 ? p.header.remaining_hops() : 0;
    w.def = net.default_slice(p.src, p.dst);
    w.current = w.def;
    w.node = p.src;
    w.dst = p.dst;
    w.ttl = p.ttl;
    walks[n_walks++] = w;
  }

  std::size_t live = n_walks;
  while (live > 0) {
    for (std::size_t j = 0; j < live;) {
      Walk& w = walks[j];
      bool terminal = false;
      if (w.ttl-- <= 0) {
        w.sum.outcome = ForwardOutcome::kTtlExpired;
        terminal = true;
      } else {
        SliceId slice = w.current;
        if (w.bits_left > 0) {
          --w.bits_left;
          const std::uint32_t raw =
              static_cast<std::uint32_t>(w.bits_lo) & w.hdr_mask;
          w.bits_lo =
              (w.bits_lo >> w.hdr_bpp) | (w.bits_hi << (64 - w.hdr_bpp));
          w.bits_hi >>= w.hdr_bpp;
          slice = flat.reduce_slice(raw);
        } else if (policy.exhaust == ExhaustPolicy::kHashDefault) {
          slice = w.def;
        }
        if (w.counter.active()) slice = w.counter.deflect(slice, k);

        const std::size_t cell = flat.cell(w.node, w.dst);
        FibEntry entry = flat.at(slice, cell);
        bool deflected = false;
        const bool usable =
            entry.valid() && alive[static_cast<std::size_t>(entry.edge)] != 0;
        if (!usable) {
          if (policy.local_recovery == LocalRecovery::kDeflect) {
            for (SliceId s = 0; s < k && !deflected; ++s) {
              if (s == slice) continue;
              const FibEntry alt = flat.at(s, cell);
              if (alt.valid() &&
                  alive[static_cast<std::size_t>(alt.edge)] != 0) {
                entry = alt;
                slice = s;
                deflected = true;
              }
            }
          }
          if (!deflected) {
            w.sum.outcome = ForwardOutcome::kDeadEnd;
            terminal = true;
          }
        }
        if (!terminal) {
          ++w.sum.hops;
          w.sum.cost += weight[static_cast<std::size_t>(entry.edge)];
          w.sum.deflected = w.sum.deflected || deflected;
          w.node = entry.next_hop;
          w.current = slice;
          if (w.node == w.dst) {
            w.sum.outcome = ForwardOutcome::kDelivered;
            terminal = true;
          }
        }
      }
      if (terminal) {
        out[w.idx] = w.sum;
        walks[j] = walks[--live];
      } else {
        ++j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// FNV-1a over every summary's (outcome, hops, deflected, cost bits) in
/// packet order; equal across implementations iff the sweeps are
/// bit-identical (doubles are hashed by representation, not compared with
/// a tolerance).
std::uint64_t sweep_checksum(std::uint64_t h,
                             std::span<const ForwardSummary> out) {
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const ForwardSummary& s : out) {
    std::uint64_t cost_bits;
    std::memcpy(&cost_bits, &s.cost, sizeof cost_bits);
    mix(static_cast<std::uint64_t>(s.outcome));
    mix(static_cast<std::uint64_t>(s.hops));
    mix(s.deflected ? 1 : 0);
    mix(cost_bits);
  }
  return h;
}

struct SweepResult {
  double ms = 0.0;
  long long packets = 0;
  long long hops = 0;
  long long dead_ends = 0;
  std::uint64_t checksum = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// One pre-generated trial: its failure mask and packet batch.
struct Trial {
  std::vector<char> mask;
  std::vector<Packet> packets;
};

/// Runs `reps` full passes over the trial set and keeps the fastest pass
/// (per-rep work is identical, so min-of-reps cuts scheduler noise on
/// shared machines; work counters and the checksum cover one pass).
/// set_mask installs a trial's liveness mask into whichever object owns it
/// (network or pipeline); forward runs the implementation under test into
/// `out`.
template <typename SetMask, typename Forward>
SweepResult time_sweep(const std::vector<Trial>& trials, int reps,
                       std::vector<ForwardSummary>& out, SetMask&& set_mask,
                       Forward&& forward) {
  SweepResult r;
  for (int rep = 0; rep < reps; ++rep) {
    const bench::Stopwatch clock;
    for (const Trial& t : trials) {
      set_mask(t.mask);
      forward(std::span<const Packet>(t.packets),
              std::span<ForwardSummary>(out.data(), t.packets.size()));
    }
    const double ms = clock.elapsed_ms();
    if (rep == 0 || ms < r.ms) r.ms = ms;
    if (rep > 0) continue;
    // Work counters and checksum from the first pass only — every pass
    // forwards identical input, so totals are per-pass by construction.
    for (const Trial& t : trials) {
      set_mask(t.mask);
      const std::span<ForwardSummary> span(out.data(), t.packets.size());
      forward(std::span<const Packet>(t.packets), span);
      r.checksum = sweep_checksum(r.checksum, span);
      r.packets += static_cast<long long>(t.packets.size());
      for (const ForwardSummary& s : span) {
        r.hops += s.hops;
        if (s.outcome == ForwardOutcome::kDeadEnd) ++r.dead_ends;
      }
    }
  }
  return r;
}

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  bench::obs_from_flags(flags);
  const auto k = static_cast<SliceId>(flags.get_int("k", 5));
  const int packets = static_cast<int>(flags.get_int("packets", 4096));
  const int trials = static_cast<int>(flags.get_int("trials", 8));
  const int reps = static_cast<int>(flags.get_int("reps", 5));
  const double p_fail = flags.get_double("fail", 0.05);
  const double counter_frac = flags.get_double("counter-frac", 0.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const int expander_n = static_cast<int>(flags.get_int("expander_n", 900));
  const int workers = static_cast<int>(flags.get_int("pipe-workers", 2));

  bench::banner("Batch forwarding throughput",
                "Algorithm 1 hot loop — SoA wavefront + AVX2 gather kernel "
                "and destination-sharded pipeline vs the retired AoS kernel");
  const bool have_avx2 = fwdk::kernel_supported(fwdk::Kernel::kAvx2);
  std::cout << "kernels: scalar"
            << (have_avx2 ? ", avx2 (runtime-dispatch supported)"
                          : " only (no AVX2 at runtime — avx2 rows skipped)")
            << "; pipeline workers=" << workers << "\n\n";

  const ForwardingPolicy policy{ExhaustPolicy::kStayInCurrent,
                                LocalRecovery::kDeflect};
  Table table({"config", "impl", "ms", "Mpkts_per_s", "Mhops_per_s",
               "Mlookups_per_s", "speedup", "checksum"});
  const bench::Stopwatch wall;
  bool identical = true;
  std::string params;

  const auto run_target = [&](const std::string& name, Env& env) {
    // Deterministic per-trial batches: identical input for every
    // implementation, independent of which one consumes it.
    BatchFeedConfig feed;
    feed.packets_per_trial = packets;
    feed.header_k = k;
    feed.failure_p = p_fail;
    feed.counter_fraction = counter_frac;
    std::vector<Trial> batch(static_cast<std::size_t>(trials));
    for (int t = 0; t < trials; ++t) {
      auto& trial = batch[static_cast<std::size_t>(t)];
      fill_trial_batch(env.g, feed, seed, t, trial.mask, trial.packets);
    }

    const FlatFibs flat(env.fibs);
    std::vector<Weight> weight(static_cast<std::size_t>(env.g.edge_count()));
    for (EdgeId e = 0; e < env.g.edge_count(); ++e) {
      weight[static_cast<std::size_t>(e)] = env.g.edge(e).weight;
    }
    std::vector<ForwardSummary> out(static_cast<std::size_t>(packets));
    std::vector<Walk> walks;
    ForwardWorkspace ws;

    const auto net_mask = [&](const std::vector<char>& m) {
      env.net.set_link_mask(m);
    };

    // Warm pass (untimed): grows every workspace to its steady-state size
    // and faults the FIB pages in, so the timed passes measure forwarding,
    // not first-touch costs.
    legacy_forward_stats_batch(env.net, flat, weight, batch[0].packets,
                               policy, out, walks);
    env.net.forward_stats_batch(batch[0].packets, policy, out, ws);

    // Each implementation's timed sweep runs under a phase span, so a
    // --profile run attributes per-impl resources (allocs for the
    // zero-alloc contract, IPC / cache misses on the perf tier — the
    // per-hop budgets check.sh --profile-smoke gates, normalized by the
    // deterministic hop totals in the table).
    const SweepResult legacy = [&] {
      SPLICE_OBS_SPAN("fwd_bench.legacy_aos");
      return time_sweep(
          batch, reps, out, net_mask,
          [&](std::span<const Packet> p, std::span<ForwardSummary> o) {
            legacy_forward_stats_batch(env.net, flat, weight, p, policy, o,
                                       walks);
          });
    }();
    const SweepResult scalar = [&] {
      SPLICE_OBS_SPAN("fwd_bench.scalar");
      return time_sweep(
          batch, reps, out, net_mask,
          [&](std::span<const Packet> p, std::span<ForwardSummary> o) {
            env.net.forward_stats_batch(p, policy, o, ws,
                                        fwdk::Kernel::kScalar);
          });
    }();
    SweepResult avx2;
    if (have_avx2) {
      avx2 = [&] {
        SPLICE_OBS_SPAN("fwd_bench.avx2");
        return time_sweep(
            batch, reps, out, net_mask,
            [&](std::span<const Packet> p, std::span<ForwardSummary> o) {
              env.net.forward_stats_batch(p, policy, o, ws,
                                          fwdk::Kernel::kAvx2);
            });
      }();
    }
    // Pipeline construction (worker spawn + per-shard replica build) is a
    // per-scenario-sweep cost, excluded like the FIB build itself; one warm
    // batch faults the replicas in.
    ShardPipeline pipe(env.net, workers, fwdk::active_kernel());
    pipe.forward_stats_batch(batch[0].packets, policy,
                             {out.data(), batch[0].packets.size()});
    const SweepResult piped = [&] {
      SPLICE_OBS_SPAN("fwd_bench.pipeline");
      return time_sweep(
          batch, reps, out,
          [&](const std::vector<char>& m) { pipe.set_link_mask(m); },
          [&](std::span<const Packet> p, std::span<ForwardSummary> o) {
            pipe.forward_stats_batch(p, policy, o);
          });
    }();

    const auto add_row = [&](const std::string& impl, const SweepResult& r) {
      if (r.checksum != legacy.checksum || r.hops != legacy.hops) {
        std::cerr << "FATAL: " << name << "/" << impl
                  << " diverges from the legacy AoS kernel (checksum "
                  << std::hex << r.checksum << " vs " << legacy.checksum
                  << std::dec << ")\n";
        identical = false;
      }
      // Primary FIB loads: one per committed hop, one per dead-end
      // terminal attempt (deflection-scan loads excluded, see header).
      const double lookups = static_cast<double>(r.hops + r.dead_ends);
      char sum[24];
      std::snprintf(sum, sizeof sum, "x%016llx",
                    static_cast<unsigned long long>(r.checksum));
      table.add_row({name, impl, fmt_double(r.ms, 3),
                     fmt_double(static_cast<double>(r.packets) / r.ms / 1e3, 3),
                     fmt_double(static_cast<double>(r.hops) / r.ms / 1e3, 2),
                     fmt_double(lookups / r.ms / 1e3, 2),
                     fmt_double(legacy.ms / r.ms, 2), sum});
    };
    add_row("legacy_aos", legacy);
    add_row("scalar", scalar);
    if (have_avx2) add_row("avx2", avx2);
    add_row("pipeline_w" + std::to_string(pipe.worker_count()), piped);

    params += (params.empty() ? "" : " ") + name +
              "_n=" + std::to_string(env.g.node_count()) +
              " " + name + "_links=" + std::to_string(env.g.edge_count());
  };

  const std::string topo_name = flags.get_string("topo", "sprint");
  if (topo_name != "none") {  // --topo none: expander-only run
    Env topo_env(bench::load_topology_flag(flags), k);
    run_target(topo_name, topo_env);
  }

  // Sparse expander whose k FIB tables exceed the cache hierarchy: the
  // memory-bound regime the gather kernel and sharded replicas target.
  Graph big = erdos_renyi(static_cast<NodeId>(expander_n),
                          5.0 / std::max(1, expander_n - 1), seed ^ 0xb16ULL);
  make_connected(big, seed ^ 0xb17ULL);
  Env expander_env(std::move(big), k);
  run_target("expander", expander_env);

  if (!identical) return EXIT_FAILURE;

  bench::BenchMeta meta;
  meta.bench = "bench_forwarding_throughput";
  meta.topo = flags.get_string("topo", "sprint");
  meta.params = "k=" + std::to_string(k) +
                " packets=" + std::to_string(packets) +
                " trials=" + std::to_string(trials) +
                " reps=" + std::to_string(reps) + " fail=" +
                fmt_double(p_fail, 2) + " workers=" + std::to_string(workers) +
                " " + params;
  meta.wall_ms = wall.elapsed_ms();
  bench::emit(flags, table, meta);
  std::cout << "\nreading: Mlookups_per_s counts primary per-hop FIB loads; "
               "speedup is wall-time vs the legacy AoS kernel on identical "
               "batches (checksum column proves bit-identity). "
               "SPLICE_FORWARD_KERNEL=scalar|avx2 pins the dispatched "
               "kernel process-wide; this bench pins per row explicitly.\n";
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
