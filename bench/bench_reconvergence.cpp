// §6 extension: can splicing substitute for fast IGP reconvergence? For
// each failure probability, reports the fraction of broken shortest paths
// that (a) a full reconvergence would repair (the ceiling) and (b) splicing
// repairs instantly on stale forwarding tables — plus the coverage ratio.
// Also prints the literal Definition 2.1/2.2 reliability curve R(p).
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "sim/extensions.h"

namespace splice {
namespace {

int run(const Flags& flags) {
  bench::trace_from_flags(flags);
  const Graph g = bench::load_topology_flag(flags);

  bench::banner("Splicing vs. IGP reconvergence + Definition 2.2 curve",
                "§6 'may permit dynamic routing to react much more slowly'; "
                "§2 Definitions 2.1/2.2");

  ReconvergenceConfig cfg;
  cfg.k = static_cast<SliceId>(flags.get_int("k", 5));
  cfg.trials = static_cast<int>(flags.get_int("trials", 40));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.perturbation = bench::perturbation_from_flags(flags);
  cfg.p_values = {0.01, 0.02, 0.04, 0.06, 0.08, 0.10};

  Table table({"p", "broken pairs", "reconvergence fixes", "splicing fixes",
               "coverage"});
  for (const auto& pt : run_reconvergence_experiment(g, cfg)) {
    table.add_row({fmt_double(pt.p, 2), fmt_percent(pt.frac_broken),
                   fmt_percent(pt.reconvergence_fixes),
                   fmt_percent(pt.splicing_fixes),
                   fmt_percent(pt.coverage_of_reconvergence)});
  }
  bench::emit(flags, table);
  std::cout << "\nreading: 'coverage' is the share of reconvergence-fixable "
               "pairs that splicing fixes with zero control-plane reaction "
               "— the §6 argument that dynamic routing can afford to react "
               "slowly.\n\n";

  ConnectivityCurveConfig ccfg;
  ccfg.k_values = {1, 3, 5};
  ccfg.trials = static_cast<int>(flags.get_int("trials", 40)) * 5;
  ccfg.seed = cfg.seed;
  ccfg.perturbation = cfg.perturbation;
  ccfg.p_values = {0.005, 0.01, 0.02, 0.03, 0.05};
  std::cout << "Definition 2.2 reliability curve R(p) = P(everything stays "
               "connected):\n\n";
  Table curve({"curve", "p", "R(p)"});
  for (const auto& pt : run_connectivity_curve(g, ccfg)) {
    curve.add_row({pt.k == 0 ? "underlying graph" : "k=" + std::to_string(pt.k),
                   fmt_double(pt.p, 3), fmt_double(pt.reliability, 4)});
  }
  curve.print(std::cout);
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace splice

int main(int argc, char** argv) {
  return splice::run(splice::Flags(argc, argv));
}
